//! No-op derive macros backing the vendored `serde` stub.
//!
//! Nothing in this workspace serializes at runtime (there is no
//! serializer crate in the closure), so the derives only need to make
//! `#[derive(Serialize, Deserialize)]` attributes compile.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` request.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` request.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
