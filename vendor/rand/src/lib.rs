//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no crates-io access, so this workspace
//! vendors the exact API surface it consumes: the [`RngCore`] and
//! [`SeedableRng`] traits plus [`rngs::StdRng`]. The generator behind
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha12, but every statistical
//! calibration in this repository is derived against *this* generator,
//! so the substitution is self-consistent.

#![forbid(unsafe_code)]

/// A source of uniformly random 32/64-bit words and bytes.
pub trait RngCore {
    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is expanded from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut x);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn reproducible_and_seed_sensitive() {
            let mut a = StdRng::seed_from_u64(1);
            let mut b = StdRng::seed_from_u64(1);
            let mut c = StdRng::seed_from_u64(2);
            let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
            let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
            let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
            assert_eq!(xs, ys);
            assert_ne!(xs, zs);
        }

        #[test]
        fn fill_bytes_covers_partial_chunks() {
            let mut rng = StdRng::seed_from_u64(7);
            let mut buf = [0u8; 13];
            rng.fill_bytes(&mut buf);
            assert!(buf.iter().any(|&b| b != 0), "13 zero bytes is ~2^-104");
        }

        #[test]
        fn words_are_roughly_balanced() {
            let mut rng = StdRng::seed_from_u64(42);
            let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
            let mean = f64::from(ones) / 1000.0;
            assert!((mean - 32.0).abs() < 1.0, "mean ones per word {mean}");
        }
    }
}
