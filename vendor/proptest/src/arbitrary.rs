//! The [`any`] entry point and [`Arbitrary`] for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A type with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for one primitive type.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_via_u64 {
    ($($ty:ty),+) => {
        $(
            impl Strategy for AnyPrimitive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }

            impl Arbitrary for $ty {
                type Strategy = AnyPrimitive<$ty>;

                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )+
    };
}

arbitrary_via_u64!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

impl Strategy for AnyPrimitive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite values only, spread over a broad but usable magnitude.
        let magnitude = rng.unit_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            magnitude
        } else {
            -magnitude
        }
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrimitive<f64>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::new(3);
        let s = any::<u64>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_ne!(a, b);
        let flips: Vec<bool> = (0..64).map(|_| any::<bool>().generate(&mut rng)).collect();
        assert!(flips.iter().any(|&f| f) && flips.iter().any(|&f| !f));
        assert!(any::<f64>().generate(&mut rng).is_finite());
    }
}
