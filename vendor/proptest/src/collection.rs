//! Collection strategies (`vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A half-open length range for collection strategies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range {r:?}");
        SizeRange {
            lo: *r.start(),
            hi_exclusive: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            lo: len,
            hi_exclusive: len + 1,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_bounds() {
        let mut rng = TestRng::new(4);
        let s = vec(0u8..=1, 3..10);
        for _ in 0..256 {
            let v = s.generate(&mut rng);
            assert!((3..10).contains(&v.len()));
            assert!(v.iter().all(|&b| b <= 1));
        }
        assert_eq!(vec(0usize..5, 4usize).generate(&mut rng).len(), 4);
        let inclusive = vec(0usize..5, 2..=2).generate(&mut rng);
        assert_eq!(inclusive.len(), 2);
    }
}
