//! Range strategies for the primitive numeric types.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range {self:?}");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $ty)
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range {self:?}");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range: every value is fair.
                        return rng.next_u64() as $ty;
                    }
                    lo.wrapping_add(rng.below(span) as $ty)
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range {self:?}");
                    let u = rng.unit_f64() as $ty;
                    self.start + (self.end - self.start) * u
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range {self:?}");
                    // Treat the closed upper bound as reachable by
                    // stretching the unit sample one ULP past 1.0.
                    let u = rng.unit_f64() as $ty;
                    let v = lo + (hi - lo) * u;
                    v.min(hi)
                }
            }
        )+
    };
}

float_range_strategy!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ranges_stay_in_bounds() {
        let mut rng = TestRng::new(9);
        for _ in 0..512 {
            let v = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (0u8..=1).generate(&mut rng);
            assert!(w <= 1);
            let x = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = TestRng::new(11);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[(4usize..8).generate(&mut rng) - 4] = true;
        }
        assert!(seen.iter().all(|&s| s), "values missed: {seen:?}");
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = TestRng::new(10);
        for _ in 0..512 {
            let v = (-2.0_f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&v));
            let w = (0.0_f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&w));
        }
    }
}
