//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Uses each generated value to pick a follow-up strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy behind a trait object.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategies behind shared references generate like their referent —
/// lets helpers hand out `&strategy` without cloning.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::new(1);
        let s = (Just(3usize), 0usize..10)
            .prop_map(|(a, b)| a + b)
            .prop_flat_map(|n| (Just(n), 0usize..(n + 1)));
        for _ in 0..64 {
            let (n, k) = s.generate(&mut rng);
            assert!((3..13).contains(&n));
            assert!(k <= n);
        }
        let b = (0usize..5).boxed();
        assert!(b.generate(&mut rng) < 5);
    }
}
