//! The per-case RNG and block configuration.

/// Configuration of one `proptest!` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Number of passing cases required.
    pub cases: u32,
}

impl Config {
    /// A configuration requiring `cases` passing cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }

    /// The case budget, honoring the `PROPTEST_CASES` environment
    /// variable as an upper bound (so CI can cheapen suites globally).
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        let env_cap = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(u32::MAX);
        self.cases.min(env_cap).max(1)
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Deterministic xoshiro256++ stream used to generate case inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a stream from a case seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *w = z ^ (z >> 31);
        }
        TestRng { s }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sampling bound");
        // Modulo bias is ~bound/2^64 — irrelevant for test generation.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_and_caps() {
        assert_eq!(Config::default().cases, 256);
        assert_eq!(Config::with_cases(12).cases, 12);
        assert!(Config::with_cases(0).effective_cases() >= 1);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(5);
        let mut b = TestRng::new(5);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let u = a.unit_f64();
        assert!((0.0..1.0).contains(&u));
        assert!(a.below(10) < 10);
    }
}
