//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses:
//! [`Strategy`] with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`Just`], [`arbitrary::any`], `collection::vec`, the
//! [`proptest!`] macro with `#![proptest_config(...)]`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the case's seed so it
//!   can be replayed, but inputs are not minimized.
//! * **Deterministic schedule.** Case seeds derive from a fixed constant
//!   and the case index, so a run is reproducible without a
//!   `proptest-regressions` file (those files are ignored).
//! * Case count defaults to 256 and can be lowered per block with
//!   `ProptestConfig::with_cases(n)` or globally with the
//!   `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod strategy;
pub mod test_runner;

/// The rejected/failed outcome of one generated case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case did not satisfy a `prop_assume!` precondition.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with a preformatted message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// Everything a property test module needs, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs one property-test body over `cases` generated inputs.
///
/// This is the engine behind the [`proptest!`] macro: `run_one` is
/// called once per case with a fresh deterministic RNG and returns the
/// body's verdict. Excessive rejection (more than 16x the case budget)
/// aborts the test as upstream proptest does.
///
/// # Panics
///
/// Panics when a case fails, or when too many cases are rejected.
pub fn run_cases(
    name: &str,
    config: &test_runner::Config,
    mut run_one: impl FnMut(&mut test_runner::TestRng) -> Result<(), TestCaseError>,
) {
    let cases = config.effective_cases();
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let max_rejects = cases.saturating_mul(16).max(1024);
    let mut stream: u64 = 0;
    while passed < cases {
        let case_seed = 0xcafe_f00d_d15e_a5e5_u64 ^ (u64::from(passed) << 32) ^ stream;
        let mut rng = test_runner::TestRng::new(case_seed);
        match run_one(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                stream = stream.wrapping_add(0x9e37_79b9_7f4a_7c15);
                assert!(
                    rejected < max_rejects,
                    "{name}: too many rejected cases ({rejected}) for {cases} requested"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {passed} (seed {case_seed:#x}) failed: {msg}")
            }
        }
    }
}

/// Declares property tests: `fn name(pattern in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (
        @funcs ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_cases(
                    stringify!($name),
                    &config,
                    |rng| {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::generate(&($strat), rng);
                        )+
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Fails the current case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("{}\n  both: {:?}", format!($($fmt)+), l),
            ));
        }
    }};
}

/// Discards the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}
