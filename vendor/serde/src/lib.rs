//! Minimal offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on many model types
//! for forward compatibility, but never serializes at runtime (report
//! JSON is hand-formatted). This stub re-exports no-op derive macros so
//! those attributes keep compiling in an offline build.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
