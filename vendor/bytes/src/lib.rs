//! Minimal offline stand-in for the `bytes` crate.
//!
//! Provides `Vec<u8>`-backed [`Bytes`]/[`BytesMut`] and just enough of
//! [`BufMut`] for the workspace's MSB-first bit packing.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// The bytes as a plain slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Append-only writing into a byte buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, value: u8);

    /// Appends a slice.
    fn put_slice(&mut self, data: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, value: u8) {
        self.0.push(value);
    }

    fn put_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_freeze_roundtrip() {
        let mut m = BytesMut::with_capacity(2);
        m.put_u8(0xAB);
        m.put_slice(&[0xCD, 0xEF]);
        let b = m.freeze();
        assert_eq!(&b[..], &[0xAB, 0xCD, 0xEF]);
        assert_eq!(b[0], 0xAB);
        assert_eq!(Bytes::copy_from_slice(&[1, 2]).as_slice(), &[1, 2]);
        assert_eq!(Bytes::from(vec![3]).as_ref(), &[3]);
    }
}
