//! Minimal offline stand-in for the `criterion` crate.
//!
//! Runs each benchmark for a fixed sample count, reports mean wall-clock
//! time per iteration on stdout, and understands just enough of the
//! criterion API (`benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`) for this workspace's bench targets. No statistics,
//! plots, or baseline comparison — the numbers are indicative, not
//! rigorous.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Drives the timing loop of one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via a black box.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warm-up call outside the timed region.
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let mean = bencher.mean();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  {:.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{name}: {:.3} ms/iter over {} samples{rate}",
        mean.as_secs_f64() * 1e3,
        bencher.samples.len()
    );
}

/// The benchmark registry and runner.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first free
        // argument. `--test` (as with real criterion) switches to a
        // run-once smoke mode: every benchmark body executes a single
        // time so CI can prove the harness still works without paying
        // for measurement. Other flags are ignored.
        let args: Vec<String> = std::env::args().skip(1).collect();
        let test_mode = args.iter().any(|a| a == "--test");
        let filter = args.into_iter().find(|a| !a.starts_with('-'));
        Criterion {
            default_sample_size: 10,
            filter,
            test_mode,
        }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function(
        &mut self,
        name: &str,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        if self.matches(name) {
            let mut bencher = Bencher {
                samples: Vec::new(),
                sample_size: self.sample_size_for(None),
            };
            routine(&mut bencher);
            if self.test_mode {
                println!("{name}: test ok");
            } else {
                report(name, &bencher, None);
            }
        }
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_ref().is_none_or(|f| name.contains(f.as_str()))
    }

    /// Effective sample count: 1 in `--test` mode, else the group's
    /// override or the default.
    fn sample_size_for(&self, group_override: Option<usize>) -> usize {
        if self.test_mode {
            1
        } else {
            group_override.unwrap_or(self.default_sample_size)
        }
    }
}

/// A group of related benchmarks sharing sample-size and throughput
/// settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        name: &str,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        if self.criterion.matches(&full) {
            let mut bencher = Bencher {
                samples: Vec::new(),
                sample_size: self.criterion.sample_size_for(self.sample_size),
            };
            routine(&mut bencher);
            if self.criterion.test_mode {
                println!("{full}: test ok");
            } else {
                report(&full, &bencher, self.throughput);
            }
        }
        self
    }

    /// Closes the group.
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion {
            default_sample_size: 3,
            filter: None,
            test_mode: false,
        };
        let mut ran = 0usize;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(ran, 4);

        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(10));
        let mut n = 0usize;
        group.bench_function("inner", |b| b.iter(|| n += 1));
        group.finish();
        assert_eq!(n, 3);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            default_sample_size: 1,
            filter: Some("match-me".into()),
            test_mode: false,
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("does-match-me", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn test_mode_runs_each_benchmark_once() {
        let mut c = Criterion {
            default_sample_size: 50,
            filter: None,
            test_mode: true,
        };
        let mut ran = 0usize;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        // 1 warm-up + 1 sample, regardless of the configured size.
        assert_eq!(ran, 2);
        let mut group = c.benchmark_group("g");
        group.sample_size(40);
        let mut n = 0usize;
        group.bench_function("inner", |b| b.iter(|| n += 1));
        group.finish();
        assert_eq!(n, 2);
    }
}
