//! Meta-crate for workspace-level examples and integration tests.
//!
//! See [`strentropy`] for the actual library surface.

#![forbid(unsafe_code)]

pub use strentropy;
