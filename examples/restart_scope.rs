//! The restart experiment, as you would see it on a storage scope:
//! overlay many restarts of the same oscillator from the same initial
//! state and watch the edges fan out — the visual certificate that the
//! jitter is thermal, not deterministic.
//!
//! Run with: `cargo run --release --example restart_scope`

use std::error::Error;

use strentropy::prelude::*;
use strentropy::trng::elementary::EntropySource;
use strentropy::trng::restart;

fn main() -> Result<(), Box<dyn Error>> {
    let board = Board::new(Technology::cyclone_iii(), 0, 42);
    let source = EntropySource::Str(StrConfig::new(16, 8)?);
    let period = source.predicted_period_ps(&board);

    // 96 restarts; probe the dispersion of edges 2, 8, 32, 128.
    let edge_indices = [2usize, 8, 32, 128];
    let outcome = restart::run(&source, &board, 7, 96, &[period], &edge_indices)?;

    println!("16-stage STR, 96 restarts from the identical token pattern\n");
    println!("edge-time dispersion (the scope's 'fan-out'):");
    for (i, &k) in outcome.edge_indices.iter().enumerate() {
        let sigma = outcome.edge_sigma_ps[i];
        let bar = "#".repeat((sigma * 4.0) as usize);
        println!("  edge {k:>4}: sigma = {sigma:6.2} ps  |{bar}");
    }
    println!(
        "\nsqrt(k) growth means every restart diverges thermally;\n\
         a pseudo-random source would print zeros here."
    );

    // The same campaign at a noisy corner shows the entropy onset.
    let noisy = Board::new(
        Technology::cyclone_iii()
            .with_sigma_g_ps(60.0)
            .with_sigma_intra(0.0)
            .with_sigma_inter(0.0),
        0,
        42,
    );
    let source = EntropySource::Str(StrConfig::new(8, 4)?);
    let noisy_period = source.predicted_period_ps(&noisy);
    let delays: Vec<f64> = [2.0, 10.0, 40.0, 160.0]
        .iter()
        .map(|m| m * noisy_period)
        .collect();
    let outcome = restart::run(&source, &noisy, 9, 96, &delays, &[1])?;
    println!("\nbit sampled at a fixed delay after restart (noisy corner):");
    for ((delay, h), bits) in delays
        .iter()
        .zip(outcome.entropy_per_delay())
        .zip(&outcome.per_delay_bits)
    {
        println!(
            "  t = {:>6.0} ps ({:>4.0} periods): ones = {:>2}/96, H = {h:.3}",
            delay,
            delay / noisy_period,
            bits.count_ones()
        );
    }
    Ok(())
}
