//! Watch tokens propagate: render occupancy films of a self-timed ring
//! under different technologies and initial layouts (the paper's Fig. 5
//! phenomenon, interactively).
//!
//! Run with:
//! `cargo run --release --example mode_explorer [fpga|asic] [spread|clustered]`

use std::error::Error;

use strentropy::prelude::*;
use strentropy::rings::str_ring::TokenLayout;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let profile = args.next().unwrap_or_else(|| "fpga".to_owned());
    let layout_arg = args.next().unwrap_or_else(|| "clustered".to_owned());

    let tech = match profile.as_str() {
        "fpga" => Technology::cyclone_iii(),
        "asic" => Technology::asic_like(),
        other => return Err(format!("unknown profile {other} (use fpga|asic)").into()),
    };
    let layout = match layout_arg.as_str() {
        "spread" => TokenLayout::Spread,
        "clustered" => TokenLayout::Clustered,
        other => return Err(format!("unknown layout {other} (use spread|clustered)").into()),
    };

    let board = Board::new(tech, 0, 2012);
    let config = StrConfig::new(16, 6)?.with_layout(layout);
    println!(
        "16-stage STR, NT = 6, {layout_arg} start, {profile} profile \
         (Dcharlie = {:.0} ps, drafting = {:.0} ps)\n",
        board.technology().charlie_delay_ps(),
        board.technology().drafting_delay_ps()
    );
    println!("initial state: {}", config.initial_state().occupancy_string());

    let full = measure::run_str_full(&config, &board, 7, 400)?;
    let detected = mode::classify_half_periods(&full.run.half_periods_ps);
    let cv = mode::spacing_cv(&full.run.half_periods_ps).unwrap_or(f64::NAN);

    // Film of the steady regime: ~3 revolutions, 32 frames.
    let window = full.run.periods_ps.iter().take(24).sum::<f64>();
    let start = Time::from_ps((full.end_time.as_ps() - window).max(0.0));
    println!("\nsteady-state occupancy (one row per frame, T = token):");
    for frame in mode::occupancy_film(&full.stage_traces, start, full.end_time, 32) {
        println!("  {frame}");
    }
    println!(
        "\ndetected mode: {detected} (spacing CV = {cv:.3}), F = {:.0} MHz",
        full.run.frequency_mhz
    );
    Ok(())
}
