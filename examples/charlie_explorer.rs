//! Explore the Charlie diagram (the paper's Fig. 7): plot `charlie(s)`
//! for several effect magnitudes, recover the parameters with the
//! hyperbola fit, and check the analytic curve against an actual
//! simulated ring.
//!
//! Run with: `cargo run --release --example charlie_explorer`

use std::error::Error;

use strentropy::analysis::fit;
use strentropy::prelude::*;
use strentropy::rings::CharlieModel;

fn main() -> Result<(), Box<dyn Error>> {
    let ds = 255.0;
    println!("Charlie diagrams for Ds = {ds} ps (columns: Dcharlie = 0, 64, 128, 256 ps)\n");
    let models: Vec<CharlieModel> = [0.0, 64.0, 128.0, 256.0]
        .iter()
        .map(|&dch| CharlieModel::new(ds, dch))
        .collect::<Result<_, _>>()?;

    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "s (ps)", "Dch=0", "Dch=64", "Dch=128", "Dch=256"
    );
    for i in -8..=8 {
        let s = f64::from(i) * 75.0;
        print!("{s:>8.0}");
        for model in &models {
            print!(" {:>10.1}", model.charlie_delay(s));
        }
        println!();
    }

    // Fit recovery: sample the Dch = 128 curve and invert it.
    let diagram = models[2].diagram(600.0, 60);
    let (s, d): (Vec<f64>, Vec<f64>) = diagram.into_iter().unzip();
    let fitted = fit::charlie_hyperbola(&s, &d)?;
    println!(
        "\nhyperbola fit of the Dch=128 curve: Ds = {:.2} ps, Dcharlie = {:.2} ps",
        fitted.static_delay_ps, fitted.charlie_delay_ps
    );

    // Cross-check against a simulated ring: an NT = NB ring runs at
    // separation 0, so its period measures charlie(0) directly.
    let board = Board::new(
        Technology::cyclone_iii()
            .with_sigma_g_ps(0.0)
            .with_sigma_intra(0.0)
            .with_sigma_inter(0.0),
        0,
        1,
    );
    let config = StrConfig::new(16, 8)?.with_routing_ps(0.0)?;
    let run = measure::run_str(&config, &board, 1, 200)?;
    let deff = (1e6 / run.frequency_mhz) / 4.0; // T = 4 Deff at NT = NB = L/2
    println!(
        "simulated 16-stage ring: Deff = {:.1} ps vs charlie(0) = {:.1} ps",
        deff,
        models[2].charlie_delay(0.0)
    );
    Ok(())
}
