//! Quickstart: build the paper's flagship oscillator (a 96-stage
//! self-timed ring with `NT = NB = 48`) on a simulated Cyclone III
//! board, measure it, and compare against the analytic model and the
//! paper's reported numbers.
//!
//! Run with: `cargo run --release --example quickstart`

use std::error::Error;

use strentropy::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    // A board is one seeded draw from the technology's process
    // distribution, operating at the nominal 1.2 V / 25 C point.
    let board = Board::new(Technology::cyclone_iii(), 0, 42);

    // The paper's workhorse ring: evenly-spaced mode guaranteed by
    // NT = NB (its Eq. 2).
    let config = StrConfig::new(96, 48)?;

    // Predict, then simulate.
    let predicted_mhz = analytic::str_frequency_mhz(&config, &board);
    let run = measure::run_str(&config, &board, 7, 2_000)?;
    let sigma_period = jitter::period_jitter(&run.periods_ps)?;

    println!("96-stage self-timed ring (NT = NB = 48)");
    println!("  analytic frequency : {predicted_mhz:8.2} MHz");
    println!("  simulated frequency: {:8.2} MHz", run.frequency_mhz);
    println!("  period jitter      : {sigma_period:8.2} ps");
    println!("  (paper: ~320-328 MHz, sigma_p in the 2-4 ps band)");

    // The same measurement for the IRO the paper compares against.
    let iro = IroConfig::new(5)?;
    let iro_run = measure::run_iro(&iro, &board, 7, 2_000)?;
    let iro_sigma = jitter::period_jitter(&iro_run.periods_ps)?;
    println!("\n5-stage inverter ring oscillator");
    println!("  simulated frequency: {:8.2} MHz", iro_run.frequency_mhz);
    println!("  period jitter      : {iro_sigma:8.2} ps");
    println!(
        "  Eq. 4 prediction   : {:8.2} ps  (sqrt(2k) * sigma_g)",
        analytic::iro_sigma_period_ps(&iro, &board)
    );

    // The STR's jitter does not grow with ring length; the IRO's does.
    // That, plus robustness (Tables I and II), is the paper's thesis.
    println!("\nsigma_p ratio STR96/IRO5: {:.2}", sigma_period / iro_sigma);
    Ok(())
}
