//! The attacker's view: modulate the core supply and watch deterministic
//! jitter appear in each oscillator family.
//!
//! Reproduces the mechanism of the paper's refs [1], [2] — the reason
//! robustness to voltage matters for TRNGs — and shows the paper's
//! Sec. IV-B claim: the deterministic component accumulates with ring
//! length in the IRO but stays bounded in the STR.
//!
//! Run with: `cargo run --release --example voltage_attack`

use std::error::Error;

use strentropy::prelude::*;
use strentropy::trng::attack::probe_response;
use strentropy::trng::elementary::EntropySource;

fn main() -> Result<(), Box<dyn Error>> {
    let board = Board::new(Technology::cyclone_iii(), 0, 42);
    let freq_mhz = 5.0; // modulation frequency
    println!("supply attack: ±1% sine at {freq_mhz} MHz on the 1.2 V core\n");
    println!(
        "{:<10} {:>10} {:>12} {:>14} {:>12}",
        "ring", "T (ps)", "A_det (ps)", "sigma_p (ps)", "det/random"
    );

    for l in [5usize, 25, 80] {
        let source = EntropySource::Iro(IroConfig::new(l)?);
        let r = probe_response(&source, &board, 0.012, freq_mhz, 11, 3_000)?;
        println!(
            "{:<10} {:>10.0} {:>12.1} {:>14.2} {:>12.2}",
            format!("IRO {l}C"),
            r.mean_period_ps,
            r.det_amplitude_ps,
            r.sigma_random_ps,
            r.det_to_random_ratio()
        );
    }
    for l in [8usize, 32, 96] {
        let source = EntropySource::Str(StrConfig::new(l, l / 2)?);
        let r = probe_response(&source, &board, 0.012, freq_mhz, 11, 3_000)?;
        println!(
            "{:<10} {:>10.0} {:>12.1} {:>14.2} {:>12.2}",
            format!("STR {l}C"),
            r.mean_period_ps,
            r.det_amplitude_ps,
            r.sigma_random_ps,
            r.det_to_random_ratio()
        );
    }

    println!(
        "\nThe IRO's deterministic amplitude grows with its (length-proportional)\n\
         period — the linear accumulation of ref [2] — while the STR's stays small\n\
         and nearly flat: only the token spacing, not the whole revolution, is\n\
         exposed to the common-mode modulation."
    );
    Ok(())
}
