//! Generate a 256-bit key from a simulated STR-based elementary TRNG:
//! ring simulation -> calibrated phase model -> raw bits -> von Neumann
//! conditioning -> statistical verdicts -> hex key.
//!
//! Run with: `cargo run --release --example trng_keygen`

use std::error::Error;

use strentropy::prelude::*;
use strentropy::trng::elementary::{ElementaryTrng, EntropySource};

fn main() -> Result<(), Box<dyn Error>> {
    let board = Board::new(Technology::cyclone_iii(), 0, 42);

    // The entropy source: the paper's 96-stage STR. The reference clock
    // is slow enough that the jitter accumulated per sample is a large
    // fraction of the ring period.
    let source = EntropySource::Str(StrConfig::new(96, 48)?);
    let trng = ElementaryTrng::new(source, 20.0 * 3_125.0, 10.0)?;

    // Calibrate the fast phase model from an event-driven run, then
    // crank its accumulated jitter to the q = 0.45 operating point
    // (a slower reference; see EXT-TRNG for the scaling law).
    let probe = trng.calibrated_phase_model(&board, 3, 3_000)?;
    println!(
        "calibrated source: T = {:.1} ps, sigma_acc(20T) = {:.1} ps",
        probe.period_ps(),
        probe.sigma_acc_ps()
    );
    let mut model =
        strentropy::trng::phase::PhaseModel::new(probe.period_ps(), 0.45 * probe.period_ps(), 3)?;

    // Raw stream, conditioned stream, verdicts.
    let raw = model.generate(120_000);
    let conditioned = postprocess::von_neumann(&raw);
    println!(
        "raw bits: {} (bias {:+.4}), after von Neumann: {} (bias {:+.4})",
        raw.len(),
        entropy::bias(&raw)?,
        conditioned.len(),
        entropy::bias(&conditioned)?
    );
    println!(
        "entropy: shannon {:.4}, min {:.4}, markov {:.4}",
        entropy::shannon_bit_entropy(&conditioned)?,
        entropy::min_entropy(&conditioned)?,
        entropy::markov_entropy(&conditioned)?
    );

    let report = battery::run_all(&conditioned)?;
    println!("\nstatistical battery:\n{}", report.to_table(0.01));
    if !report.all_passed(0.01) {
        println!("warning: not all tests passed — do not use this key");
    }

    // Online health tests (SP 800-90B): a deployed generator runs these
    // continuously on the raw stream and kills the output on alarm.
    let (rct_alarms, apt_alarms) =
        strentropy::trng::health::scan(&raw, entropy::min_entropy(&raw)?.clamp(0.05, 1.0))?;
    println!("health tests on the raw stream: RCT alarms = {rct_alarms}, APT alarms = {apt_alarms}");

    // Pack the first 256 conditioned bits as the key.
    let key = conditioned.slice(0, 256).pack();
    let hex: String = key.iter().map(|b| format!("{b:02x}")).collect();
    println!("256-bit key: {hex}");
    Ok(())
}
