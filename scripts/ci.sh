#!/usr/bin/env bash
# Offline CI gate: build, full workspace test suite, strict clippy, and
# the BENCH_sweep.json smoke run. Works without network access — all
# third-party crates are vendored path dependencies (see
# docs/offline_deps.md), so `--offline` is passed everywhere.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace --offline

echo "== tests (workspace) =="
cargo test -q --workspace --offline

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== simlint self-test (every SL1xx/SL2xx code fires on its fixture) =="
# Also fails if the fixture directory and the rule registry disagree, so
# a new rule cannot land without a firing fixture (and vice versa).
cargo run -q --release -p simlint --offline -- --self-test

echo "== simlint (deny mode, allowlist + grandfather baseline) =="
# Deny mode fails on any finding beyond the committed baseline AND on
# stale baseline entries, so the grandfather ledger only ever shrinks.
cargo run -q --release -p simlint --offline -- \
    --deny --allowlist scripts/simlint.allow \
    --baseline scripts/simlint.baseline

echo "== simlint JSON shape (version 2: rule counts + scan timing) =="
if command -v python3 >/dev/null 2>&1; then
    cargo run -q --release -p simlint --offline -- \
        --allowlist scripts/simlint.allow \
        --baseline scripts/simlint.baseline --json \
        | python3 -c "
import json, sys
report = json.load(sys.stdin)
assert report['version'] == 2, report
assert report['files_scanned'] > 40, report
assert 'scan_ms' in report, sorted(report)
counts = report['rule_counts']
assert len(counts) == 17 and all(c.startswith('SL') for c in counts), counts
assert all(n == 0 for n in counts.values()), counts
assert report['suppressed'] == 2, report['suppressed']
assert report['diagnostics'] == [], report['diagnostics']
print(f\"simlint JSON: valid v2, {report['files_scanned']} files, \"
      f\"{len(counts)} rules, {report['suppressed']} grandfathered\")
"
else
    echo "simlint JSON: python3 unavailable, validation skipped"
fi

echo "== simlint catalog vs docs (rule table drift) =="
# docs/static_analysis.md documents every rule in `| code | severity |
# scope | ... |` table rows; they must match --catalog exactly.
if command -v python3 >/dev/null 2>&1; then
    cargo run -q --release -p simlint --offline -- --catalog \
        | python3 -c "
import json, re, sys
catalog = {(r['code'], r['severity'], r['scope'])
           for r in json.load(sys.stdin)['rules']}
rows = set()
for line in open('docs/static_analysis.md'):
    m = re.match(r'^\| *(SL\d{3}) *\| *(\w+) *\| *([\w+-]+) *\|', line)
    if m:
        rows.add(m.groups())
missing = catalog - rows
extra = rows - catalog
assert not missing and not extra, (
    f'docs/static_analysis.md drifted from --catalog: '
    f'missing={sorted(missing)} extra={sorted(extra)}')
print(f'simlint catalog: {len(catalog)} rules documented, no drift')
"
else
    echo "simlint catalog: python3 unavailable, validation skipped"
fi

echo "== bench_sweep smoke (quick, netlist lints denied) =="
out="$(mktemp -t BENCH_sweep.XXXXXX.json)"
engine_out="$(mktemp -t BENCH_engine.XXXXXX.json)"
trap 'rm -f "$out" "$engine_out"' EXIT
# STRENT_LINT=deny escalates the SL0xx netlist verifier to hard errors:
# every ring the smoke run builds must pass static verification.
STRENT_LINT=deny cargo run -q --release -p strent-bench --bin bench_sweep --offline -- \
    --quick --out "$out" --engine-out "$engine_out"
# Both emitters hand-format their JSON; make sure they stay parseable
# and that the engine report actually carries throughput numbers.
[ -s "$engine_out" ] || { echo "BENCH_engine.json was not emitted"; exit 1; }
if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json, sys; json.load(open(sys.argv[1]))" "$out"
    echo "BENCH_sweep.json: valid JSON"
    python3 - "$engine_out" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
micro = report["str32_dispatch_microbench"]["queues"]
assert {q["name"] for q in micro} == {"wheel", "binary_heap", "calendar"}
for entry in micro:
    assert entry["events_per_sec"] > 0, f"bogus events/sec in {entry}"
experiments = report["experiments"]
assert experiments, "engine report lists no experiments"
# Stages whose jobs feed kernel stats through their JobMeter must keep
# doing so; the trace-driven stages hide their simulators inside helper
# types, so they must OMIT the event fields entirely rather than
# publish a misleading 0.
metered = {"fig5", "fig8", "obs_a", "table1", "table2", "ext_charlie",
           "ext_mode", "ext_det", "ext_flicker", "ext_method"}
for entry in experiments:
    assert entry["wall_ns"] > 0, f"bogus wall time in {entry}"
    if entry["label"] in metered:
        assert entry["events_per_sec"] > 0, f"unmetered stage {entry}"
    elif "events" in entry or "events_per_sec" in entry:
        assert entry["events"] > 0 and entry["events_per_sec"] > 0, \
            f"zero event fields must be omitted, not published: {entry}"
print(f"BENCH_engine.json: valid JSON, {len(experiments)} experiments")
PY
else
    echo "bench JSON: python3 unavailable, validation skipped"
fi

echo "== surrogate equivalence + speedup gate =="
# The statistical-equivalence harness must be green before the speedup
# claim means anything: a fast surrogate that drifts from the event-
# driven reference is worse than no surrogate at all.
cargo test -q --offline --test surrogate_equivalence
surrogate_out="$(mktemp -t BENCH_surrogate.XXXXXX.json)"
trap 'rm -f "$out" "$engine_out" "$surrogate_out"' EXIT
cargo run -q --release -p strent-bench --bin bench_surrogate --offline -- \
    --quick --seed 2012 --out "$surrogate_out"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$surrogate_out" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema"] == "strentropy-bench-surrogate/1", report
presets = report["presets"]
assert {p["label"] for p in presets} == {"str32", "str64", "iro32"}, presets
for p in presets:
    for side in ("full_sim", "surrogate"):
        block = p[side]
        assert block["wall_ns"] > 0 and block["samples_per_sec"] > 0, p
        assert 0.3 < block["ones_fraction"] < 0.7, p
        assert block["period_mean_ps"] > 0 and block["period_sigma_ps"] > 0, p
    assert p["speedup"] > 1.0, f"surrogate slower than full sim: {p}"
    assert p["mean_rel_err"] < 0.01, f"period mean drifted: {p}"
    assert 0.5 < p["sigma_ratio"] < 2.0, f"period sigma drifted: {p}"
speedup = report["str32_speedup"]
assert speedup >= 50.0, f"str32 speedup {speedup} below the 50x floor"
print(f"BENCH_surrogate.json: valid, str32 speedup {speedup:.1f}x")
PY
else
    echo "BENCH_surrogate.json: python3 unavailable, validation skipped"
fi

echo "== entropy estimation gate (bound vs Markov agreement, CMRR) =="
# bench_entropy exits nonzero on its own if the Markov estimator
# undercuts the analytic bound beyond the documented band; the JSON
# check then holds the subsystem to its calibration claims: STR >= IRO
# bound at equal sampling, measurable common-mode rejection, and a
# live estimator verdict on a balanced stream.
entropy_out="$(mktemp -t BENCH_entropy.XXXXXX.json)"
trap 'rm -f "$out" "$engine_out" "$surrogate_out" "$entropy_out"' EXIT
cargo run -q --release -p strent-bench --bin bench_entropy --offline -- \
    --quick --seed 2012 --out "$entropy_out"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$entropy_out" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema"] == "strentropy-bench-entropy/1", report["schema"]
for probe in report["estimator"]:
    assert probe["feed_mbits_per_sec"] > 0 and probe["evals_per_sec"] > 0, probe
    assert probe["bits_per_bit"] > 0.6, f"balanced stream scored low: {probe}"
rows = report["agreement"]
assert len(rows) == 9, f"expected 9 sweep rows, got {len(rows)}"
band = report["agreement_band"]
assert report["within_band"] and report["worst_agreement"] >= -band, report
by = lambda label: sorted((r for r in rows if r["label"] == label),
                          key=lambda r: r["factor"])
for s, i in zip(by("str32"), by("iro32")):
    assert s["bound"] >= i["bound"], f"STR bound below IRO: {s} vs {i}"
diff = report["differential"]
assert len(diff) == 2 and report["min_cmrr_db"] > 15.0, report
print(f"BENCH_entropy.json: valid, worst agreement "
      f"{report['worst_agreement']:+.4f} (band -{band}), "
      f"min CMRR {report['min_cmrr_db']:.1f} dB")
PY
else
    echo "BENCH_entropy.json: python3 unavailable, validation skipped"
fi

echo "== robustness smoke (panic isolation, watchdogs, partial results) =="
manifest="$(mktemp -t robustness_manifest.XXXXXX.json)"
trap 'rm -f "$out" "$engine_out" "$surrogate_out" "$entropy_out" "$manifest"' EXIT
# Without --keep-going the injected failures must force a non-zero exit...
if cargo run -q --release -p strent-bench --bin robustness_smoke --offline \
    > "$manifest" 2>/dev/null; then
    echo "robustness_smoke exited zero without --keep-going"; exit 1
fi
# ...and with it, partial results are accepted (exit zero) while the
# failure manifest still lands on stdout.
cargo run -q --release -p strent-bench --bin robustness_smoke --offline -- \
    --keep-going > "$manifest"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$manifest" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["version"] == 1, report
assert report["jobs"] == 14 and report["successes"] == 11, report
kinds = [(f["index"], f["kind"]) for f in report["failures"]]
assert kinds == [(3, "panicked"), (6, "stalled"), (9, "panicked")], kinds
print("robustness manifest: valid JSON, 11/14 successes, 3 typed failures")
PY
else
    echo "robustness manifest: python3 unavailable, validation skipped"
fi

echo "== serve smoke (shard determinism, scaling gate, 1024-conn UDS frontend) =="
serve_out="$(mktemp -t BENCH_serve.XXXXXX.json)"
serve_sock="$(mktemp -u -t strent-serve-ci.XXXXXX.sock)"
serve_check="$(mktemp -t check_serve.XXXXXX.py)"
trap 'rm -f "$out" "$engine_out" "$surrogate_out" "$entropy_out" "$manifest" "$serve_out" "$serve_sock" "$serve_check"' EXIT
# --smoke drives ≥1024 multiplexed connections through the poll event
# loop on a temp socket plus a 3-client deterministic byte-for-byte
# replay; the binary exits nonzero if any invariant (shard-count digest
# identity, ≥2x shard scaling, backpressure classes, fault containment,
# clean shutdown) fails.
STRENT_LINT=deny cargo run -q --release -p strent-bench --bin serve_load --offline -- \
    --quick --smoke --socket "$serve_sock" --out "$serve_out"
[ -s "$serve_out" ] || { echo "BENCH_serve.json was not emitted"; exit 1; }
[ -e "$serve_sock" ] && { echo "serve smoke left its socket behind"; exit 1; }
# One validator for both the fresh smoke output and the committed
# artifact at the repo root — the schema and invariants must hold for
# each.
cat > "$serve_check" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema"] == "strentropy-bench-serve/2", report["schema"]
assert report["host_cpus"] >= 1, report
det = report["determinism"]
digests = {d["fnv1a64"] for d in det["shard_digests"]}
shards = sorted(d["shards"] for d in det["shard_digests"])
assert shards == [1, 2, 8], shards
assert len(digests) == 1 and det["bit_identical"], det
assert det["matches_pool_replay"], det
closed = report["closed_loop"]
assert [p["clients"] for p in closed["points"]] == [1, 16, 128, 1024], closed
for p in closed["points"]:
    assert p["throughput_rps"] > 0, p
    assert p["latency_p999_us"] >= p["latency_p99_us"] >= p["latency_p50_us"] >= 0, p
assert closed["saturation_rps"] > 0, closed
open_loop = report["open_loop"]
assert len(open_loop["points"]) == 3, open_loop
for p in open_loop["points"]:
    assert p["throughput_rps"] > 0 and p["latency_p99_us"] > 0, p
scaling = report["shard_scaling"]
assert scaling["harness"] == "in_process", scaling
for backend in ("full_sim", "surrogate"):
    pts = [p for p in scaling["points"] if p["backend"] == backend]
    assert sorted(p["shards"] for p in pts) == [1, 2, 4, 8], pts
assert scaling["speedup_8v1"] >= 2.0, scaling
bp = report["backpressure"]
assert bp["busy"] > 0 and bp["rate_limited"] > 0 and bp["shed"] > 0, bp
assert bp["all_classes_observed"], bp
fault = report["fault_drill"]
assert fault["alarms"] >= 1 and fault["replacements"] >= 1, fault
assert fault["bytes_per_alarm"] > 0 and fault["health_clean"], fault
smoke = report["uds_smoke"]
assert smoke["mux_clients"] >= 1024 and smoke["mux_errors"] == 0, smoke
assert smoke["accepted"] >= 1024 and smoke["accept_errors"] == 0, smoke
assert smoke["register_errors"] == 0 and smoke["drained"], smoke
assert smoke["replay_clients"] == 3 and smoke["bytes_served"] > 0, smoke
assert smoke["deterministic"] and smoke["clean_shutdown"], smoke
print(f"{sys.argv[2]}: valid, digest {digests.pop()} at shards {shards}, "
      f"speedup 8v1 {scaling['speedup_8v1']:.2f}x, "
      f"{smoke['accepted']} conns accepted")
PY
if command -v python3 >/dev/null 2>&1; then
    python3 "$serve_check" "$serve_out" "serve smoke output"
else
    echo "BENCH_serve.json: python3 unavailable, validation skipped"
fi

echo "== committed BENCH_serve.json (schema + invariants) =="
[ -s BENCH_serve.json ] || { echo "committed BENCH_serve.json missing"; exit 1; }
if command -v python3 >/dev/null 2>&1; then
    python3 "$serve_check" BENCH_serve.json "committed BENCH_serve.json"
else
    echo "committed BENCH_serve.json: python3 unavailable, validation skipped"
fi

echo "== chaos drill smoke (supervision, drain, resilient clients) =="
chaos_out="$(mktemp -t BENCH_chaos.XXXXXX.json)"
trap 'rm -f "$out" "$engine_out" "$surrogate_out" "$entropy_out" "$manifest" "$serve_out" "$serve_sock" "$serve_check" "$chaos_out"' EXIT
# serve_chaos derives every injection (worker panics, shard stalls,
# slowloris, poison frames, partial writes, mid-stream disconnects, a
# quarantine storm) from one seed, then asserts bounded recovery,
# byte-identical deterministic output with chaos on vs off, and a
# balanced request ledger. It exits nonzero if any drill fails.
STRENT_LINT=deny cargo run -q --release -p strent-bench --bin serve_chaos --offline -- \
    --quick --out "$chaos_out"
[ -s "$chaos_out" ] || { echo "BENCH_chaos.json was not emitted"; exit 1; }
if command -v python3 >/dev/null 2>&1; then
    python3 - "$chaos_out" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["schema"] == "strentropy-bench-chaos/1", report["schema"]
det = report["determinism"]
assert det["identical"], det
assert det["injected_panics"] >= 1, "chaos-on runs injected nothing"
assert {r["shards"] for r in det["runs"]} == {1, 2, 8}, det["runs"]
rec = report["recovery"]
assert rec["bounded"] and rec["grants"] == rec["requests"], rec
assert rec["max_grant_ms"] < rec["bound_ms"], rec
assert rec["panics"] >= 1 and rec["restarts"] >= 1, rec
storm = report["quarantine_storm"]
assert storm["quarantined"] and storm["rerouted_bytes"] > 0, storm
uds = report["uds"]
assert uds["zero_silent_drops"], uds
acct = uds["accounting"]
assert acct["issued"] == (acct["granted"] + acct["typed_rejections"]
                          + acct["abandoned"]), acct
assert uds["slowloris_reaped"] >= 1 and uds["poison_survived"], uds
drain = report["drain"]
assert drain["server_drained"] and drain["service_drained"], drain
print(f"BENCH_chaos.json: valid, {det['injected_panics']} panics injected, "
      f"recovery worst {rec['max_grant_ms']:.1f}ms of {rec['bound_ms']:.0f}ms, "
      f"ledger {acct['issued']} issued = {acct['granted']} granted "
      f"+ {acct['typed_rejections']} rejected + {acct['abandoned']} abandoned")
PY
else
    echo "BENCH_chaos.json: python3 unavailable, validation skipped"
fi

echo "== degradation campaign smoke (quick, netlist lints denied) =="
# Every fault class must alarm the online health tests on both ring
# families: 8 scenario rows, all marked detected, zero marked NO.
degradation="$(mktemp -t degradation.XXXXXX.txt)"
trap 'rm -f "$out" "$engine_out" "$surrogate_out" "$entropy_out" "$manifest" "$serve_out" "$serve_sock" "$serve_check" "$chaos_out" "$degradation"' EXIT
STRENT_LINT=deny cargo run -q --release -p strent-bench \
    --bin repro_degradation --offline -- --quick --deny-lints > "$degradation"
detected=$(grep -c ' yes$' "$degradation" || true)
if [ "$detected" -ne 8 ] || grep -q ' NO$' "$degradation"; then
    echo "degradation campaign: expected 8 detected scenarios, got $detected"
    cat "$degradation"
    exit 1
fi
echo "degradation campaign: 8/8 fault scenarios detected"

echo "== criterion engine smoke (--test) =="
cargo bench -q -p strent-bench --bench engine --offline -- --test

echo "== CI green =="
