#!/usr/bin/env bash
# Offline CI gate: build, full workspace test suite, strict clippy, and
# the BENCH_sweep.json smoke run. Works without network access — all
# third-party crates are vendored path dependencies (see
# docs/offline_deps.md), so `--offline` is passed everywhere.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace --offline

echo "== tests (workspace) =="
cargo test -q --workspace --offline

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== bench_sweep smoke (quick) =="
out="$(mktemp -t BENCH_sweep.XXXXXX.json)"
trap 'rm -f "$out"' EXIT
cargo run -q --release -p strent-bench --bin bench_sweep --offline -- \
    --quick --out "$out"
# The emitter hand-formats its JSON; make sure it stays parseable.
if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json, sys; json.load(open(sys.argv[1]))" "$out"
    echo "BENCH_sweep.json: valid JSON"
else
    echo "BENCH_sweep.json: python3 unavailable, JSON validation skipped"
fi

echo "== CI green =="
