//! Property-based tests for the simulation engine substrate.

use proptest::prelude::*;

use strent_sim::{
    Bit, BinaryHeapQueue, CalendarQueue, Edge, Simulator, Time, Trace,
};

/// Strategy producing a list of (time, seq-order irrelevant) event times.
fn times() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0_f64..1e6, 1..200)
}

proptest! {
    /// Both queue implementations pop any workload in identical order.
    #[test]
    fn queues_are_equivalent(ts in times(), width in 1.0_f64..10_000.0) {
        let mut sim_heap = Simulator::with_queue(7, BinaryHeapQueue::new());
        let mut sim_cal = Simulator::with_queue(7, CalendarQueue::new(width));
        let a = sim_heap.add_net("a");
        let b = sim_cal.add_net("a");
        sim_heap.watch(a).expect("net exists");
        sim_cal.watch(b).expect("net exists");
        let mut level = Bit::Low;
        for &t in &ts {
            level = !level;
            sim_heap.inject(a, level, t).expect("valid");
            sim_cal.inject(b, level, t).expect("valid");
        }
        sim_heap.run_until(Time::from_ps(2e6)).expect("no limit");
        sim_cal.run_until(Time::from_ps(2e6)).expect("no limit");
        prop_assert_eq!(
            sim_heap.trace(a).expect("watched").transitions(),
            sim_cal.trace(b).expect("watched").transitions()
        );
    }

    /// Trace transitions are always strictly alternating in level and
    /// non-decreasing in time, regardless of the injection pattern.
    #[test]
    fn traces_alternate_and_are_ordered(ts in times(), flips in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut sim = Simulator::new(3);
        let net = sim.add_net("n");
        sim.watch(net).expect("net exists");
        for (i, &t) in ts.iter().enumerate() {
            let v = Bit::from(flips[i % flips.len()]);
            sim.inject(net, v, t).expect("valid");
        }
        sim.run_until(Time::from_ps(2e6)).expect("no limit");
        let trace = sim.trace(net).expect("watched");
        let mut prev_level = trace.initial();
        let mut prev_time = Time::ZERO;
        for &(t, v) in trace.transitions() {
            prop_assert_ne!(v, prev_level, "levels must alternate");
            prop_assert!(t >= prev_time, "time must be monotone");
            prev_level = v;
            prev_time = t;
        }
    }

    /// Rising and falling edge counts differ by at most one, and the
    /// period list is exactly one shorter than the edge list.
    #[test]
    fn edge_counts_are_consistent(ts in times()) {
        let mut sim = Simulator::new(5);
        let net = sim.add_net("n");
        sim.watch(net).expect("net exists");
        let mut level = Bit::Low;
        for &t in &ts {
            level = !level;
            sim.inject(net, level, t).expect("valid");
        }
        sim.run_until(Time::from_ps(2e6)).expect("no limit");
        let trace = sim.trace(net).expect("watched");
        let rising = trace.rising_edges().len();
        let falling = trace.falling_edges().len();
        prop_assert!(rising.abs_diff(falling) <= 1);
        if rising >= 1 {
            prop_assert_eq!(trace.periods(Edge::Rising).len(), rising - 1);
        }
    }

    /// `value_at` agrees with a naive scan of the transition list.
    #[test]
    fn value_at_matches_linear_scan(
        transitions in prop::collection::vec((0.0_f64..1e4, any::<bool>()), 0..100),
        query in 0.0_f64..1.2e4,
    ) {
        let mut trace = Trace::new(Bit::Low);
        let mut sorted = transitions;
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (t, v) in &sorted {
            trace.record(Time::from_ps(*t), Bit::from(*v));
        }
        let fast = trace.value_at(Time::from_ps(query));
        let mut slow = trace.initial();
        for &(t, v) in trace.transitions() {
            if t <= Time::from_ps(query) {
                slow = v;
            }
        }
        prop_assert_eq!(fast, slow);
    }

    /// VCD export/parse round-trips every recorded transition for any
    /// injection pattern.
    #[test]
    fn vcd_round_trip(ts in times()) {
        let mut sim = Simulator::new(11);
        let net = sim.add_net("sig");
        sim.watch(net).expect("net exists");
        let mut level = Bit::Low;
        for &t in &ts {
            level = !level;
            sim.inject(net, level, t).expect("valid");
        }
        sim.run_until(Time::from_ps(2e6)).expect("no limit");
        let mut out = Vec::new();
        sim.write_vcd(&mut out, "prop").expect("write to Vec");
        let doc = strent_sim::vcd::parse_vcd(&String::from_utf8(out).expect("ascii"))
            .expect("parses");
        let trace = sim.trace(net).expect("watched");
        prop_assert_eq!(doc.changes.len(), trace.len());
        for (change, &(t, v)) in doc.changes.iter().zip(trace.transitions()) {
            prop_assert_eq!(change.0, (t.as_ps() * 1e3).round() as u64);
            prop_assert_eq!(change.2, v);
        }
    }

    /// Two simulators with the same seed and workload produce identical
    /// event statistics (determinism).
    #[test]
    fn runs_are_deterministic(seed in any::<u64>(), ts in times()) {
        fn run(seed: u64, ts: &[f64]) -> (u64, u64) {
            let mut sim = Simulator::new(seed);
            let net = sim.add_net("n");
            let mut level = Bit::Low;
            for &t in ts {
                level = !level;
                sim.inject(net, level, t).expect("valid");
            }
            sim.run_until(Time::from_ps(2e6)).expect("no limit");
            (sim.stats().events_processed, sim.stats().drives_suppressed)
        }
        prop_assert_eq!(run(seed, &ts), run(seed, &ts));
    }
}
