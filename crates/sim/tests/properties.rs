//! Property-based tests for the simulation engine substrate.

use proptest::prelude::*;

use strent_sim::{
    Bit, BinaryHeapQueue, CalendarQueue, Edge, EventQueue, SimStats, Simulator, Time, Trace,
    WheelQueue,
};

/// Strategy producing a list of (time, seq-order irrelevant) event times.
fn times() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0_f64..1e6, 1..200)
}

/// Runs one injection workload and returns its observable outcome:
/// every recorded transition plus the exact kernel statistics.
fn run_workload<Q: EventQueue>(
    mut sim: Simulator<Q>,
    ts: &[f64],
) -> (Vec<(Time, Bit)>, SimStats) {
    let net = sim.add_net("n");
    sim.watch(net).expect("net exists");
    let mut level = Bit::Low;
    for &t in ts {
        level = !level;
        sim.inject(net, level, t).expect("valid");
    }
    sim.run_until(Time::from_ps(2e6)).expect("no limit");
    let transitions = sim.trace(net).expect("watched").transitions().to_vec();
    (transitions, sim.stats())
}

/// Runs a workload with interleaved cancellations and partial horizons:
/// events are injected in two batches, `mask` marks which get cancelled
/// (some before any run, some after a partial run when their siblings
/// already fired), and the sim runs to an intermediate horizon between
/// the batches.
fn run_cancelling_workload<Q: EventQueue>(
    mut sim: Simulator<Q>,
    ts: &[f64],
    mask: &[bool],
    split: usize,
) -> (Vec<(Time, Bit)>, SimStats) {
    let net = sim.add_net("n");
    sim.watch(net).expect("net exists");
    let split = split.min(ts.len());
    let mut level = Bit::Low;
    let mut first_ids = Vec::new();
    for &t in &ts[..split] {
        level = !level;
        first_ids.push(sim.inject(net, level, t).expect("valid"));
    }
    // Cancel the masked half of the first batch up front...
    for (i, &id) in first_ids.iter().enumerate() {
        if mask[i % mask.len()] {
            sim.cancel(id);
        }
    }
    // ...run half the horizon, so the rest of the batch fires...
    sim.run_until(Time::from_ps(5e5)).expect("no limit");
    // ...then cancel everything in the first batch again: pending
    // events get cancelled once (idempotent), fired ones are stale
    // handles that must hit nothing, even where slots were recycled.
    for &id in &first_ids {
        sim.cancel(id);
    }
    // Second batch scheduled relative to the advanced current time.
    let mut second_ids = Vec::new();
    for &t in &ts[split..] {
        level = !level;
        second_ids.push(sim.inject(net, level, t).expect("valid"));
    }
    for (i, &id) in second_ids.iter().enumerate() {
        if mask[(i + 1) % mask.len()] {
            sim.cancel(id);
        }
    }
    sim.run_until(Time::from_ps(2e6)).expect("no limit");
    let transitions = sim.trace(net).expect("watched").transitions().to_vec();
    (transitions, sim.stats())
}

proptest! {
    /// All three queue implementations pop any workload in identical
    /// order.
    #[test]
    fn queues_are_equivalent(ts in times(), width in 1.0_f64..10_000.0) {
        let heap = run_workload(Simulator::with_queue(7, BinaryHeapQueue::new()), &ts);
        let cal = run_workload(Simulator::with_queue(7, CalendarQueue::new(width)), &ts);
        let wheel = run_workload(Simulator::with_queue(7, WheelQueue::new()), &ts);
        let narrow = run_workload(
            Simulator::with_queue(7, WheelQueue::with_bucket_width(width)),
            &ts,
        );
        prop_assert_eq!(&heap, &cal);
        prop_assert_eq!(&heap, &wheel);
        prop_assert_eq!(&heap, &narrow);
    }

    /// Interleaving cancellations (fresh, duplicate and stale handles)
    /// with partial runs leaves all three queues in agreement, down to
    /// the exact cancellation counters.
    #[test]
    fn queues_are_equivalent_under_cancellation(
        ts in times(),
        mask in prop::collection::vec(any::<bool>(), 1..32),
        split_num in 0_usize..=100,
        width in 1.0_f64..10_000.0,
    ) {
        let split = ts.len() * split_num / 100;
        let heap = run_cancelling_workload(
            Simulator::with_queue(7, BinaryHeapQueue::new()), &ts, &mask, split);
        let cal = run_cancelling_workload(
            Simulator::with_queue(7, CalendarQueue::new(width)), &ts, &mask, split);
        let wheel = run_cancelling_workload(
            Simulator::with_queue(7, WheelQueue::new()), &ts, &mask, split);
        prop_assert_eq!(&heap, &cal);
        prop_assert_eq!(&heap, &wheel);
    }

    /// Trace transitions are always strictly alternating in level and
    /// non-decreasing in time, regardless of the injection pattern.
    #[test]
    fn traces_alternate_and_are_ordered(ts in times(), flips in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut sim = Simulator::new(3);
        let net = sim.add_net("n");
        sim.watch(net).expect("net exists");
        for (i, &t) in ts.iter().enumerate() {
            let v = Bit::from(flips[i % flips.len()]);
            sim.inject(net, v, t).expect("valid");
        }
        sim.run_until(Time::from_ps(2e6)).expect("no limit");
        let trace = sim.trace(net).expect("watched");
        let mut prev_level = trace.initial();
        let mut prev_time = Time::ZERO;
        for &(t, v) in trace.transitions() {
            prop_assert_ne!(v, prev_level, "levels must alternate");
            prop_assert!(t >= prev_time, "time must be monotone");
            prev_level = v;
            prev_time = t;
        }
    }

    /// Rising and falling edge counts differ by at most one, and the
    /// period list is exactly one shorter than the edge list.
    #[test]
    fn edge_counts_are_consistent(ts in times()) {
        let mut sim = Simulator::new(5);
        let net = sim.add_net("n");
        sim.watch(net).expect("net exists");
        let mut level = Bit::Low;
        for &t in &ts {
            level = !level;
            sim.inject(net, level, t).expect("valid");
        }
        sim.run_until(Time::from_ps(2e6)).expect("no limit");
        let trace = sim.trace(net).expect("watched");
        let rising = trace.rising_edges().len();
        let falling = trace.falling_edges().len();
        prop_assert!(rising.abs_diff(falling) <= 1);
        if rising >= 1 {
            prop_assert_eq!(trace.periods(Edge::Rising).len(), rising - 1);
        }
    }

    /// `value_at` agrees with a naive scan of the transition list.
    #[test]
    fn value_at_matches_linear_scan(
        transitions in prop::collection::vec((0.0_f64..1e4, any::<bool>()), 0..100),
        query in 0.0_f64..1.2e4,
    ) {
        let mut trace = Trace::new(Bit::Low);
        let mut sorted = transitions;
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (t, v) in &sorted {
            trace.record(Time::from_ps(*t), Bit::from(*v));
        }
        let fast = trace.value_at(Time::from_ps(query));
        let mut slow = trace.initial();
        for &(t, v) in trace.transitions() {
            if t <= Time::from_ps(query) {
                slow = v;
            }
        }
        prop_assert_eq!(fast, slow);
    }

    /// VCD export/parse round-trips every recorded transition for any
    /// injection pattern.
    #[test]
    fn vcd_round_trip(ts in times()) {
        let mut sim = Simulator::new(11);
        let net = sim.add_net("sig");
        sim.watch(net).expect("net exists");
        let mut level = Bit::Low;
        for &t in &ts {
            level = !level;
            sim.inject(net, level, t).expect("valid");
        }
        sim.run_until(Time::from_ps(2e6)).expect("no limit");
        let mut out = Vec::new();
        sim.write_vcd(&mut out, "prop").expect("write to Vec");
        let doc = strent_sim::vcd::parse_vcd(&String::from_utf8(out).expect("ascii"))
            .expect("parses");
        let trace = sim.trace(net).expect("watched");
        prop_assert_eq!(doc.changes.len(), trace.len());
        for (change, &(t, v)) in doc.changes.iter().zip(trace.transitions()) {
            prop_assert_eq!(change.0, (t.as_ps() * 1e3).round() as u64);
            prop_assert_eq!(change.2, v);
        }
    }

    /// Two simulators with the same seed and workload produce identical
    /// event statistics (determinism).
    #[test]
    fn runs_are_deterministic(seed in any::<u64>(), ts in times()) {
        fn run(seed: u64, ts: &[f64]) -> (u64, u64) {
            let mut sim = Simulator::new(seed);
            let net = sim.add_net("n");
            let mut level = Bit::Low;
            for &t in ts {
                level = !level;
                sim.inject(net, level, t).expect("valid");
            }
            sim.run_until(Time::from_ps(2e6)).expect("no limit");
            (sim.stats().events_processed, sim.stats().drives_suppressed)
        }
        prop_assert_eq!(run(seed, &ts), run(seed, &ts));
    }
}
