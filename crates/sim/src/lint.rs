//! Typed static-verification diagnostics (the netlist half of
//! `simlint`).
//!
//! Every diagnostic carries a stable `SL0xx` code so experiment logs,
//! CI filters and the allowlist can refer to a check without parsing
//! prose. Codes are never reused; `docs/static_analysis.md` is the
//! catalog. The checks themselves live in two places:
//!
//! * [`Simulator::lint_netlist`](crate::Simulator::lint_netlist) —
//!   structural checks any netlist can fail (orphan nets, unreachable
//!   components, fan-out spills);
//! * `strent_rings::lint` — ring-aware checks (token conservation,
//!   Eq. 1 burst-mode prediction, ring connectivity, divider
//!   reachability) that need the ring builders' vocabulary.
//!
//! The source-hygiene half (`SL1xx`, determinism and `unsafe` audits)
//! is the standalone `simlint` crate.

use std::fmt;

/// How serious a diagnostic is.
///
/// Warnings flag constructions that simulate correctly but deviate
/// from the paper's assumptions (e.g. a ring predicted to run in burst
/// mode); errors flag netlists whose results would be meaningless
/// (broken connectivity, conservation violations). Deny-mode policies
/// treat both as fatal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but simulatable.
    Warning,
    /// The netlist cannot produce a trustworthy result.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable codes for the netlist/config verification pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LintCode {
    /// `SL001`: a net with no listeners that is not watched — events
    /// driven onto it disappear without effect.
    OrphanNet,
    /// `SL002`: a component that subscribes to no net and has no armed
    /// bootstrap timer — it can never be dispatched.
    UnreachableComponent,
    /// `SL003`: a net whose fan-out exceeds the inline listener
    /// capacity, so dispatch leaves the zero-allocation fast path.
    SpilledFanout,
    /// `SL010`: a ring configuration violating the oscillation
    /// conditions (Sec. II-C.2: `L >= 3`, `NT` positive and even,
    /// `NB >= 1`).
    InvalidRingConfig,
    /// `SL011`: token/bubble accounting broken — the state's token
    /// count disagrees with the configuration, conservation fails
    /// under the propagation closure, or the ring deadlocks.
    TokenConservation,
    /// `SL012`: Eq. 1 predicts burst-mode propagation (weak Charlie
    /// effect relative to drafting, with a clustered layout or a
    /// token/bubble ratio far from `Dff/Drr`).
    BurstModePredicted,
    /// `SL013`: the built ring's listener graph is not the closed ring
    /// the builder guarantees (a stage misses a neighbour
    /// subscription).
    RingConnectivity,
    /// `SL014`: a measurement divider whose input is not a ring net or
    /// whose output is not watched — Eq. 6 would measure nothing.
    DividerUnreachable,
    /// `SL015`: a ring stage output whose fan-out spilled inline
    /// storage, so the uncancellable fast path loses its
    /// zero-allocation property.
    FastPathIneligible,
}

impl LintCode {
    /// The stable `SL0xx` code string.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            LintCode::OrphanNet => "SL001",
            LintCode::UnreachableComponent => "SL002",
            LintCode::SpilledFanout => "SL003",
            LintCode::InvalidRingConfig => "SL010",
            LintCode::TokenConservation => "SL011",
            LintCode::BurstModePredicted => "SL012",
            LintCode::RingConnectivity => "SL013",
            LintCode::DividerUnreachable => "SL014",
            LintCode::FastPathIneligible => "SL015",
        }
    }

    /// The severity this code carries by default.
    #[must_use]
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::OrphanNet
            | LintCode::UnreachableComponent
            | LintCode::SpilledFanout
            | LintCode::BurstModePredicted
            | LintCode::FastPathIneligible => Severity::Warning,
            LintCode::InvalidRingConfig
            | LintCode::TokenConservation
            | LintCode::RingConnectivity
            | LintCode::DividerUnreachable => Severity::Error,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding of the static verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: LintCode,
    /// The severity (the code's default unless a caller escalates).
    pub severity: Severity,
    /// What the finding is about (a net, component or config, named).
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic with the code's default severity.
    pub fn new(code: LintCode, subject: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            subject: subject.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} [{}]: {}",
            self.code, self.severity, self.subject, self.message
        )
    }
}

/// The collected findings of one verification pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        LintReport::default()
    }

    /// Adds one finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Absorbs all findings of another report.
    pub fn extend(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// The findings, in discovery order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Whether no findings were recorded.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any finding has [`Severity::Error`].
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of findings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Whether the report is empty (alias of [`LintReport::is_clean`]
    /// for collection-like use).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether a finding with the given code is present.
    #[must_use]
    pub fn has_code(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

impl FromIterator<Diagnostic> for LintReport {
    fn from_iter<I: IntoIterator<Item = Diagnostic>>(iter: I) -> Self {
        LintReport {
            diagnostics: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for LintReport {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.diagnostics.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            LintCode::OrphanNet,
            LintCode::UnreachableComponent,
            LintCode::SpilledFanout,
            LintCode::InvalidRingConfig,
            LintCode::TokenConservation,
            LintCode::BurstModePredicted,
            LintCode::RingConnectivity,
            LintCode::DividerUnreachable,
            LintCode::FastPathIneligible,
        ];
        let mut seen: Vec<&str> = all.iter().map(|c| c.code()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), all.len(), "duplicate SL code");
        for code in all {
            assert!(code.code().starts_with("SL0"), "{code} range");
        }
    }

    #[test]
    fn report_accumulates_and_classifies() {
        let mut report = LintReport::new();
        assert!(report.is_clean());
        assert!(!report.has_errors());
        report.push(Diagnostic::new(LintCode::OrphanNet, "net 3", "dangling"));
        assert!(!report.is_clean());
        assert!(!report.has_errors(), "orphan net is a warning");
        let mut other = LintReport::new();
        other.push(Diagnostic::new(
            LintCode::RingConnectivity,
            "stage 2",
            "missing reverse subscription",
        ));
        report.extend(other);
        assert_eq!(report.len(), 2);
        assert!(report.has_errors());
        assert!(report.has_code(LintCode::OrphanNet));
        assert!(!report.has_code(LintCode::DividerUnreachable));
        let text = report.to_string();
        assert!(text.contains("SL001 warning [net 3]"));
        assert!(text.contains("SL013 error [stage 2]"));
    }
}
