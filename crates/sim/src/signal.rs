//! Binary signal values, edges and net identifiers.

use std::fmt;
use std::ops::Not;

use serde::{Deserialize, Serialize};

/// A binary logic level.
///
/// The simulator models ideal digital nets: no `X`/`Z` states. Oscillator
/// studies only need resolved binary waveforms; metastability is modelled
/// statistically at the sampler level (in the TRNG crate), not as a third
/// logic state.
///
/// # Examples
///
/// ```
/// use strent_sim::Bit;
///
/// assert_eq!(!Bit::Low, Bit::High);
/// assert_eq!(Bit::from(true), Bit::High);
/// assert_eq!(u8::from(Bit::High), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub enum Bit {
    /// Logic 0.
    #[default]
    Low,
    /// Logic 1.
    High,
}

impl Bit {
    /// Returns `true` if the level is [`Bit::High`].
    #[must_use]
    pub fn is_high(self) -> bool {
        self == Bit::High
    }

    /// Returns `true` if the level is [`Bit::Low`].
    #[must_use]
    pub fn is_low(self) -> bool {
        self == Bit::Low
    }

    /// The edge that a transition *to* this level represents.
    #[must_use]
    pub fn arriving_edge(self) -> Edge {
        match self {
            Bit::Low => Edge::Falling,
            Bit::High => Edge::Rising,
        }
    }
}

impl Not for Bit {
    type Output = Bit;

    fn not(self) -> Bit {
        match self {
            Bit::Low => Bit::High,
            Bit::High => Bit::Low,
        }
    }
}

impl From<bool> for Bit {
    fn from(b: bool) -> Self {
        if b {
            Bit::High
        } else {
            Bit::Low
        }
    }
}

impl From<Bit> for bool {
    fn from(bit: Bit) -> bool {
        bit.is_high()
    }
}

impl From<Bit> for u8 {
    fn from(bit: Bit) -> u8 {
        match bit {
            Bit::Low => 0,
            Bit::High => 1,
        }
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Bit::Low => "0",
            Bit::High => "1",
        })
    }
}

/// A transition direction on a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Edge {
    /// Low-to-high transition.
    Rising,
    /// High-to-low transition.
    Falling,
}

impl Edge {
    /// The level a net holds immediately after this edge.
    #[must_use]
    pub fn target_level(self) -> Bit {
        match self {
            Edge::Rising => Bit::High,
            Edge::Falling => Bit::Low,
        }
    }

    /// The opposite edge.
    #[must_use]
    pub fn opposite(self) -> Edge {
        match self {
            Edge::Rising => Edge::Falling,
            Edge::Falling => Edge::Rising,
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Edge::Rising => "rising",
            Edge::Falling => "falling",
        })
    }
}

/// Identifier of a net (a named wire) inside a [`Simulator`].
///
/// `NetId`s are handed out by [`Simulator::add_net`] and are only
/// meaningful within the simulator that created them.
///
/// [`Simulator`]: crate::Simulator
/// [`Simulator::add_net`]: crate::Simulator::add_net
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Returns the raw index of this net.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_not_is_involutive() {
        assert_eq!(!!Bit::Low, Bit::Low);
        assert_eq!(!!Bit::High, Bit::High);
    }

    #[test]
    fn bit_conversions() {
        assert_eq!(Bit::from(true), Bit::High);
        assert_eq!(Bit::from(false), Bit::Low);
        assert!(bool::from(Bit::High));
        assert_eq!(u8::from(Bit::Low), 0);
        assert_eq!(u8::from(Bit::High), 1);
    }

    #[test]
    fn edges_round_trip() {
        assert_eq!(Edge::Rising.target_level(), Bit::High);
        assert_eq!(Edge::Falling.target_level(), Bit::Low);
        assert_eq!(Bit::High.arriving_edge(), Edge::Rising);
        assert_eq!(Edge::Rising.opposite(), Edge::Falling);
        assert_eq!(Edge::Falling.opposite().opposite(), Edge::Falling);
    }

    #[test]
    fn default_bit_is_low() {
        assert_eq!(Bit::default(), Bit::Low);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Bit::High.to_string(), "1");
        assert_eq!(Edge::Falling.to_string(), "falling");
        assert_eq!(NetId(7).to_string(), "net#7");
    }
}
