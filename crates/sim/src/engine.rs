//! The simulation kernel: nets, components, scheduling and dispatch.
//!
//! The dispatch hot path is allocation-free in steady state: the
//! pending-event set is a timing wheel whose buckets retain capacity
//! ([`WheelQueue`]), event liveness lives in a generation-stamped slab
//! ([`CancelSlab`](crate::slab)), net fan-out is stored inline for the
//! common small case, and trace recording is a dense indexed lookup.
//! `docs/engine_perf.md` documents the design and the measured effect.

use std::any::Any;

use crate::error::SimError;
use crate::event::{Event, EventId, Occurrence, TimerTag};
use crate::fault::{self, DriftState, FaultAction, FaultKind, FaultPlan, FaultRuntime, FaultTarget, ForceState};
use crate::lint::{Diagnostic, LintCode, LintReport};
use crate::queue::{EventQueue, ScheduledEvent, WheelQueue};
use crate::rng::{RngTree, SimRng};
use crate::signal::{Bit, NetId};
use crate::slab::{CancelSlab, NO_SLOT};
use crate::trace::{Trace, TraceSet};
use crate::Time;

/// Identifier of a component registered in a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(usize);

impl ComponentId {
    /// Returns the raw index of this component.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A reactive simulation element.
///
/// Components receive [`Event`]s (net changes on nets they listen to, and
/// their own elapsed timers) and react by scheduling future occurrences
/// through the [`Context`].
///
/// The `Any` supertrait allows typed access to a component after the run
/// via [`Simulator::component`] / [`Simulator::component_mut`]. The
/// `Send` supertrait lets a whole built simulator move across threads
/// (the serving layer hands long-running rings to worker threads);
/// components are plain state machines, so the bound costs nothing.
pub trait Component: Any + Send {
    /// Handles one event. Called by the simulator during dispatch.
    fn on_event(&mut self, event: &Event, ctx: &mut Context<'_>);
}

/// Fan-out listeners stored inline while small.
///
/// Nearly every net in a ring has one to three listeners (the next
/// stage, the previous stage, the stage's own feedback), so the list
/// lives in the [`NetState`] itself; only wider fan-outs spill to a
/// heap vector. Dispatch then copies at most
/// [`Listeners::INLINE`] words to the stack instead of cloning a
/// `Vec` per drive — the clone used to be the only per-event heap
/// allocation in the kernel.
#[derive(Debug)]
enum Listeners {
    /// Up to [`Listeners::INLINE`] component indices, in line.
    Inline {
        len: u8,
        buf: [u32; Listeners::INLINE],
    },
    /// The rare wide fan-out.
    Spilled(Vec<u32>),
}

/// A borrowless snapshot of a net's fan-out, taken for the duration of
/// one dispatch (components cannot mutate listener lists mid-dispatch —
/// [`Context`] has no subscription API — so the snapshot is exact).
enum Fanout {
    Inline {
        len: u8,
        buf: [u32; Listeners::INLINE],
    },
    /// The spilled vector, moved out and restored after dispatch.
    Taken(Vec<u32>),
}

/// Number of listeners a net stores inline before spilling to the
/// heap. Published so static verifiers ([`Simulator::lint_netlist`],
/// `strent_rings::lint`) can flag fan-outs that leave the
/// zero-allocation dispatch fast path.
pub const INLINE_FANOUT: usize = 4;

impl Listeners {
    const INLINE: usize = INLINE_FANOUT;

    const fn new() -> Self {
        Listeners::Inline {
            len: 0,
            buf: [0; Listeners::INLINE],
        }
    }

    fn as_slice(&self) -> &[u32] {
        match self {
            Listeners::Inline { len, buf } => &buf[..usize::from(*len)],
            Listeners::Spilled(vec) => vec,
        }
    }

    fn contains(&self, component: u32) -> bool {
        self.as_slice().contains(&component)
    }

    fn push(&mut self, component: u32) {
        match self {
            Listeners::Inline { len, buf } => {
                let n = usize::from(*len);
                if n < Listeners::INLINE {
                    buf[n] = component;
                    *len += 1;
                } else {
                    let mut vec = Vec::with_capacity(Listeners::INLINE * 2);
                    vec.extend_from_slice(buf);
                    vec.push(component);
                    *self = Listeners::Spilled(vec);
                }
            }
            Listeners::Spilled(vec) => vec.push(component),
        }
    }

    /// Takes a dispatchable snapshot: a stack copy of the inline array,
    /// or the moved-out spill vector (restored via [`Listeners::restore`]).
    #[inline]
    fn snapshot(&mut self) -> Fanout {
        match self {
            Listeners::Inline { len, buf } => Fanout::Inline {
                len: *len,
                buf: *buf,
            },
            Listeners::Spilled(vec) => Fanout::Taken(std::mem::take(vec)),
        }
    }

    /// Puts a spilled vector back after dispatch.
    #[inline]
    fn restore(&mut self, vec: Vec<u32>) {
        debug_assert!(
            matches!(self, Listeners::Spilled(v) if v.is_empty()),
            "fan-out cannot change during dispatch"
        );
        *self = Listeners::Spilled(vec);
    }
}

/// Per-net bookkeeping.
#[derive(Debug)]
struct NetState {
    name: String,
    value: Bit,
    listeners: Listeners,
}

/// Schedules one occurrence: allocates its liveness slot, stamps the
/// tie-break sequence number and enqueues it.
///
/// This is the single push path shared by [`Simulator`] (`inject`,
/// `arm_timer`) and [`Context`] (`schedule_net`, `schedule_timer`), so
/// sequence numbering and slab accounting cannot drift apart.
#[inline]
fn push_event<Q: EventQueue + ?Sized>(
    queue: &mut Q,
    next_seq: &mut u64,
    slab: &mut CancelSlab,
    time: Time,
    occurrence: Occurrence,
) -> EventId {
    let seq = *next_seq;
    *next_seq += 1;
    let (slot, generation) = slab.alloc();
    queue.push(ScheduledEvent {
        time,
        seq,
        slot,
        occurrence,
    });
    EventId::pack(slot, generation)
}

/// Schedules one fire-and-forget occurrence: same sequence numbering as
/// [`push_event`], but no cancellation slot — the event cannot be
/// cancelled and the dispatch path skips the liveness check. This is
/// the ring-oscillator hot path (stages never cancel their own
/// firings).
#[inline]
fn push_event_uncancellable<Q: EventQueue + ?Sized>(
    queue: &mut Q,
    next_seq: &mut u64,
    time: Time,
    occurrence: Occurrence,
) {
    let seq = *next_seq;
    *next_seq += 1;
    queue.push(ScheduledEvent {
        time,
        seq,
        slot: NO_SLOT,
        occurrence,
    });
}

/// The component's view of the simulator during event dispatch.
///
/// Provides the current time, net reads, scheduling, cancellation and the
/// component's private random stream.
pub struct Context<'a> {
    now: Time,
    component: usize,
    nets: &'a [NetState],
    queue: &'a mut dyn EventQueue,
    next_seq: &'a mut u64,
    slab: &'a mut CancelSlab,
    rngs: &'a mut [SimRng],
    /// Armed delay-drift (aging) records; empty unless a fault plan
    /// with drift specs is armed, so the hot path pays one emptiness
    /// check.
    drift: &'a [DriftState],
}

impl<'a> Context<'a> {
    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The id of the component being dispatched.
    #[must_use]
    pub fn component_id(&self) -> ComponentId {
        ComponentId(self.component)
    }

    /// Reads the current level of a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to this simulator.
    #[must_use]
    pub fn net(&self, net: NetId) -> Bit {
        self.nets[net.index()].value
    }

    /// Schedules `net` to be driven to `value` after `delay_ps`.
    ///
    /// # Panics
    ///
    /// Panics if the delay is negative or non-finite, or the net is
    /// unknown. These are component logic errors, not runtime conditions.
    #[inline]
    pub fn schedule_net(&mut self, net: NetId, value: Bit, delay_ps: f64) -> EventId {
        assert!(
            delay_ps.is_finite() && delay_ps >= 0.0,
            "delay must be finite and non-negative, got {delay_ps}"
        );
        assert!(net.index() < self.nets.len(), "unknown {net}");
        let delay_ps = self.aged_delay(delay_ps);
        push_event(
            self.queue,
            self.next_seq,
            self.slab,
            self.now + delay_ps,
            Occurrence::DriveNet { net, value },
        )
    }

    /// Schedules `net` to be driven to `value` after `delay_ps`,
    /// without a cancellation handle.
    ///
    /// Semantically identical to [`schedule_net`] for an event that is
    /// never cancelled — same `(time, sequence)` ordering, same
    /// statistics — but skips the cancellation-slab bookkeeping on both
    /// the schedule and dispatch paths. Ring stages fire tens of
    /// millions of these and never cancel one.
    ///
    /// # Panics
    ///
    /// Panics if the delay is negative or non-finite, or the net is
    /// unknown.
    ///
    /// [`schedule_net`]: Context::schedule_net
    #[inline]
    pub fn schedule_net_uncancellable(&mut self, net: NetId, value: Bit, delay_ps: f64) {
        assert!(
            delay_ps.is_finite() && delay_ps >= 0.0,
            "delay must be finite and non-negative, got {delay_ps}"
        );
        assert!(net.index() < self.nets.len(), "unknown {net}");
        let delay_ps = self.aged_delay(delay_ps);
        push_event_uncancellable(
            self.queue,
            self.next_seq,
            self.now + delay_ps,
            Occurrence::DriveNet { net, value },
        );
    }

    /// Arms a timer that will deliver [`Event::Timer`] with `tag` back to
    /// this component after `delay_ps`.
    ///
    /// # Panics
    ///
    /// Panics if the delay is negative or non-finite.
    #[inline]
    pub fn schedule_timer(&mut self, delay_ps: f64, tag: TimerTag) -> EventId {
        assert!(
            delay_ps.is_finite() && delay_ps >= 0.0,
            "delay must be finite and non-negative, got {delay_ps}"
        );
        push_event(
            self.queue,
            self.next_seq,
            self.slab,
            self.now + delay_ps,
            Occurrence::FireTimer {
                component: self.component,
                tag,
            },
        )
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already fired is a no-op, as is cancelling twice.
    pub fn cancel(&mut self, id: EventId) {
        self.slab.cancel(id.slot(), id.generation());
    }

    /// This component's private deterministic random stream.
    #[inline]
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rngs[self.component]
    }

    /// Applies any armed delay-drift (aging) records for this component
    /// to a propagation delay. With no fault plan armed the table is
    /// empty and the delay passes through untouched — same bits, one
    /// branch.
    #[inline]
    fn aged_delay(&self, delay_ps: f64) -> f64 {
        if self.drift.is_empty() {
            return delay_ps;
        }
        delay_ps * fault::drift_scale(self.drift, self.component, self.now.as_ps())
    }
}

/// Aggregate statistics of a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events dispatched (including suppressed no-change net drives).
    pub events_processed: u64,
    /// Events skipped because they had been cancelled.
    pub events_cancelled: u64,
    /// Net drives suppressed because the net already held the value.
    pub drives_suppressed: u64,
}

impl SimStats {
    /// Accumulates another run's counters into this one (used by sweep
    /// harnesses aggregating per-shard totals).
    pub fn absorb(&mut self, other: SimStats) {
        self.events_processed += other.events_processed;
        self.events_cancelled += other.events_cancelled;
        self.drives_suppressed += other.drives_suppressed;
    }
}

/// The discrete-event simulator.
///
/// Owns the nets, components, pending-event set, waveform traces and the
/// random-number tree. Generic over the [`EventQueue`] implementation
/// (timing wheel by default).
///
/// See the [crate-level documentation](crate) for a complete example.
pub struct Simulator<Q: EventQueue = WheelQueue> {
    queue: Q,
    now: Time,
    next_seq: u64,
    nets: Vec<NetState>,
    components: Vec<Option<Box<dyn Component>>>,
    /// Whether a bootstrap timer was ever armed for each component —
    /// consulted by [`Simulator::lint_netlist`] to tell apart
    /// components reachable through a timer from truly orphaned ones.
    timer_armed: Vec<bool>,
    rngs: Vec<SimRng>,
    traces: TraceSet,
    slab: CancelSlab,
    rng_tree: RngTree,
    stats: SimStats,
    step_limit: u64,
    /// Armed fault plan, if any. `None` (the default) keeps the hot
    /// path fault-free: `drive_net` pays one branch, `Context` carries
    /// an empty drift table.
    faults: Option<Box<FaultRuntime>>,
}

impl Simulator<WheelQueue> {
    /// Creates a simulator with the default timing-wheel event queue.
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        Simulator::with_queue(master_seed, WheelQueue::new())
    }
}

impl<Q: EventQueue> Simulator<Q> {
    /// Creates a simulator with an explicit event-queue implementation.
    #[must_use]
    pub fn with_queue(master_seed: u64, queue: Q) -> Self {
        Simulator {
            queue,
            now: Time::ZERO,
            next_seq: 0,
            nets: Vec::new(),
            components: Vec::new(),
            timer_armed: Vec::new(),
            rngs: Vec::new(),
            traces: TraceSet::new(),
            slab: CancelSlab::default(),
            rng_tree: RngTree::new(master_seed),
            stats: SimStats::default(),
            step_limit: u64::MAX,
            faults: None,
        }
    }

    /// Adds a named net, initialized to [`Bit::Low`].
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        self.add_net_with(name, Bit::Low)
    }

    /// Adds a named net with an explicit initial level.
    pub fn add_net_with(&mut self, name: impl Into<String>, initial: Bit) -> NetId {
        let id = NetId(u32::try_from(self.nets.len()).expect("too many nets"));
        self.nets.push(NetState {
            name: name.into(),
            value: initial,
            listeners: Listeners::new(),
        });
        id
    }

    /// Registers a component and derives its private random stream.
    pub fn add_component(&mut self, component: impl Component) -> ComponentId {
        let id = self.components.len();
        let _ = u32::try_from(id).expect("too many components");
        self.components.push(Some(Box::new(component)));
        self.timer_armed.push(false);
        self.rngs.push(self.rng_tree.stream(id as u64));
        ComponentId(id)
    }

    /// Subscribes `component` to changes of `net`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNet`] or [`SimError::UnknownComponent`]
    /// if either id does not belong to this simulator.
    pub fn listen(&mut self, net: NetId, component: ComponentId) -> Result<(), SimError> {
        if component.0 >= self.components.len() {
            return Err(SimError::UnknownComponent(component.0));
        }
        let state = self
            .nets
            .get_mut(net.index())
            .ok_or(SimError::UnknownNet(net))?;
        let index = u32::try_from(component.0).expect("component ids fit u32");
        if !state.listeners.contains(index) {
            state.listeners.push(index);
        }
        Ok(())
    }

    /// Starts recording the waveform of `net`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNet`] if the net is unknown.
    pub fn watch(&mut self, net: NetId) -> Result<(), SimError> {
        let state = self
            .nets
            .get(net.index())
            .ok_or(SimError::UnknownNet(net))?;
        self.traces.watch(net, state.value);
        Ok(())
    }

    /// Starts recording `net` with trace storage preallocated for
    /// `transitions` transitions — measurement loops that know their
    /// horizon use this to keep recording reallocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNet`] if the net is unknown.
    pub fn watch_with_capacity(
        &mut self,
        net: NetId,
        transitions: usize,
    ) -> Result<(), SimError> {
        self.watch(net)?;
        self.traces.reserve(net, transitions);
        Ok(())
    }

    /// Schedules an externally driven transition on `net`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNet`] for an unknown net or
    /// [`SimError::InvalidDelay`] for a negative/non-finite delay.
    pub fn inject(&mut self, net: NetId, value: Bit, delay_ps: f64) -> Result<EventId, SimError> {
        if net.index() >= self.nets.len() {
            return Err(SimError::UnknownNet(net));
        }
        if !delay_ps.is_finite() || delay_ps < 0.0 {
            return Err(SimError::InvalidDelay(delay_ps));
        }
        Ok(push_event(
            &mut self.queue,
            &mut self.next_seq,
            &mut self.slab,
            self.now + delay_ps,
            Occurrence::DriveNet { net, value },
        ))
    }

    /// Arms a timer on behalf of `component` (typically to bootstrap it).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownComponent`] or [`SimError::InvalidDelay`].
    pub fn arm_timer(
        &mut self,
        component: ComponentId,
        delay_ps: f64,
        tag: TimerTag,
    ) -> Result<EventId, SimError> {
        if component.0 >= self.components.len() {
            return Err(SimError::UnknownComponent(component.0));
        }
        if !delay_ps.is_finite() || delay_ps < 0.0 {
            return Err(SimError::InvalidDelay(delay_ps));
        }
        self.timer_armed[component.0] = true;
        Ok(push_event(
            &mut self.queue,
            &mut self.next_seq,
            &mut self.slab,
            self.now + delay_ps,
            Occurrence::FireTimer {
                component: component.0,
                tag,
            },
        ))
    }

    /// Cancels a scheduled event. Cancelling an event that already
    /// fired is a no-op, as is cancelling twice.
    pub fn cancel(&mut self, id: EventId) {
        self.slab.cancel(id.slot(), id.generation());
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Run statistics so far.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Limits the total number of dispatched events; [`run_until`] fails
    /// with [`SimError::StepLimitExceeded`] once the limit is reached.
    /// The default is effectively unlimited.
    ///
    /// [`run_until`]: Simulator::run_until
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// Current level of a net.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNet`] if the net is unknown.
    pub fn net_value(&self, net: NetId) -> Result<Bit, SimError> {
        self.nets
            .get(net.index())
            .map(|s| s.value)
            .ok_or(SimError::UnknownNet(net))
    }

    /// Name of a net.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNet`] if the net is unknown.
    pub fn net_name(&self, net: NetId) -> Result<&str, SimError> {
        self.nets
            .get(net.index())
            .map(|s| s.name.as_str())
            .ok_or(SimError::UnknownNet(net))
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// The components subscribed to `net`, in subscription order.
    ///
    /// A verification-time accessor (it allocates); dispatch never
    /// uses it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNet`] if the net is unknown.
    pub fn listeners(&self, net: NetId) -> Result<Vec<ComponentId>, SimError> {
        let state = self
            .nets
            .get(net.index())
            .ok_or(SimError::UnknownNet(net))?;
        Ok(state
            .listeners
            .as_slice()
            .iter()
            .map(|&c| ComponentId(c as usize))
            .collect())
    }

    /// Runs the structural netlist checks and returns the findings.
    ///
    /// Intended to run **after wiring and before the first event**:
    ///
    /// * `SL001` — a net nobody listens to and nobody watches;
    /// * `SL002` — a component with no subscriptions and no armed
    ///   bootstrap timer (it can never be dispatched);
    /// * `SL003` — a net whose fan-out spilled the inline listener
    ///   storage (dispatch leaves the zero-allocation fast path).
    ///
    /// The pass only reads bookkeeping that wiring already built, so
    /// it consumes no randomness and cannot perturb a simulation run.
    #[must_use]
    pub fn lint_netlist(&self) -> LintReport {
        let mut report = LintReport::new();
        let mut subscribed = vec![false; self.components.len()];
        for (i, state) in self.nets.iter().enumerate() {
            let fan_out = state.listeners.as_slice();
            for &listener in fan_out {
                if let Some(flag) = subscribed.get_mut(listener as usize) {
                    *flag = true;
                }
            }
            let net = NetId(u32::try_from(i).expect("net ids fit u32"));
            if fan_out.is_empty() && !self.traces.is_watched(net) {
                report.push(Diagnostic::new(
                    LintCode::OrphanNet,
                    format!("net {i} ({})", state.name),
                    "no listeners and not watched: drives on this net have no effect",
                ));
            }
            if fan_out.len() > INLINE_FANOUT {
                report.push(Diagnostic::new(
                    LintCode::SpilledFanout,
                    format!("net {i} ({})", state.name),
                    format!(
                        "fan-out {} exceeds the inline capacity {INLINE_FANOUT}: \
                         dispatch takes the spilled (allocating) path",
                        fan_out.len()
                    ),
                ));
            }
        }
        for (i, component) in self.components.iter().enumerate() {
            if component.is_some() && !subscribed[i] && !self.timer_armed[i] {
                report.push(Diagnostic::new(
                    LintCode::UnreachableComponent,
                    format!("component {i}"),
                    "no net subscriptions and no armed timer: it can never be dispatched",
                ));
            }
        }
        report
    }

    /// All recorded traces.
    #[must_use]
    pub fn traces(&self) -> &TraceSet {
        &self.traces
    }

    /// Mutable access to the recorded traces (e.g. for warm-up removal).
    pub fn traces_mut(&mut self) -> &mut TraceSet {
        &mut self.traces
    }

    /// The trace of one watched net.
    #[must_use]
    pub fn trace(&self, net: NetId) -> Option<&Trace> {
        self.traces.get(net)
    }

    /// Typed shared access to a registered component.
    ///
    /// Returns `None` if the id is unknown or the component is not a `T`.
    #[must_use]
    pub fn component<T: Component>(&self, id: ComponentId) -> Option<&T> {
        let boxed = self.components.get(id.0)?.as_ref()?;
        (boxed.as_ref() as &dyn Any).downcast_ref::<T>()
    }

    /// Typed exclusive access to a registered component.
    ///
    /// Returns `None` if the id is unknown or the component is not a `T`.
    pub fn component_mut<T: Component>(&mut self, id: ComponentId) -> Option<&mut T> {
        let boxed = self.components.get_mut(id.0)?.as_mut()?;
        (boxed.as_mut() as &mut dyn Any).downcast_mut::<T>()
    }

    /// Handles one popped event: retires its liveness slot, then either
    /// skips it (cancelled) or advances time and dispatches it.
    ///
    /// Returns `Ok(true)` if the event was dispatched, `Ok(false)` if it
    /// had been cancelled.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StepLimitExceeded`] if the step limit was
    /// reached.
    #[inline]
    fn process(&mut self, event: ScheduledEvent) -> Result<bool, SimError> {
        if event.slot != NO_SLOT && self.slab.finish(event.slot) {
            self.stats.events_cancelled += 1;
            return Ok(false);
        }
        if self.stats.events_processed >= self.step_limit {
            return Err(SimError::StepLimitExceeded {
                limit: self.step_limit,
            });
        }
        debug_assert!(event.time >= self.now, "time went backwards");
        self.now = event.time;
        self.stats.events_processed += 1;
        match event.occurrence {
            Occurrence::DriveNet { net, value } => self.drive_net(net, value),
            Occurrence::FireTimer { component, tag } => {
                self.dispatch(component, Event::Timer { tag });
            }
            Occurrence::FaultEdge { action } => self.apply_fault_edge(action),
        }
        Ok(true)
    }

    /// Dispatches the next pending event.
    ///
    /// Returns `Ok(false)` when the queue is empty.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StepLimitExceeded`] if the step limit was
    /// reached.
    #[inline]
    pub fn step(&mut self) -> Result<bool, SimError> {
        while let Some(event) = self.queue.pop() {
            if self.process(event)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Runs until the pending-event set is empty or the next event lies
    /// beyond `horizon`; simulation time is left at `min(horizon, last
    /// event time)`.
    ///
    /// The loop issues one bounded pop per event
    /// ([`EventQueue::pop_at_or_before`]) instead of a `peek_time` +
    /// `pop` pair, so queue implementations locate the minimum once.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StepLimitExceeded`] if the step limit was
    /// reached first.
    pub fn run_until(&mut self, horizon: Time) -> Result<(), SimError> {
        while let Some(event) = self.queue.pop_at_or_before(horizon) {
            self.process(event)?;
        }
        if self.now < horizon {
            self.now = horizon;
        }
        Ok(())
    }

    /// Dispatches at most `n` events.
    ///
    /// Returns the number actually dispatched (less than `n` only if the
    /// queue drained).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StepLimitExceeded`] if the step limit was
    /// reached first.
    pub fn run_events(&mut self, n: u64) -> Result<u64, SimError> {
        let mut done = 0;
        while done < n && self.step()? {
            done += 1;
        }
        Ok(done)
    }

    /// Applies a net transition and notifies the fan-out, honoring any
    /// active stuck-at/glitch clamp on the net (the clamp overrides the
    /// incoming level and remembers it for the release edge).
    #[inline]
    fn drive_net(&mut self, net: NetId, value: Bit) {
        let value = match &mut self.faults {
            None => value,
            Some(rt) => rt.filter(net.0, value),
        };
        self.drive_net_raw(net, value);
    }

    /// The unfiltered drive path: applies the transition regardless of
    /// clamps. Fault edges use this to force and release levels.
    #[inline]
    fn drive_net_raw(&mut self, net: NetId, value: Bit) {
        let state = &mut self.nets[net.index()];
        if state.value == value {
            self.stats.drives_suppressed += 1;
            return;
        }
        state.value = value;
        // Snapshot the fan-out without cloning: inline lists copy to
        // the stack, spilled lists are moved out and restored below.
        // (Listener lists cannot change during dispatch — Context has
        // no subscription API — so the snapshot stays exact.)
        let fanout = state.listeners.snapshot();
        self.traces.record(net, self.now, value);
        let event = Event::NetChanged { net, value };
        // One Context serves the whole fan-out; only the component index
        // changes between listeners.
        let mut ctx = Context {
            now: self.now,
            component: 0,
            nets: &self.nets,
            queue: &mut self.queue,
            next_seq: &mut self.next_seq,
            slab: &mut self.slab,
            rngs: &mut self.rngs,
            drift: self.faults.as_deref().map_or(&[], FaultRuntime::drift_table),
        };
        // Components live in a separate field from everything Context
        // borrows, so each listener gets a direct `&mut` — no box
        // take/restore on the hot path.
        match fanout {
            Fanout::Inline { len, buf } => {
                for &listener in &buf[..usize::from(len)] {
                    let component = listener as usize;
                    let Some(Some(boxed)) = self.components.get_mut(component) else {
                        continue;
                    };
                    ctx.component = component;
                    boxed.on_event(&event, &mut ctx);
                }
            }
            Fanout::Taken(vec) => {
                for &listener in &vec {
                    let component = listener as usize;
                    let Some(Some(boxed)) = self.components.get_mut(component) else {
                        continue;
                    };
                    ctx.component = component;
                    boxed.on_event(&event, &mut ctx);
                }
                self.nets[net.index()].listeners.restore(vec);
            }
        }
    }

    #[inline]
    fn dispatch(&mut self, component: usize, event: Event) {
        let Some(Some(boxed)) = self.components.get_mut(component) else {
            return;
        };
        let mut ctx = Context {
            now: self.now,
            component,
            nets: &self.nets,
            queue: &mut self.queue,
            next_seq: &mut self.next_seq,
            slab: &mut self.slab,
            rngs: &mut self.rngs,
            drift: self.faults.as_deref().map_or(&[], FaultRuntime::drift_table),
        };
        boxed.on_event(&event, &mut ctx);
    }

    /// Executes one armed fault action: opens or closes a forcing
    /// window and drives the corresponding level through the raw
    /// (unfiltered) path.
    fn apply_fault_edge(&mut self, action: usize) {
        let Some(rt) = self.faults.as_mut() else {
            debug_assert!(false, "fault edge fired with no runtime armed");
            return;
        };
        let (net, value) = match rt.actions[action] {
            FaultAction::ForceStart(i) => {
                let force = &mut rt.forces[i];
                force.prev = self.nets[force.net as usize].value;
                force.active = true;
                force.blocked = None;
                (NetId(force.net), force.value)
            }
            FaultAction::ForceEnd(i) => {
                let force = &mut rt.forces[i];
                force.active = false;
                // Wake the fan-out back up: resume the last level the
                // ring tried to drive into the clamp, or restore the
                // pre-window level if nothing fired into it.
                let wake = force.blocked.take().unwrap_or(force.prev);
                (NetId(force.net), wake)
            }
        };
        self.drive_net_raw(net, value);
    }

    /// Arms a fault plan: resolves net names and stage indices, stores
    /// the forcing windows / drift records and queues their edge
    /// events. May be called repeatedly; plans accumulate.
    ///
    /// `stages` maps [`FaultTarget::Stage`] positions to component ids
    /// (pass a ring handle's component list, or `&[]` if the plan only
    /// targets nets).
    ///
    /// Supply-droop specs are device-layer faults; strip them with
    /// [`FaultPlan::without_supply_faults`] first.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNetName`] for an unresolvable net
    /// name and [`SimError::InvalidFault`] for supply specs, stage
    /// indices out of range, mismatched target/kind pairs or onsets
    /// before the current simulation time.
    pub fn arm_faults(
        &mut self,
        plan: &FaultPlan,
        stages: &[ComponentId],
    ) -> Result<(), SimError> {
        let was_armed = self.faults.is_some();
        let mut rt = match self.faults.take() {
            Some(boxed) => *boxed,
            None => FaultRuntime::default(),
        };
        let snapshot = (rt.forces.len(), rt.drifts.len(), rt.actions.len());
        // Validate and stage everything before queueing edge events so
        // a failed arm leaves the simulator untouched.
        let mut edges: Vec<(f64, usize)> = Vec::new();
        let result = (|| {
            for spec in plan.specs() {
                if spec.at_ps < self.now.as_ps() {
                    return Err(SimError::InvalidFault(format!(
                        "onset {} ps lies before current time {}",
                        spec.at_ps, self.now
                    )));
                }
                match (&spec.target, &spec.kind) {
                    (FaultTarget::Supply, _) | (_, FaultKind::SupplyDroop { .. }) => {
                        return Err(SimError::InvalidFault(
                            "supply faults are applied at the device layer; strip them \
                             with FaultPlan::without_supply_faults before arming"
                                .to_owned(),
                        ));
                    }
                    (FaultTarget::Net(name), FaultKind::StuckAt { value, until_ps }) => {
                        let net = self.resolve_net(name)?;
                        let index = rt.forces.len();
                        rt.forces.push(ForceState {
                            net: net.0,
                            value: *value,
                            active: false,
                            prev: Bit::Low,
                            blocked: None,
                        });
                        edges.push((spec.at_ps, rt.actions.len()));
                        rt.actions.push(FaultAction::ForceStart(index));
                        edges.push((*until_ps, rt.actions.len()));
                        rt.actions.push(FaultAction::ForceEnd(index));
                    }
                    (FaultTarget::Net(name), FaultKind::Glitch { value, width_ps }) => {
                        let net = self.resolve_net(name)?;
                        let index = rt.forces.len();
                        rt.forces.push(ForceState {
                            net: net.0,
                            value: *value,
                            active: false,
                            prev: Bit::Low,
                            blocked: None,
                        });
                        edges.push((spec.at_ps, rt.actions.len()));
                        rt.actions.push(FaultAction::ForceStart(index));
                        edges.push((spec.at_ps + width_ps, rt.actions.len()));
                        rt.actions.push(FaultAction::ForceEnd(index));
                    }
                    (FaultTarget::Stage(stage), FaultKind::DelayDrift { factor, ramp_ps }) => {
                        let component = stages.get(*stage).ok_or_else(|| {
                            SimError::InvalidFault(format!(
                                "stage {stage} out of range (ring has {} stages)",
                                stages.len()
                            ))
                        })?;
                        rt.drifts.push(DriftState {
                            component: u32::try_from(component.0)
                                .expect("component ids fit u32"),
                            factor: *factor,
                            from_ps: spec.at_ps,
                            ramp_ps: *ramp_ps,
                        });
                    }
                    (target, kind) => {
                        return Err(SimError::InvalidFault(format!(
                            "fault kind {kind:?} cannot target {target:?}"
                        )));
                    }
                }
            }
            Ok(())
        })();
        if let Err(err) = result {
            // Roll back to the pre-call runtime: drop everything this
            // plan staged, restore the previous armed state (if any).
            rt.forces.truncate(snapshot.0);
            rt.drifts.truncate(snapshot.1);
            rt.actions.truncate(snapshot.2);
            if was_armed {
                self.faults = Some(Box::new(rt));
            }
            return Err(err);
        }
        for (at_ps, action) in edges {
            push_event(
                &mut self.queue,
                &mut self.next_seq,
                &mut self.slab,
                Time::from_ps(at_ps),
                Occurrence::FaultEdge { action },
            );
        }
        self.faults = Some(Box::new(rt));
        Ok(())
    }

    /// Looks up a net by its registered name (linear scan — an
    /// arm-time convenience, not a hot path).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNetName`] if no net has that name.
    pub fn resolve_net(&self, name: &str) -> Result<NetId, SimError> {
        self.nets
            .iter()
            .position(|n| n.name == name)
            .map(|i| NetId(u32::try_from(i).expect("net ids fit u32")))
            .ok_or_else(|| SimError::UnknownNetName(name.to_owned()))
    }
}

impl<Q: EventQueue + std::fmt::Debug> std::fmt::Debug for Simulator<Q> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("nets", &self.nets.len())
            .field("components", &self.components.len())
            .field("pending", &self.queue.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{BinaryHeapQueue, CalendarQueue};

    /// Inverting delay stage used across engine tests.
    struct Inverter {
        input: NetId,
        output: NetId,
        delay: f64,
    }

    impl Component for Inverter {
        fn on_event(&mut self, event: &Event, ctx: &mut Context<'_>) {
            if let Event::NetChanged { net, value } = *event {
                if net == self.input {
                    ctx.schedule_net(self.output, !value, self.delay);
                }
            }
        }
    }

    /// Counts timer firings and re-arms itself `repeats` times.
    struct Ticker {
        period: f64,
        remaining: u32,
        fired: u32,
    }

    impl Component for Ticker {
        fn on_event(&mut self, event: &Event, ctx: &mut Context<'_>) {
            if let Event::Timer { tag } = *event {
                self.fired += 1;
                if self.remaining > 0 {
                    self.remaining -= 1;
                    ctx.schedule_timer(self.period, tag);
                }
            }
        }
    }

    /// Builds an odd-length all-inverting ring with alternating initial
    /// levels so that injecting `High` on net 0 starts the oscillation.
    fn ring<Q: EventQueue>(sim: &mut Simulator<Q>, stages: usize, delay: f64) -> Vec<NetId> {
        assert!(stages % 2 == 1, "inverting ring must have odd length");
        let nets: Vec<NetId> = (0..stages)
            .map(|i| {
                sim.add_net_with(format!("n{i}"), if i % 2 == 1 { Bit::High } else { Bit::Low })
            })
            .collect();
        for i in 0..stages {
            let input = nets[i];
            let output = nets[(i + 1) % stages];
            let comp = sim.add_component(Inverter {
                input,
                output,
                delay,
            });
            sim.listen(input, comp).expect("net exists");
        }
        nets
    }

    #[test]
    fn three_stage_ring_oscillates_at_expected_period() {
        let mut sim = Simulator::new(1);
        let nets = ring(&mut sim, 3, 100.0);
        sim.watch(nets[0]).expect("net exists");
        sim.inject(nets[0], Bit::High, 0.0).expect("valid");
        sim.run_until(Time::from_ns(10.0)).expect("no limit");
        let periods = sim
            .trace(nets[0])
            .expect("watched")
            .periods(crate::signal::Edge::Rising);
        assert!(periods.len() > 10);
        // Ideal 3-stage inverter ring: period = 2 * 3 * 100 ps.
        for p in &periods {
            assert!((p - 600.0).abs() < 1e-9, "period {p}");
        }
    }

    #[test]
    fn timers_fire_and_rearm() {
        let mut sim = Simulator::new(1);
        let ticker = sim.add_component(Ticker {
            period: 50.0,
            remaining: 4,
            fired: 0,
        });
        sim.arm_timer(ticker, 50.0, 7).expect("valid");
        sim.run_until(Time::from_ns(1.0)).expect("no limit");
        let t = sim.component::<Ticker>(ticker).expect("typed");
        assert_eq!(t.fired, 5);
        assert_eq!(sim.now(), Time::from_ns(1.0));
    }

    #[test]
    fn cancellation_suppresses_events() {
        let mut sim = Simulator::new(1);
        let net = sim.add_net("n");
        sim.watch(net).expect("net exists");
        let id = sim.inject(net, Bit::High, 10.0).expect("valid");
        sim.cancel(id);
        sim.run_until(Time::from_ps(100.0)).expect("no limit");
        assert!(sim.trace(net).expect("watched").is_empty());
        assert_eq!(sim.stats().events_cancelled, 1);
    }

    /// Exercises every cancellation edge case on one queue
    /// implementation and returns the final statistics.
    fn cancellation_semantics_on<Q: EventQueue>(mut sim: Simulator<Q>) -> SimStats {
        let net = sim.add_net("n");
        sim.watch(net).expect("net exists");

        // A fired event: cancelling afterwards must be a no-op.
        let fired = sim.inject(net, Bit::High, 1.0).expect("valid");
        sim.run_until(Time::from_ps(5.0)).expect("no limit");
        assert_eq!(sim.stats().events_processed, 1);
        sim.cancel(fired); // stale: no effect, ever
        sim.cancel(fired);

        // A pending event cancelled twice counts once.
        let pending = sim.inject(net, Bit::Low, 10.0).expect("valid");
        sim.cancel(pending);
        sim.cancel(pending);

        // A later event still fires normally even though the slab may
        // recycle the cancelled event's slot.
        sim.inject(net, Bit::Low, 20.0).expect("valid");
        sim.run_until(Time::from_ps(100.0)).expect("no limit");

        // The stale handle aimed at the (long fired) first event must
        // not have cancelled anything that reused its slot.
        assert_eq!(sim.trace(net).expect("watched").len(), 2);
        sim.stats()
    }

    #[test]
    fn cancellation_semantics_are_identical_across_queues() {
        let wheel = cancellation_semantics_on(Simulator::new(3));
        let heap = cancellation_semantics_on(Simulator::with_queue(3, BinaryHeapQueue::new()));
        let cal = cancellation_semantics_on(Simulator::with_queue(3, CalendarQueue::new(50.0)));
        assert_eq!(wheel.events_cancelled, 1, "cancel-twice counts once");
        assert_eq!(wheel.events_processed, 2);
        assert_eq!(wheel, heap);
        assert_eq!(wheel, cal);
    }

    #[test]
    fn cancel_from_context_is_honoured() {
        /// Schedules two future drives and cancels one of them.
        struct Canceller {
            net: NetId,
            armed: bool,
        }
        impl Component for Canceller {
            fn on_event(&mut self, event: &Event, ctx: &mut Context<'_>) {
                if matches!(event, Event::Timer { .. }) && !self.armed {
                    self.armed = true;
                    let keep = ctx.schedule_net(self.net, Bit::High, 10.0);
                    let drop = ctx.schedule_net(self.net, Bit::Low, 20.0);
                    ctx.cancel(drop);
                    ctx.cancel(drop); // twice: still one cancellation
                    let _ = keep;
                }
            }
        }
        let mut sim = Simulator::new(5);
        let net = sim.add_net("n");
        sim.watch(net).expect("net exists");
        let comp = sim.add_component(Canceller { net, armed: false });
        sim.arm_timer(comp, 1.0, 0).expect("valid");
        sim.run_until(Time::from_ps(100.0)).expect("no limit");
        assert_eq!(sim.trace(net).expect("watched").len(), 1, "one drive fired");
        assert_eq!(sim.stats().events_cancelled, 1);
        assert_eq!(sim.net_value(net).expect("known"), Bit::High);
    }

    #[test]
    fn no_change_drives_are_suppressed() {
        let mut sim = Simulator::new(1);
        let net = sim.add_net("n");
        sim.watch(net).expect("net exists");
        sim.inject(net, Bit::Low, 5.0).expect("valid");
        sim.inject(net, Bit::High, 10.0).expect("valid");
        sim.inject(net, Bit::High, 15.0).expect("valid");
        sim.run_until(Time::from_ps(100.0)).expect("no limit");
        assert_eq!(sim.trace(net).expect("watched").len(), 1);
        assert_eq!(sim.stats().drives_suppressed, 2);
    }

    #[test]
    fn step_limit_is_enforced() {
        let mut sim = Simulator::new(1);
        let nets = ring(&mut sim, 3, 100.0);
        sim.inject(nets[0], Bit::High, 0.0).expect("valid");
        sim.set_step_limit(10);
        let err = sim.run_until(Time::from_us(1.0)).expect_err("must hit limit");
        assert_eq!(err, SimError::StepLimitExceeded { limit: 10 });
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let mut sim = Simulator::new(1);
        let net = sim.add_net("n");
        let comp = sim.add_component(Ticker {
            period: 1.0,
            remaining: 0,
            fired: 0,
        });
        assert!(matches!(
            sim.listen(NetId(9), comp),
            Err(SimError::UnknownNet(_))
        ));
        assert!(matches!(
            sim.listen(net, ComponentId(9)),
            Err(SimError::UnknownComponent(9))
        ));
        assert!(matches!(
            sim.inject(NetId(9), Bit::High, 0.0),
            Err(SimError::UnknownNet(_))
        ));
        assert!(matches!(
            sim.inject(net, Bit::High, -1.0),
            Err(SimError::InvalidDelay(_))
        ));
        assert!(matches!(
            sim.arm_timer(ComponentId(9), 0.0, 0),
            Err(SimError::UnknownComponent(9))
        ));
        assert!(matches!(
            sim.watch(NetId(9)),
            Err(SimError::UnknownNet(_))
        ));
    }

    #[test]
    fn wide_fanout_spills_and_still_dispatches() {
        // More listeners than the inline capacity: the spill vector is
        // taken and restored around dispatch, and every listener fires
        // on every drive.
        let mut sim = Simulator::new(1);
        let src = sim.add_net("src");
        let mut outs = Vec::new();
        for i in 0..7 {
            // Outputs start High so the inverted drive (Low) records.
            let out = sim.add_net_with(format!("out{i}"), Bit::High);
            let comp = sim.add_component(Inverter {
                input: src,
                output: out,
                delay: 1.0 + i as f64,
            });
            sim.listen(src, comp).expect("net exists");
            sim.watch(out).expect("net exists");
            outs.push(out);
        }
        sim.inject(src, Bit::High, 0.0).expect("valid");
        sim.run_until(Time::from_ps(50.0)).expect("no limit");
        for &out in &outs {
            assert_eq!(sim.trace(out).expect("watched").len(), 1);
        }
        // Drive again: the restored spill list must still be intact.
        sim.inject(src, Bit::Low, 0.0).expect("valid");
        sim.run_until(Time::from_ps(100.0)).expect("no limit");
        for &out in &outs {
            assert_eq!(sim.trace(out).expect("watched").len(), 2);
        }
    }

    #[test]
    fn duplicate_listen_registers_once() {
        let mut sim = Simulator::new(1);
        let a = sim.add_net("a");
        let comp = sim.add_component(Ticker {
            period: 0.0,
            remaining: 0,
            fired: 0,
        });
        sim.listen(a, comp).expect("net exists");
        sim.listen(a, comp).expect("net exists");
        sim.inject(a, Bit::High, 0.0).expect("valid");
        sim.run_until(Time::from_ps(10.0)).expect("no limit");
        assert_eq!(sim.stats().events_processed, 1);
        assert_eq!(sim.nets[a.index()].listeners.as_slice().len(), 1);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        fn run(seed: u64) -> Vec<(f64, u8)> {
            let mut sim = Simulator::new(seed);
            let nets = ring(&mut sim, 5, 100.0);
            sim.watch(nets[0]).expect("net exists");
            sim.inject(nets[0], Bit::High, 0.0).expect("valid");
            sim.run_until(Time::from_ns(20.0)).expect("no limit");
            sim.trace(nets[0])
                .expect("watched")
                .transitions()
                .iter()
                .map(|&(t, v)| (t.as_ps(), u8::from(v)))
                .collect()
        }
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn all_queue_engines_match() {
        fn run<Q: EventQueue>(mut sim: Simulator<Q>) -> Vec<f64> {
            let nets = ring(&mut sim, 7, 93.0);
            sim.watch(nets[0]).expect("net exists");
            sim.inject(nets[0], Bit::High, 0.0).expect("valid");
            sim.run_until(Time::from_ns(50.0)).expect("no limit");
            sim.trace(nets[0])
                .expect("watched")
                .rising_edges()
                .iter()
                .map(|t| t.as_ps())
                .collect()
        }
        let wheel = run(Simulator::new(9));
        let heap = run(Simulator::with_queue(9, BinaryHeapQueue::new()));
        let cal = run(Simulator::with_queue(9, CalendarQueue::new(50.0)));
        assert_eq!(wheel, heap);
        assert_eq!(wheel, cal);
    }

    #[test]
    fn lint_flags_orphan_net_unreachable_component_and_spill() {
        use crate::lint::LintCode;

        let mut sim = Simulator::new(1);
        // Orphan: no listeners, not watched -> SL001.
        let orphan = sim.add_net("dangling");
        // Unreachable: no subscriptions, no timer -> SL002.
        let _idle = sim.add_component(Ticker {
            period: 1.0,
            remaining: 0,
            fired: 0,
        });
        // Spilled fan-out: INLINE + 1 listeners -> SL003 (and the net
        // itself has listeners, so no SL001 for it).
        let wide = sim.add_net("wide");
        for i in 0..=INLINE_FANOUT {
            let out = sim.add_net(format!("out{i}"));
            sim.watch(out).expect("net exists");
            let comp = sim.add_component(Inverter {
                input: wide,
                output: out,
                delay: 1.0,
            });
            sim.listen(wide, comp).expect("net exists");
        }
        let report = sim.lint_netlist();
        assert!(report.has_code(LintCode::OrphanNet));
        assert!(report.has_code(LintCode::UnreachableComponent));
        assert!(report.has_code(LintCode::SpilledFanout));
        let orphan_subject = format!("net {} (dangling)", orphan.index());
        assert!(
            report
                .diagnostics()
                .iter()
                .any(|d| d.code == LintCode::OrphanNet && d.subject == orphan_subject),
            "orphan names the net: {report}"
        );
    }

    #[test]
    fn lint_accepts_a_well_formed_netlist() {
        // A ring (every net listened), a watched output and an armed
        // timer component: nothing to report.
        let mut sim = Simulator::new(1);
        let nets = ring(&mut sim, 3, 100.0);
        sim.watch(nets[0]).expect("net exists");
        let ticker = sim.add_component(Ticker {
            period: 50.0,
            remaining: 1,
            fired: 0,
        });
        sim.arm_timer(ticker, 50.0, 7).expect("valid");
        let report = sim.lint_netlist();
        assert!(report.is_clean(), "unexpected findings:\n{report}");
    }

    #[test]
    fn watched_but_unlistened_net_is_not_an_orphan() {
        // A measurement tap: no listeners, but watched. The trace is
        // the observer, so the net is not an orphan.
        let mut sim = Simulator::new(1);
        let tap = sim.add_net("tap");
        sim.watch(tap).expect("net exists");
        assert!(sim.lint_netlist().is_clean());
    }

    #[test]
    fn listeners_accessor_reports_subscriptions() {
        let mut sim = Simulator::new(1);
        let net = sim.add_net("n");
        let comp = sim.add_component(Ticker {
            period: 1.0,
            remaining: 0,
            fired: 0,
        });
        assert_eq!(sim.listeners(net).expect("known"), vec![]);
        sim.listen(net, comp).expect("net exists");
        assert_eq!(sim.listeners(net).expect("known"), vec![comp]);
        assert!(sim.listeners(NetId(9)).is_err());
    }

    #[test]
    fn components_have_independent_rngs() {
        struct Sampler {
            out: Vec<f64>,
        }
        impl Component for Sampler {
            fn on_event(&mut self, event: &Event, ctx: &mut Context<'_>) {
                if matches!(event, Event::Timer { .. }) {
                    let x = ctx.rng().standard_normal();
                    self.out.push(x);
                }
            }
        }
        let mut sim = Simulator::new(4);
        let a = sim.add_component(Sampler { out: Vec::new() });
        let b = sim.add_component(Sampler { out: Vec::new() });
        sim.arm_timer(a, 1.0, 0).expect("valid");
        sim.arm_timer(b, 1.0, 0).expect("valid");
        sim.run_until(Time::from_ps(10.0)).expect("no limit");
        let xa = sim.component::<Sampler>(a).expect("typed").out[0];
        let xb = sim.component::<Sampler>(b).expect("typed").out[0];
        assert_ne!(xa, xb);
    }
}
