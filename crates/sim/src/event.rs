//! Event payloads delivered to components.

use serde::{Deserialize, Serialize};

use crate::signal::{Bit, NetId};

/// Opaque tag attached to timer events so a component can distinguish
/// several concurrent timers it has armed.
pub type TimerTag = u64;

/// Unique identifier of a scheduled event, usable for cancellation.
///
/// Returned by the scheduling methods on [`Context`] and [`Simulator`].
///
/// [`Context`]: crate::Context
/// [`Simulator`]: crate::Simulator
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// Returns the raw sequence number of this event.
    #[must_use]
    pub fn sequence(self) -> u64 {
        self.0
    }
}

/// An event delivered to a [`Component`].
///
/// [`Component`]: crate::Component
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// A net this component listens to changed value.
    NetChanged {
        /// The net that changed.
        net: NetId,
        /// Its new level.
        value: Bit,
    },
    /// A timer armed by this component elapsed.
    Timer {
        /// The tag passed when the timer was armed.
        tag: TimerTag,
    },
}

/// Internal representation of a queued occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Occurrence {
    /// Drive `net` to `value`; fan-out listeners are then notified.
    DriveNet { net: NetId, value: Bit },
    /// Deliver `Event::Timer { tag }` to `component`.
    FireTimer { component: usize, tag: TimerTag },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_id_exposes_sequence() {
        assert_eq!(EventId(42).sequence(), 42);
    }

    #[test]
    fn events_compare() {
        let a = Event::NetChanged {
            net: NetId(1),
            value: Bit::High,
        };
        let b = Event::Timer { tag: 9 };
        assert_ne!(a, b);
        assert_eq!(b, Event::Timer { tag: 9 });
    }
}
