//! Event payloads delivered to components.

use serde::{Deserialize, Serialize};

use crate::signal::{Bit, NetId};

/// Opaque tag attached to timer events so a component can distinguish
/// several concurrent timers it has armed.
pub type TimerTag = u64;

/// Unique identifier of a scheduled event, usable for cancellation.
///
/// Returned by the scheduling methods on [`Context`] and [`Simulator`].
/// Internally it packs the event's cancellation-slab slot with the
/// slot's generation stamp, so a handle held after its event fired can
/// never cancel a later event that happens to reuse the slot.
///
/// [`Context`]: crate::Context
/// [`Simulator`]: crate::Simulator
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// Packs a slab slot and its generation into a handle.
    #[inline]
    pub(crate) fn pack(slot: u32, generation: u32) -> Self {
        EventId((u64::from(generation) << 32) | u64::from(slot))
    }

    /// The slab slot this handle refers to.
    #[inline]
    pub(crate) fn slot(self) -> u32 {
        self.0 as u32
    }

    /// The slot generation at scheduling time.
    #[inline]
    pub(crate) fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Returns the raw packed value of this handle (opaque; useful only
    /// for logging and as a map key).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// An event delivered to a [`Component`].
///
/// [`Component`]: crate::Component
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// A net this component listens to changed value.
    NetChanged {
        /// The net that changed.
        net: NetId,
        /// Its new level.
        value: Bit,
    },
    /// A timer armed by this component elapsed.
    Timer {
        /// The tag passed when the timer was armed.
        tag: TimerTag,
    },
}

/// Internal representation of a queued occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Occurrence {
    /// Drive `net` to `value`; fan-out listeners are then notified.
    DriveNet { net: NetId, value: Bit },
    /// Deliver `Event::Timer { tag }` to `component`.
    FireTimer { component: usize, tag: TimerTag },
    /// Apply fault action `action` (an index into the armed
    /// `FaultRuntime`'s action table): open or close a forcing window.
    /// Only ever queued while a fault plan is armed.
    FaultEdge { action: usize },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_id_round_trips_slot_and_generation() {
        let id = EventId::pack(42, 7);
        assert_eq!(id.slot(), 42);
        assert_eq!(id.generation(), 7);
        assert_eq!(id.raw(), (7u64 << 32) | 42);
    }

    #[test]
    fn events_compare() {
        let a = Event::NetChanged {
            net: NetId(1),
            value: Bit::High,
        };
        let b = Event::Timer { tag: 9 };
        assert_ne!(a, b);
        assert_eq!(b, Event::Timer { tag: 9 });
    }
}
