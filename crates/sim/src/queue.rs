//! Pending-event set implementations.
//!
//! The simulator is generic over its pending-event set through the
//! [`EventQueue`] trait. Two implementations are provided:
//!
//! * [`BinaryHeapQueue`] — the default; a binary heap keyed by
//!   `(time, sequence)`.
//! * [`CalendarQueue`] — a bucketed (calendar) queue, included as the
//!   classic discrete-event-simulation alternative and exercised by the
//!   `engine` ablation bench.
//!
//! Both orderings are **deterministic**: ties in time are broken by the
//! monotonically increasing insertion sequence number, so runs are
//! reproducible regardless of floating-point time collisions.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

use crate::event::Occurrence;
use crate::Time;

/// A queued occurrence with its scheduled time and tie-breaking sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent {
    /// When the event fires.
    pub(crate) time: Time,
    /// Insertion sequence number; also the public [`EventId`] payload.
    ///
    /// [`EventId`]: crate::EventId
    pub(crate) seq: u64,
    /// What happens.
    pub(crate) occurrence: Occurrence,
}

impl ScheduledEvent {
    /// The instant at which the event fires.
    #[must_use]
    pub fn time(&self) -> Time {
        self.time
    }

    /// The deterministic tie-break sequence number.
    #[must_use]
    pub fn sequence(&self) -> u64 {
        self.seq
    }

    fn key(&self) -> (Time, u64) {
        (self.time, self.seq)
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic pending-event set.
///
/// Implementors must pop events in `(time, sequence)` order.
pub trait EventQueue {
    /// Inserts an event.
    fn push(&mut self, event: ScheduledEvent);

    /// Removes and returns the earliest event, or `None` when empty.
    fn pop(&mut self) -> Option<ScheduledEvent>;

    /// Returns the time of the earliest event without removing it.
    fn peek_time(&self) -> Option<Time>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Binary-heap pending-event set (the default).
#[derive(Debug, Default)]
pub struct BinaryHeapQueue {
    heap: BinaryHeap<std::cmp::Reverse<ScheduledEvent>>,
}

impl BinaryHeapQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventQueue for BinaryHeapQueue {
    fn push(&mut self, event: ScheduledEvent) {
        self.heap.push(std::cmp::Reverse(event));
    }

    fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop().map(|r| r.0)
    }

    fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|r| r.0.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Calendar (bucketed) pending-event set.
///
/// Events are grouped into fixed-width time buckets; the earliest bucket is
/// scanned on pop. For workloads whose pending events cluster in a narrow
/// time window (like ring oscillators, where every stage fires within one
/// period) this trades heap reshuffling for short bucket scans.
#[derive(Debug)]
pub struct CalendarQueue {
    /// Bucket index -> events in that bucket (unsorted).
    buckets: BTreeMap<u64, Vec<ScheduledEvent>>,
    /// Width of one bucket, picoseconds.
    bucket_width: f64,
    len: usize,
}

impl CalendarQueue {
    /// Creates an empty calendar queue with the given bucket width in
    /// picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width_ps` is not finite and positive.
    #[must_use]
    pub fn new(bucket_width_ps: f64) -> Self {
        assert!(
            bucket_width_ps.is_finite() && bucket_width_ps > 0.0,
            "bucket width must be positive, got {bucket_width_ps}"
        );
        CalendarQueue {
            buckets: BTreeMap::new(),
            bucket_width: bucket_width_ps,
            len: 0,
        }
    }

    fn bucket_of(&self, time: Time) -> u64 {
        let idx = (time.as_ps() / self.bucket_width).floor();
        if idx <= 0.0 {
            0
        } else {
            idx as u64
        }
    }
}

impl Default for CalendarQueue {
    /// A calendar queue with 100 ps buckets (roughly one gate delay).
    fn default() -> Self {
        CalendarQueue::new(100.0)
    }
}

impl EventQueue for CalendarQueue {
    fn push(&mut self, event: ScheduledEvent) {
        let bucket = self.bucket_of(event.time);
        self.buckets.entry(bucket).or_default().push(event);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<ScheduledEvent> {
        let (&bucket, events) = self.buckets.iter_mut().next()?;
        let best = events
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.key())
            .map(|(i, _)| i)
            .expect("bucket is non-empty");
        let event = events.swap_remove(best);
        if events.is_empty() {
            self.buckets.remove(&bucket);
        }
        self.len -= 1;
        Some(event)
    }

    fn peek_time(&self) -> Option<Time> {
        let (_, events) = self.buckets.iter().next()?;
        events.iter().map(|e| e.time).min()
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Occurrence;
    use crate::signal::{Bit, NetId};

    fn ev(time: f64, seq: u64) -> ScheduledEvent {
        ScheduledEvent {
            time: Time::from_ps(time),
            seq,
            occurrence: Occurrence::DriveNet {
                net: NetId(0),
                value: Bit::High,
            },
        }
    }

    fn drain(queue: &mut dyn EventQueue) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = queue.pop() {
            out.push((e.time.as_ps(), e.seq));
        }
        out
    }

    #[test]
    fn heap_orders_by_time_then_sequence() {
        let mut q = BinaryHeapQueue::new();
        q.push(ev(5.0, 1));
        q.push(ev(1.0, 2));
        q.push(ev(5.0, 0));
        q.push(ev(3.0, 3));
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_time(), Some(Time::from_ps(1.0)));
        assert_eq!(
            drain(&mut q),
            vec![(1.0, 2), (3.0, 3), (5.0, 0), (5.0, 1)]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn calendar_orders_by_time_then_sequence() {
        let mut q = CalendarQueue::new(2.0);
        q.push(ev(5.0, 1));
        q.push(ev(1.0, 2));
        q.push(ev(5.0, 0));
        q.push(ev(3.0, 3));
        q.push(ev(0.0, 9));
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(Time::from_ps(0.0)));
        assert_eq!(
            drain(&mut q),
            vec![(0.0, 9), (1.0, 2), (3.0, 3), (5.0, 0), (5.0, 1)]
        );
    }

    #[test]
    fn calendar_handles_same_bucket_collisions() {
        let mut q = CalendarQueue::new(1000.0);
        for seq in (0..50).rev() {
            q.push(ev(seq as f64, seq));
        }
        let drained = drain(&mut q);
        let times: Vec<f64> = drained.iter().map(|&(t, _)| t).collect();
        let mut sorted = times.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(times, sorted);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn calendar_rejects_bad_width() {
        let _ = CalendarQueue::new(0.0);
    }

    #[test]
    fn queues_agree_on_random_workload() {
        // Deterministic pseudo-random insert/pop interleaving.
        let mut heap = BinaryHeapQueue::new();
        let mut cal = CalendarQueue::new(7.0);
        let mut state = 0x9e3779b97f4a7c15u64;

        let mut heap_out = Vec::new();
        let mut cal_out = Vec::new();
        for seq in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let t = (state >> 40) as f64 / 16.0;
            let e = ev(t, seq);
            heap.push(e);
            cal.push(e);
            if state.is_multiple_of(3) {
                heap_out.push(heap.pop().map(|e| e.key()));
                cal_out.push(cal.pop().map(|e| e.key()));
            }
        }
        while let Some(e) = heap.pop() {
            heap_out.push(Some(e.key()));
        }
        while let Some(e) = cal.pop() {
            cal_out.push(Some(e.key()));
        }
        assert_eq!(heap_out, cal_out);
    }
}
