//! Pending-event set implementations.
//!
//! The simulator is generic over its pending-event set through the
//! [`EventQueue`] trait. Three implementations are provided:
//!
//! * [`WheelQueue`] — the default; a two-level timing wheel with
//!   lazily sorted buckets, giving O(1) amortized push/pop on the
//!   clustered workloads ring simulations produce.
//! * [`BinaryHeapQueue`] — a binary heap keyed by `(time, sequence)`;
//!   the classic O(log n) baseline.
//! * [`CalendarQueue`] — a bucketed (calendar) queue over a `BTreeMap`
//!   of lazily sorted buckets, included as the classic
//!   discrete-event-simulation alternative.
//!
//! All orderings are **deterministic and identical**: events pop in
//! `(time, sequence)` order, where ties in time are broken by the
//! monotonically increasing insertion sequence number. The equivalence
//! is pinned by unit tests here and by the property suite in
//! `crates/sim/tests/properties.rs`.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

use crate::event::Occurrence;
use crate::Time;

/// A queued occurrence with its scheduled time and tie-breaking sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent {
    /// When the event fires.
    pub(crate) time: Time,
    /// Insertion sequence number — the deterministic tie-break.
    pub(crate) seq: u64,
    /// Cancellation-slab slot holding this event's liveness state.
    pub(crate) slot: u32,
    /// What happens.
    pub(crate) occurrence: Occurrence,
}

impl ScheduledEvent {
    /// The instant at which the event fires.
    #[must_use]
    pub fn time(&self) -> Time {
        self.time
    }

    /// The deterministic tie-break sequence number.
    #[must_use]
    pub fn sequence(&self) -> u64 {
        self.seq
    }

    #[inline]
    fn key(&self) -> (Time, u64) {
        (self.time, self.seq)
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic pending-event set.
///
/// Implementors must pop events in `(time, sequence)` order.
///
/// `peek_time` takes `&mut self` so implementations may organize their
/// storage lazily (the wheel and calendar queues sort buckets on
/// demand); it must not change the observable pop sequence.
pub trait EventQueue {
    /// Inserts an event. The event's time is never earlier than the
    /// time of the most recently popped event (simulation time is
    /// monotone).
    fn push(&mut self, event: ScheduledEvent);

    /// Removes and returns the earliest event, or `None` when empty.
    fn pop(&mut self) -> Option<ScheduledEvent>;

    /// Removes and returns the earliest event **only if** it fires at
    /// or before `horizon`; otherwise leaves the queue untouched and
    /// returns `None`.
    ///
    /// This is the hot-path primitive behind
    /// [`Simulator::run_until`](crate::Simulator::run_until): one call
    /// per event instead of a `peek_time` + `pop` pair. The default
    /// implementation is exactly that pair; implementations override it
    /// to locate the minimum once.
    fn pop_at_or_before(&mut self, horizon: Time) -> Option<ScheduledEvent> {
        if self.peek_time()? > horizon {
            return None;
        }
        self.pop()
    }

    /// Returns the time of the earliest event without removing it.
    fn peek_time(&mut self) -> Option<Time>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Binary-heap pending-event set (the O(log n) baseline).
#[derive(Debug, Default)]
pub struct BinaryHeapQueue {
    heap: BinaryHeap<std::cmp::Reverse<ScheduledEvent>>,
}

impl BinaryHeapQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventQueue for BinaryHeapQueue {
    #[inline]
    fn push(&mut self, event: ScheduledEvent) {
        self.heap.push(std::cmp::Reverse(event));
    }

    #[inline]
    fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop().map(|r| r.0)
    }

    #[inline]
    fn pop_at_or_before(&mut self, horizon: Time) -> Option<ScheduledEvent> {
        if self.heap.peek()?.0.time > horizon {
            return None;
        }
        self.heap.pop().map(|r| r.0)
    }

    fn peek_time(&mut self) -> Option<Time> {
        self.heap.peek().map(|r| r.0.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// A lazily sorted event bucket shared by [`WheelQueue`] and
/// [`CalendarQueue`].
///
/// Events accumulate unsorted; the first pop (or peek) after a push
/// sorts the bucket **descending** by `(time, seq)` so the minimum sits
/// at the tail and `Vec::pop` drains it in O(1). Keys are unique
/// (sequence numbers never repeat), so the unstable sort is
/// deterministic.
#[derive(Debug, Default)]
struct LazyBucket {
    events: Vec<ScheduledEvent>,
    sorted: bool,
}

impl LazyBucket {
    #[inline]
    fn push(&mut self, event: ScheduledEvent) {
        self.events.push(event);
        self.sorted = false;
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Establishes the descending order if a push disturbed it.
    #[inline]
    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // Ring workloads leave only one or two events per bucket;
            // handle those without the sort-call overhead.
            match self.events.len() {
                0 | 1 => {}
                2 => {
                    if self.events[0].cmp(&self.events[1]) == std::cmp::Ordering::Less {
                        self.events.swap(0, 1);
                    }
                }
                _ => self.events.sort_unstable_by(|a, b| b.cmp(a)),
            }
            self.sorted = true;
        }
    }

    /// Sorts if needed and returns the earliest event in the bucket.
    #[inline]
    fn ensure_min(&mut self) -> Option<&ScheduledEvent> {
        self.ensure_sorted();
        self.events.last()
    }

    /// Pops the earliest event; callers must have a non-empty bucket.
    #[inline]
    fn pop_min(&mut self) -> ScheduledEvent {
        debug_assert!(self.sorted, "pop_min follows ensure_min");
        self.events.pop().expect("bucket is non-empty")
    }
}

/// Number of near-window buckets in a [`WheelQueue`] (power of two).
const WHEEL_SLOTS: usize = 256;

/// Two-level timing wheel — the default pending-event set.
///
/// The **near window** is a ring of [`WHEEL_SLOTS`] buckets of
/// `bucket_width_ps` picoseconds each, covering the time span right
/// ahead of the cursor; events beyond it overflow into a **far** map of
/// coarse buckets keyed by absolute bucket index. Ring-oscillator
/// workloads schedule every event at most a few gate delays ahead, so
/// in steady state every push and pop touches only the near ring:
///
/// * `push` is a multiply, a mask and a `Vec::push` — O(1), and after
///   warm-up allocation-free (bucket vectors retain their capacity);
/// * `pop` pops the tail of the current bucket — O(1) amortized, with
///   one O(k log k) lazy sort per bucket generation (k = events that
///   landed in the bucket);
/// * far-window events (long timers) pay one `BTreeMap` operation each,
///   amortized into the window advance.
///
/// # Determinism
///
/// Pop order is exactly `(time, sequence)`: bucket indices are a
/// monotone function of time, so cross-bucket order is correct by
/// construction, and within a bucket the lazy sort orders by the full
/// key. A push whose time quantizes to a bucket the cursor already
/// passed (possible only through floating-point edge cases, since event
/// times are never earlier than the last popped time) is clamped to the
/// cursor bucket, which preserves the pop order — see the proof sketch
/// in `docs/engine_perf.md`.
#[derive(Debug)]
pub struct WheelQueue {
    /// The near ring; bucket for absolute index `b` lives at
    /// `b % WHEEL_SLOTS`.
    slots: Box<[LazyBucket]>,
    /// Absolute bucket index of the cursor (earliest possibly non-empty
    /// near bucket).
    cur: u64,
    /// Overflow: absolute bucket index -> events, for buckets at or
    /// beyond `cur + WHEEL_SLOTS`.
    far: BTreeMap<u64, Vec<ScheduledEvent>>,
    /// Reciprocal of the bucket width (multiplication beats division on
    /// the push hot path; monotonicity in time is all that matters).
    inv_width: f64,
    /// Events in the near ring.
    near_len: usize,
    /// Total pending events (near + far).
    len: usize,
}

impl WheelQueue {
    /// Default bucket width: 64 ps, a fraction of one gate delay, so
    /// consecutive ring events land a few buckets ahead of the cursor
    /// and rarely force a re-sort of the bucket being drained.
    pub const DEFAULT_BUCKET_WIDTH_PS: f64 = 64.0;

    /// Creates an empty wheel with the default bucket width.
    #[must_use]
    pub fn new() -> Self {
        Self::with_bucket_width(Self::DEFAULT_BUCKET_WIDTH_PS)
    }

    /// Creates an empty wheel with an explicit bucket width in
    /// picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width_ps` is not finite and positive.
    #[must_use]
    pub fn with_bucket_width(bucket_width_ps: f64) -> Self {
        assert!(
            bucket_width_ps.is_finite() && bucket_width_ps > 0.0,
            "bucket width must be positive, got {bucket_width_ps}"
        );
        let mut slots = Vec::with_capacity(WHEEL_SLOTS);
        slots.resize_with(WHEEL_SLOTS, LazyBucket::default);
        WheelQueue {
            slots: slots.into_boxed_slice(),
            cur: 0,
            far: BTreeMap::new(),
            inv_width: bucket_width_ps.recip(),
            near_len: 0,
            len: 0,
        }
    }

    /// Absolute bucket index of an instant. Monotone in `time`;
    /// saturates at 0 for (theoretical) negative instants.
    #[inline]
    fn bucket_of(&self, time: Time) -> u64 {
        // `as` saturates: negatives -> 0, huge -> u64::MAX.
        (time.as_ps() * self.inv_width) as u64
    }

    #[inline]
    fn slot_of(bucket: u64) -> usize {
        (bucket % WHEEL_SLOTS as u64) as usize
    }

    /// Advances the cursor past its (empty) bucket, pulling in the far
    /// bucket that just entered the near window, if any.
    fn advance(&mut self) {
        debug_assert!(self.slots[Self::slot_of(self.cur)].is_empty());
        self.cur += 1;
        let entering = self.cur + WHEEL_SLOTS as u64 - 1;
        if let Some(events) = self.far.remove(&entering) {
            let bucket = &mut self.slots[Self::slot_of(entering)];
            debug_assert!(bucket.is_empty());
            self.near_len += events.len();
            bucket.events = events;
            bucket.sorted = false;
        }
    }

    /// Repositions the cursor when the near ring is empty: jumps to the
    /// earliest far bucket and pulls every far bucket inside the new
    /// window into the ring.
    fn refill_from_far(&mut self) {
        debug_assert_eq!(self.near_len, 0);
        let Some((&first, _)) = self.far.iter().next() else {
            return;
        };
        self.cur = first;
        let window_end = self.cur + WHEEL_SLOTS as u64;
        while let Some((&b, _)) = self.far.iter().next() {
            if b >= window_end {
                break;
            }
            let events = self.far.remove(&b).expect("key just observed");
            let bucket = &mut self.slots[Self::slot_of(b)];
            debug_assert!(bucket.is_empty());
            self.near_len += events.len();
            bucket.events = events;
            bucket.sorted = false;
        }
    }

    /// Positions the cursor on the next non-empty bucket, sorts it, and
    /// returns it, or `None` when the queue is empty. The bucket's
    /// minimum sits at the vector tail.
    #[inline]
    fn min_bucket(&mut self) -> Option<&mut LazyBucket> {
        if self.len == 0 {
            return None;
        }
        if self.near_len == 0 {
            self.refill_from_far();
        }
        while self.slots[Self::slot_of(self.cur)].is_empty() {
            self.advance();
        }
        let bucket = &mut self.slots[Self::slot_of(self.cur)];
        bucket.ensure_sorted();
        Some(bucket)
    }
}

impl Default for WheelQueue {
    fn default() -> Self {
        WheelQueue::new()
    }
}

impl EventQueue for WheelQueue {
    #[inline]
    fn push(&mut self, event: ScheduledEvent) {
        // Clamping to the cursor bucket keeps the order invariant even
        // if quantization places the event behind the cursor (event
        // times are never earlier than the last popped time, so the
        // clamp can only be triggered by float rounding at a bucket
        // boundary or by a cursor parked ahead after a bounded pop).
        let bucket = self.bucket_of(event.time).max(self.cur);
        if bucket < self.cur + WHEEL_SLOTS as u64 {
            self.slots[Self::slot_of(bucket)].push(event);
            self.near_len += 1;
        } else {
            self.far.entry(bucket).or_default().push(event);
        }
        self.len += 1;
    }

    #[inline]
    fn pop(&mut self) -> Option<ScheduledEvent> {
        let event = self.min_bucket()?.pop_min();
        self.near_len -= 1;
        self.len -= 1;
        Some(event)
    }

    #[inline]
    fn pop_at_or_before(&mut self, horizon: Time) -> Option<ScheduledEvent> {
        let bucket = self.min_bucket()?;
        if bucket.ensure_min().expect("bucket is non-empty").time > horizon {
            return None;
        }
        let event = bucket.pop_min();
        self.near_len -= 1;
        self.len -= 1;
        Some(event)
    }

    fn peek_time(&mut self) -> Option<Time> {
        self.min_bucket()
            .map(|b| b.ensure_min().expect("bucket is non-empty").time)
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Calendar (bucketed) pending-event set.
///
/// Events are grouped into fixed-width time buckets held in a
/// `BTreeMap`; the earliest bucket is sorted lazily (descending) so its
/// minimum pops from the tail in O(1). For workloads whose pending
/// events cluster in a narrow time window (like ring oscillators, where
/// every stage fires within one period) this trades heap reshuffling
/// for one amortized sort per bucket generation.
#[derive(Debug)]
pub struct CalendarQueue {
    /// Bucket index -> lazily sorted events in that bucket.
    buckets: BTreeMap<u64, LazyBucket>,
    /// Width of one bucket, picoseconds.
    bucket_width: f64,
    len: usize,
}

impl CalendarQueue {
    /// Creates an empty calendar queue with the given bucket width in
    /// picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width_ps` is not finite and positive.
    #[must_use]
    pub fn new(bucket_width_ps: f64) -> Self {
        assert!(
            bucket_width_ps.is_finite() && bucket_width_ps > 0.0,
            "bucket width must be positive, got {bucket_width_ps}"
        );
        CalendarQueue {
            buckets: BTreeMap::new(),
            bucket_width: bucket_width_ps,
            len: 0,
        }
    }

    fn bucket_of(&self, time: Time) -> u64 {
        let idx = (time.as_ps() / self.bucket_width).floor();
        if idx <= 0.0 {
            0
        } else {
            idx as u64
        }
    }

    /// Sorts the earliest bucket if needed and returns a handle to it.
    #[inline]
    fn first_bucket(&mut self) -> Option<(u64, &mut LazyBucket)> {
        let (&index, bucket) = self.buckets.iter_mut().next()?;
        let _ = bucket.ensure_min();
        Some((index, bucket))
    }
}

impl Default for CalendarQueue {
    /// A calendar queue with 100 ps buckets (roughly one gate delay).
    fn default() -> Self {
        CalendarQueue::new(100.0)
    }
}

impl EventQueue for CalendarQueue {
    fn push(&mut self, event: ScheduledEvent) {
        let bucket = self.bucket_of(event.time);
        self.buckets.entry(bucket).or_default().push(event);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<ScheduledEvent> {
        let (index, bucket) = self.first_bucket()?;
        let event = bucket.pop_min();
        if bucket.is_empty() {
            self.buckets.remove(&index);
        }
        self.len -= 1;
        Some(event)
    }

    fn pop_at_or_before(&mut self, horizon: Time) -> Option<ScheduledEvent> {
        let (index, bucket) = self.first_bucket()?;
        if bucket.ensure_min()?.time > horizon {
            return None;
        }
        let event = bucket.pop_min();
        if bucket.is_empty() {
            self.buckets.remove(&index);
        }
        self.len -= 1;
        Some(event)
    }

    fn peek_time(&mut self) -> Option<Time> {
        self.first_bucket()
            .and_then(|(_, bucket)| bucket.ensure_min().map(|e| e.time))
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Occurrence;
    use crate::signal::{Bit, NetId};

    fn ev(time: f64, seq: u64) -> ScheduledEvent {
        ScheduledEvent {
            time: Time::from_ps(time),
            seq,
            slot: 0,
            occurrence: Occurrence::DriveNet {
                net: NetId(0),
                value: Bit::High,
            },
        }
    }

    fn drain(queue: &mut dyn EventQueue) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = queue.pop() {
            out.push((e.time.as_ps(), e.seq));
        }
        out
    }

    #[test]
    fn heap_orders_by_time_then_sequence() {
        let mut q = BinaryHeapQueue::new();
        q.push(ev(5.0, 1));
        q.push(ev(1.0, 2));
        q.push(ev(5.0, 0));
        q.push(ev(3.0, 3));
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_time(), Some(Time::from_ps(1.0)));
        assert_eq!(
            drain(&mut q),
            vec![(1.0, 2), (3.0, 3), (5.0, 0), (5.0, 1)]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn calendar_orders_by_time_then_sequence() {
        let mut q = CalendarQueue::new(2.0);
        q.push(ev(5.0, 1));
        q.push(ev(1.0, 2));
        q.push(ev(5.0, 0));
        q.push(ev(3.0, 3));
        q.push(ev(0.0, 9));
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(Time::from_ps(0.0)));
        assert_eq!(
            drain(&mut q),
            vec![(0.0, 9), (1.0, 2), (3.0, 3), (5.0, 0), (5.0, 1)]
        );
    }

    #[test]
    fn wheel_orders_by_time_then_sequence() {
        let mut q = WheelQueue::new();
        q.push(ev(5.0, 1));
        q.push(ev(1.0, 2));
        q.push(ev(5.0, 0));
        q.push(ev(3.0, 3));
        q.push(ev(0.0, 9));
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(Time::from_ps(0.0)));
        assert_eq!(
            drain(&mut q),
            vec![(0.0, 9), (1.0, 2), (3.0, 3), (5.0, 0), (5.0, 1)]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn wheel_crosses_near_far_boundary() {
        // Events straddling the near window (256 buckets x 64 ps =
        // 16384 ps) must pop in global order: far buckets are pulled in
        // as the cursor advances.
        let mut q = WheelQueue::new();
        let times = [
            0.5, 100.0, 16_383.9, 16_384.0, 20_000.0, 1e6, 2e6, 2e6 + 1.0,
        ];
        for (i, &t) in times.iter().enumerate() {
            q.push(ev(t, i as u64));
        }
        let drained = drain(&mut q);
        let got: Vec<f64> = drained.iter().map(|&(t, _)| t).collect();
        let mut want = times.to_vec();
        want.sort_by(f64::total_cmp);
        assert_eq!(got, want);
    }

    #[test]
    fn wheel_interleaves_push_and_pop() {
        // Popping then pushing events near the cursor (including into
        // the bucket currently being drained) keeps the order exact.
        let mut q = WheelQueue::with_bucket_width(10.0);
        q.push(ev(5.0, 0));
        q.push(ev(6.0, 1));
        assert_eq!(q.pop().map(|e| e.seq), Some(0));
        // Same bucket as the one just drained from.
        q.push(ev(5.5, 2));
        q.push(ev(7.0, 3));
        assert_eq!(
            drain(&mut q),
            vec![(5.5, 2), (6.0, 1), (7.0, 3)]
        );
    }

    /// Invariant test (simlint relies on it): a push whose time
    /// quantizes to a bucket the cursor already passed is clamped to
    /// the cursor bucket, and the (time, seq) pop order survives. The
    /// cursor parks ahead when the queue drains (it stays at the bucket
    /// of the last popped event), so a subsequent push at an earlier
    /// wall-clock time — legal only through float rounding at a bucket
    /// boundary, but exercised here directly — must not vanish behind
    /// the cursor or pop out of order.
    #[test]
    fn wheel_clamps_push_behind_parked_cursor() {
        let mut q = WheelQueue::with_bucket_width(10.0);
        // Park the cursor deep into the ring: pop an event at t=2005
        // (bucket 200), leaving `cur` = 200 with an empty queue.
        q.push(ev(2_005.0, 0));
        assert_eq!(q.pop().map(|e| e.seq), Some(0));
        assert!(q.is_empty());
        // These quantize to buckets 0 and 1 — far behind the cursor —
        // and must clamp into bucket 200 while keeping (time, seq)
        // order among themselves and against an in-window push.
        q.push(ev(15.0, 3));
        q.push(ev(5.0, 2));
        q.push(ev(2_010.0, 1));
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(Time::from_ps(5.0)));
        assert_eq!(
            drain(&mut q),
            vec![(5.0, 2), (15.0, 3), (2_010.0, 1)]
        );
    }

    /// Invariant test: the clamp also holds when the cursor was parked
    /// by a *bounded* pop (`pop_at_or_before` advancing to a non-empty
    /// bucket without consuming it) rather than by draining the queue.
    #[test]
    fn wheel_clamp_after_bounded_pop_keeps_order() {
        let mut q = WheelQueue::with_bucket_width(10.0);
        q.push(ev(500.0, 0));
        // The bounded pop repositions the cursor onto bucket 50 (the
        // earliest non-empty one) and returns nothing.
        assert!(q.pop_at_or_before(Time::from_ps(100.0)).is_none());
        // Bucket 3 quantization — behind the parked cursor.
        q.push(ev(30.0, 1));
        assert_eq!(
            drain(&mut q),
            vec![(30.0, 1), (500.0, 0)],
            "clamped event still pops before the later in-window event"
        );
    }

    #[test]
    fn pop_at_or_before_respects_horizon() {
        for q in [
            &mut BinaryHeapQueue::new() as &mut dyn EventQueue,
            &mut CalendarQueue::new(3.0),
            &mut WheelQueue::with_bucket_width(3.0),
        ] {
            q.push(ev(10.0, 0));
            q.push(ev(20.0, 1));
            assert!(q.pop_at_or_before(Time::from_ps(9.0)).is_none());
            assert_eq!(q.len(), 2, "bounded pop must not consume");
            assert_eq!(
                q.pop_at_or_before(Time::from_ps(10.0)).map(|e| e.seq),
                Some(0)
            );
            assert!(q.pop_at_or_before(Time::from_ps(15.0)).is_none());
            assert_eq!(
                q.pop_at_or_before(Time::from_ps(1e9)).map(|e| e.seq),
                Some(1)
            );
            assert!(q.is_empty());
        }
    }

    #[test]
    fn calendar_handles_same_bucket_collisions() {
        let mut q = CalendarQueue::new(1000.0);
        for seq in (0..50).rev() {
            q.push(ev(seq as f64, seq));
        }
        let drained = drain(&mut q);
        let times: Vec<f64> = drained.iter().map(|&(t, _)| t).collect();
        let mut sorted = times.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(times, sorted);
    }

    #[test]
    fn calendar_single_bucket_drains_in_loglinear_time() {
        // Regression guard for the old O(k^2) bucket pop (a linear
        // min-scan per pop, re-scanned after every swap_remove): 30_000
        // events in ONE bucket used to cost ~4.5e8 key comparisons to
        // drain; the lazily sorted bucket needs one O(k log k) sort.
        // The generous wall-clock bound only trips on a quadratic
        // regression, not on machine noise.
        const EVENTS: u64 = 30_000;
        let mut q = CalendarQueue::new(1e9);
        for seq in (0..EVENTS).rev() {
            q.push(ev(seq as f64, seq));
        }
        let started = std::time::Instant::now();
        let drained = drain(&mut q);
        assert_eq!(drained.len(), EVENTS as usize);
        assert!(
            drained.windows(2).all(|w| w[0] <= w[1]),
            "sorted drain order"
        );
        assert!(
            started.elapsed() < std::time::Duration::from_secs(1),
            "single-bucket drain took {:?} — quadratic pop is back",
            started.elapsed()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn calendar_rejects_bad_width() {
        let _ = CalendarQueue::new(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn wheel_rejects_bad_width() {
        let _ = WheelQueue::with_bucket_width(-1.0);
    }

    #[test]
    fn queues_agree_on_random_workload() {
        // Deterministic pseudo-random insert/pop interleaving across
        // all three implementations.
        let mut heap = BinaryHeapQueue::new();
        let mut cal = CalendarQueue::new(7.0);
        let mut wheel = WheelQueue::with_bucket_width(13.0);
        let mut state = 0x9e3779b97f4a7c15u64;

        let mut heap_out = Vec::new();
        let mut cal_out = Vec::new();
        let mut wheel_out = Vec::new();
        for seq in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let t = (state >> 40) as f64 / 16.0;
            let e = ev(t, seq);
            heap.push(e);
            cal.push(e);
            wheel.push(e);
            if state.is_multiple_of(3) {
                heap_out.push(heap.pop().map(|e| e.key()));
                cal_out.push(cal.pop().map(|e| e.key()));
                wheel_out.push(wheel.pop().map(|e| e.key()));
            }
        }
        while let Some(e) = heap.pop() {
            heap_out.push(Some(e.key()));
        }
        while let Some(e) = cal.pop() {
            cal_out.push(Some(e.key()));
        }
        while let Some(e) = wheel.pop() {
            wheel_out.push(Some(e.key()));
        }
        assert_eq!(heap_out, cal_out);
        assert_eq!(heap_out, wheel_out);
    }

    #[test]
    fn wheel_reuses_bucket_capacity() {
        // Steady-state pushes into the near window must not reallocate:
        // drain a bucket, push into it again, and the capacity is
        // retained (zero-allocation dispatch hot path).
        let mut q = WheelQueue::with_bucket_width(10.0);
        for i in 0..8 {
            q.push(ev(5.0, i));
        }
        while q.pop().is_some() {}
        let cap_before: usize = q.slots.iter().map(|b| b.events.capacity()).sum();
        assert!(cap_before >= 8, "drained buckets keep their capacity");
        for i in 0..8 {
            q.push(ev(5.0, 100 + i));
        }
        let cap_after: usize = q.slots.iter().map(|b| b.events.capacity()).sum();
        assert_eq!(cap_before, cap_after, "no reallocation on refill");
    }
}
