//! Error type for the simulation engine.

use std::error::Error;
use std::fmt;

use crate::signal::NetId;
use crate::Time;

/// Errors reported by the simulation engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A [`NetId`] did not belong to this simulator.
    UnknownNet(NetId),
    /// A component id did not belong to this simulator.
    UnknownComponent(usize),
    /// An event was scheduled before the current simulation time.
    ScheduleInPast {
        /// Current simulation time.
        now: Time,
        /// Requested (earlier) event time.
        requested: Time,
    },
    /// A delay was negative or non-finite.
    InvalidDelay(f64),
    /// The run step limit was exhausted before reaching the horizon.
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// A fault target named a net that does not exist in this
    /// simulator.
    UnknownNetName(String),
    /// A `FaultPlan` was malformed (invalid window, bad factor,
    /// stage index out of range, or supply faults handed to the
    /// engine instead of the device layer).
    InvalidFault(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownNet(net) => write!(f, "unknown net {net}"),
            SimError::UnknownComponent(id) => write!(f, "unknown component #{id}"),
            SimError::ScheduleInPast { now, requested } => {
                write!(f, "event scheduled in the past ({requested} < now {now})")
            }
            SimError::InvalidDelay(d) => {
                write!(f, "delay must be finite and non-negative, got {d}")
            }
            SimError::StepLimitExceeded { limit } => {
                write!(f, "step limit of {limit} events exceeded")
            }
            SimError::UnknownNetName(name) => {
                write!(f, "fault targets unknown net {name:?}")
            }
            SimError::InvalidFault(msg) => write!(f, "invalid fault plan: {msg}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let err = SimError::UnknownNet(NetId(3));
        assert_eq!(err.to_string(), "unknown net net#3");
        let err = SimError::InvalidDelay(-1.0);
        assert!(err.to_string().contains("-1"));
        let err = SimError::ScheduleInPast {
            now: Time::from_ps(10.0),
            requested: Time::from_ps(5.0),
        };
        assert!(err.to_string().contains("past"));
        let err = SimError::StepLimitExceeded { limit: 7 };
        assert!(err.to_string().contains('7'));
        let err = SimError::UnknownComponent(2);
        assert!(err.to_string().contains("#2"));
        let err = SimError::UnknownNetName("str99".to_owned());
        assert!(err.to_string().contains("str99"));
        let err = SimError::InvalidFault("bad window".to_owned());
        assert!(err.to_string().contains("bad window"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<SimError>();
    }
}
