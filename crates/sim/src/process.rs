//! Discrete-time stochastic processes for calibrated surrogate models.
//!
//! The surrogate source tier (see `strent-rings`) replaces per-event
//! simulation of a locked ring with a per-period stochastic model:
//! white thermal jitter plus a slowly wandering flicker component. The
//! flicker part is the classic first-order Gauss–Markov (AR(1))
//! process — the simplest process with an exponentially decaying
//! autocorrelation, which is exactly the lag-1 structure a calibration
//! run can fit reliably from a few hundred periods.
//!
//! Everything here draws from [`SimRng`], so a surrogate stream is as
//! reproducible as the event-driven simulation it stands in for.

use crate::rng::SimRng;

/// A stationary first-order autoregressive (Gauss–Markov) process:
///
/// ```text
/// x[k+1] = rho * x[k] + sqrt(1 - rho^2) * sigma * n[k],   n ~ N(0, 1)
/// ```
///
/// The drive is scaled so the *stationary* standard deviation is the
/// `sigma` handed to [`Ar1Process::new`], and the lag-`k`
/// autocorrelation is `rho^k`. With `rho = 0` the process degenerates
/// to white noise; with `sigma = 0` it is identically zero.
///
/// # Examples
///
/// ```
/// use strent_sim::{Ar1Process, RngTree};
///
/// let mut flicker = Ar1Process::new(0.9, 2.0);
/// let mut rng = RngTree::new(7).stream(0);
/// let x0 = flicker.step(&mut rng);
/// let x1 = flicker.step(&mut rng);
/// // Successive samples are strongly correlated at rho = 0.9.
/// assert!((x1 - 0.9 * x0).abs() < 4.0 * 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ar1Process {
    rho: f64,
    sigma: f64,
    drive_sigma: f64,
    state: f64,
}

impl Ar1Process {
    /// Creates the process at rest (`x[0] = 0`) with autocorrelation
    /// `rho` and stationary standard deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is outside `[0, 1)` or `sigma` is negative or
    /// non-finite — the parameters come from a calibration fit that is
    /// supposed to have clamped them already.
    #[must_use]
    pub fn new(rho: f64, sigma: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&rho),
            "rho must be in [0, 1), got {rho}"
        );
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be non-negative, got {sigma}"
        );
        Ar1Process {
            rho,
            sigma,
            drive_sigma: sigma * (1.0 - rho * rho).sqrt(),
            state: 0.0,
        }
    }

    /// The lag-1 autocorrelation coefficient.
    #[must_use]
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The stationary standard deviation.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The current process value (the last value [`step`](Self::step)
    /// returned, or 0 before the first step).
    #[must_use]
    pub fn state(&self) -> f64 {
        self.state
    }

    /// Advances the process one step and returns the new value.
    pub fn step(&mut self, rng: &mut SimRng) -> f64 {
        self.state = self.rho * self.state + rng.normal(0.0, self.drive_sigma);
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngTree;

    fn series(rho: f64, sigma: f64, seed: u64, n: usize) -> Vec<f64> {
        let mut p = Ar1Process::new(rho, sigma);
        let mut rng = RngTree::new(seed).stream(0);
        (0..n).map(|_| p.step(&mut rng)).collect()
    }

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    fn autocov(xs: &[f64], lag: usize) -> f64 {
        let m = mean(xs);
        xs.windows(lag + 1)
            .map(|w| (w[0] - m) * (w[lag] - m))
            .sum::<f64>()
            / (xs.len() - lag) as f64
    }

    #[test]
    fn stationary_variance_matches_sigma() {
        let xs = series(0.8, 3.0, 11, 200_000);
        let var = autocov(&xs, 0);
        assert!((var.sqrt() - 3.0).abs() < 0.05, "sigma {}", var.sqrt());
        assert!(mean(&xs).abs() < 0.05, "mean {}", mean(&xs));
    }

    #[test]
    fn lag_autocorrelation_decays_geometrically() {
        let xs = series(0.7, 1.0, 5, 200_000);
        let c0 = autocov(&xs, 0);
        for lag in 1..=3 {
            let r = autocov(&xs, lag) / c0;
            assert!(
                (r - 0.7f64.powi(lag as i32)).abs() < 0.02,
                "lag {lag}: {r}"
            );
        }
    }

    #[test]
    fn zero_rho_is_white_noise() {
        let xs = series(0.0, 2.0, 9, 100_000);
        let c0 = autocov(&xs, 0);
        let r1 = autocov(&xs, 1) / c0;
        assert!(r1.abs() < 0.02, "white noise has no lag-1 correlation: {r1}");
    }

    #[test]
    fn zero_sigma_is_identically_zero() {
        let xs = series(0.5, 0.0, 1, 100);
        assert!(xs.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn steps_are_deterministic_per_seed() {
        assert_eq!(series(0.6, 1.5, 42, 64), series(0.6, 1.5, 42, 64));
        assert_ne!(series(0.6, 1.5, 42, 64), series(0.6, 1.5, 43, 64));
    }

    #[test]
    fn accessors_report_parameters() {
        let p = Ar1Process::new(0.25, 4.0);
        assert_eq!(p.rho(), 0.25);
        assert_eq!(p.sigma(), 4.0);
        assert_eq!(p.state(), 0.0);
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn rho_one_is_rejected() {
        let _ = Ar1Process::new(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn negative_sigma_is_rejected() {
        let _ = Ar1Process::new(0.5, -1.0);
    }
}
