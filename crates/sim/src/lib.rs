//! # strent-sim — deterministic discrete-event simulation engine
//!
//! A small, deterministic discrete-event simulation kernel for gate-level
//! timing studies. It was built as the substrate for reproducing
//! *"Comparison of Self-Timed Ring and Inverter Ring Oscillators as Entropy
//! Sources in FPGAs"* (Cherkaoui et al., DATE 2012), but is independent of
//! that paper: it knows about **time**, **events**, **nets**, **components**
//! and **waveform traces** — nothing about rings.
//!
//! ## Unit convention
//!
//! All simulation time is expressed in **picoseconds**. Absolute instants
//! are the [`Time`] newtype; durations, delays and jitter standard
//! deviations are plain `f64` picoseconds (documented at each use site).
//!
//! ## Determinism
//!
//! Given the same master seed and the same sequence of API calls, a
//! simulation run is bit-for-bit reproducible: the event queue breaks time
//! ties by insertion sequence number, and all randomness flows from a
//! [`rng::RngTree`] keyed by stable component identifiers.
//!
//! ## Example
//!
//! The smallest oscillator — an inverter closed on itself:
//!
//! ```
//! use strent_sim::{Simulator, Component, Context, Event, Bit, NetId};
//!
//! /// An inverting delay stage closed on itself: schedules `n = !n`
//! /// `delay` picoseconds after every transition of `n`.
//! struct LoopedInverter { net: NetId, delay: f64 }
//!
//! impl Component for LoopedInverter {
//!     fn on_event(&mut self, event: &Event, ctx: &mut Context<'_>) {
//!         if let Event::NetChanged { net, value } = *event {
//!             if net == self.net {
//!                 ctx.schedule_net(self.net, !value, self.delay);
//!             }
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), strent_sim::SimError> {
//! let mut sim = Simulator::new(42);
//! let n = sim.add_net("osc");
//! let inv = sim.add_component(LoopedInverter { net: n, delay: 100.0 });
//! sim.listen(n, inv)?;
//! sim.watch(n)?;
//! // Kick the loop: raise `osc` at t = 0.
//! sim.inject(n, Bit::High, 0.0)?;
//! sim.run_until(2_000.0.into())?;
//! // Period = 2 * 100 ps -> rising edges at 0, 200, ..., 2000 ps.
//! let edges = sim.trace(n).expect("watched").rising_edges();
//! assert_eq!(edges.len(), 11);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod event;
pub mod fault;
pub mod lint;
pub mod process;
pub mod queue;
pub mod rng;
pub mod signal;
mod slab;
pub mod sweep;
pub mod time;
pub mod trace;
pub mod vcd;

pub use engine::{Component, ComponentId, Context, SimStats, Simulator, INLINE_FANOUT};
pub use error::SimError;
pub use event::{Event, EventId, TimerTag};
pub use fault::{FaultKind, FaultPlan, FaultSpec, FaultTarget};
pub use lint::{Diagnostic, LintCode, LintReport, Severity};
pub use process::Ar1Process;
pub use queue::{BinaryHeapQueue, CalendarQueue, EventQueue, ScheduledEvent, WheelQueue};
pub use rng::{Normal, RngTree, SimRng};
pub use signal::{Bit, Edge, NetId};
pub use sweep::{
    FailureKind, JobBudget, JobError, JobFailure, JobMeter, RetryPolicy, ShardStats,
    StallCause, SweepJob, SweepOutcome, SweepReport, SweepRunner, SweepStats,
};
pub use time::Time;
pub use trace::{Trace, TraceSet};
