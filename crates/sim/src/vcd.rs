//! Value-change-dump (VCD) export of recorded waveforms.
//!
//! Produces standard IEEE 1364 VCD files viewable in GTKWave and similar
//! tools. Times are emitted with a `1 fs` timescale so sub-picosecond
//! jitter remains visible.

use std::io::{self, Write};

use crate::engine::Simulator;
use crate::queue::EventQueue;
use crate::signal::{Bit, NetId};
use crate::trace::TraceSet;

/// Generates the short identifier code VCD uses for the `n`-th variable.
fn id_code(mut n: usize) -> String {
    // Printable ASCII 33..=126, base-94, like commercial dumpers.
    let mut code = String::new();
    loop {
        code.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    code
}

/// Writes a trace set as a VCD document.
///
/// `name_of` maps each watched net to its display name; the `scope`
/// becomes the VCD module name.
///
/// # Errors
///
/// Propagates I/O errors from the writer. A mutable reference to any
/// `Write` implementor can be passed (`&mut Vec<u8>`, `&mut File`, ...).
pub fn write_vcd<W: Write>(
    mut writer: W,
    traces: &TraceSet,
    scope: &str,
    mut name_of: impl FnMut(NetId) -> String,
) -> io::Result<()> {
    writeln!(writer, "$date reproduction run $end")?;
    writeln!(writer, "$version strent-sim $end")?;
    writeln!(writer, "$timescale 1 fs $end")?;
    writeln!(writer, "$scope module {scope} $end")?;
    let nets: Vec<NetId> = traces.iter().map(|(net, _)| net).collect();
    for (i, &net) in nets.iter().enumerate() {
        writeln!(
            writer,
            "$var wire 1 {} {} $end",
            id_code(i),
            name_of(net)
        )?;
    }
    writeln!(writer, "$upscope $end")?;
    writeln!(writer, "$enddefinitions $end")?;

    writeln!(writer, "$dumpvars")?;
    for (i, &net) in nets.iter().enumerate() {
        let initial = traces.get(net).map_or(Bit::Low, |t| t.initial());
        writeln!(writer, "{}{}", u8::from(initial), id_code(i))?;
    }
    writeln!(writer, "$end")?;

    // Merge all transitions into one global time-ordered stream.
    let mut cursor: Vec<usize> = vec![0; nets.len()];
    loop {
        let mut best: Option<(u64, usize)> = None;
        for (i, &net) in nets.iter().enumerate() {
            let trace = traces.get(net).expect("net came from the trace set");
            if let Some(&(t, _)) = trace.transitions().get(cursor[i]) {
                let fs = (t.as_ps() * 1e3).round().max(0.0) as u64;
                if best.is_none_or(|(bt, _)| fs < bt) {
                    best = Some((fs, i));
                }
            }
        }
        let Some((fs, i)) = best else { break };
        let net = nets[i];
        let trace = traces.get(net).expect("net came from the trace set");
        let (_, value) = trace.transitions()[cursor[i]];
        cursor[i] += 1;
        writeln!(writer, "#{fs}")?;
        writeln!(writer, "{}{}", u8::from(value), id_code(i))?;
    }
    Ok(())
}

impl<Q: EventQueue> Simulator<Q> {
    /// Dumps all watched traces of this simulator as a VCD document.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_vcd<W: Write>(&self, writer: W, scope: &str) -> io::Result<()> {
        write_vcd(writer, self.traces(), scope, |net| {
            self.net_name(net).unwrap_or("?").to_owned()
        })
    }
}

/// A parsed single-bit VCD document (the subset [`write_vcd`] emits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcdDocument {
    /// `(identifier code, display name)` in declaration order.
    pub variables: Vec<(String, String)>,
    /// Initial level per identifier code, from `$dumpvars`.
    pub initial: Vec<(String, Bit)>,
    /// `(time in femtoseconds, identifier code, new level)` in stream
    /// order.
    pub changes: Vec<(u64, String, Bit)>,
}

/// Errors reported by [`parse_vcd`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseVcdError {
    /// A `$var` declaration was malformed.
    BadVariable(String),
    /// A `#` timestamp was not a number.
    BadTimestamp(String),
    /// A value-change line was malformed.
    BadChange(String),
    /// A change referenced an undeclared identifier code.
    UnknownCode(String),
}

impl std::fmt::Display for ParseVcdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseVcdError::BadVariable(line) => write!(f, "malformed $var line: {line}"),
            ParseVcdError::BadTimestamp(line) => write!(f, "malformed timestamp: {line}"),
            ParseVcdError::BadChange(line) => write!(f, "malformed value change: {line}"),
            ParseVcdError::UnknownCode(code) => write!(f, "undeclared identifier: {code}"),
        }
    }
}

impl std::error::Error for ParseVcdError {}

/// Parses the single-bit VCD subset produced by [`write_vcd`] — used for
/// round-trip verification of exported waveforms.
///
/// # Errors
///
/// Returns a [`ParseVcdError`] describing the first malformed line.
pub fn parse_vcd(text: &str) -> Result<VcdDocument, ParseVcdError> {
    let mut variables: Vec<(String, String)> = Vec::new();
    let mut initial = Vec::new();
    let mut changes = Vec::new();
    let mut in_dumpvars = false;
    let mut now_fs: u64 = 0;

    let parse_change = |line: &str| -> Result<(Bit, String), ParseVcdError> {
        let mut chars = line.chars();
        let value = match chars.next() {
            Some('0') => Bit::Low,
            Some('1') => Bit::High,
            _ => return Err(ParseVcdError::BadChange(line.to_owned())),
        };
        let code: String = chars.collect();
        if code.is_empty() {
            return Err(ParseVcdError::BadChange(line.to_owned()));
        }
        Ok((value, code))
    };

    for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
        if let Some(decl) = line.strip_prefix("$var ") {
            // "wire 1 <code> <name> $end"
            let fields: Vec<&str> = decl.split_whitespace().collect();
            if fields.len() != 5 || fields[0] != "wire" || fields[4] != "$end" {
                return Err(ParseVcdError::BadVariable(line.to_owned()));
            }
            variables.push((fields[2].to_owned(), fields[3].to_owned()));
        } else if line == "$dumpvars" {
            in_dumpvars = true;
        } else if line == "$end" && in_dumpvars {
            in_dumpvars = false;
        } else if let Some(ts) = line.strip_prefix('#') {
            now_fs = ts
                .parse()
                .map_err(|_| ParseVcdError::BadTimestamp(line.to_owned()))?;
        } else if line.starts_with('0') || line.starts_with('1') {
            let (value, code) = parse_change(line)?;
            if !variables.iter().any(|(c, _)| *c == code) {
                return Err(ParseVcdError::UnknownCode(code));
            }
            if in_dumpvars {
                initial.push((code, value));
            } else {
                changes.push((now_fs, code, value));
            }
        }
        // All other directives ($date, $timescale, $scope...) are
        // structural commentary for this subset.
    }
    Ok(VcdDocument {
        variables,
        initial,
        changes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSet;
    use crate::Time;

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..500 {
            let code = id_code(n);
            assert!(code.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(code));
        }
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(94), "!!");
    }

    #[test]
    fn vcd_document_structure() {
        let mut traces = TraceSet::new();
        let a = NetId(0);
        let b = NetId(1);
        traces.watch(a, Bit::Low);
        traces.watch(b, Bit::High);
        traces.record(a, Time::from_ps(1.5), Bit::High);
        traces.record(b, Time::from_ps(2.0), Bit::Low);
        traces.record(a, Time::from_ps(3.0), Bit::Low);

        let mut out = Vec::new();
        write_vcd(&mut out, &traces, "top", |net| format!("sig{}", net.index()))
            .expect("write to Vec cannot fail");
        let text = String::from_utf8(out).expect("vcd is ascii");

        assert!(text.contains("$timescale 1 fs $end"));
        assert!(text.contains("$var wire 1 ! sig0 $end"));
        assert!(text.contains("$var wire 1 \" sig1 $end"));
        assert!(text.contains("$dumpvars"));
        // 1.5 ps -> 1500 fs, ordered before 2000 and 3000.
        let p1500 = text.find("#1500").expect("first change present");
        let p2000 = text.find("#2000").expect("second change present");
        let p3000 = text.find("#3000").expect("third change present");
        assert!(p1500 < p2000 && p2000 < p3000);
    }

    #[test]
    fn round_trip_preserves_every_transition() {
        let mut traces = TraceSet::new();
        let a = NetId(0);
        let b = NetId(1);
        traces.watch(a, Bit::High);
        traces.watch(b, Bit::Low);
        let script = [
            (a, 1.5, Bit::Low),
            (b, 2.0, Bit::High),
            (a, 3.25, Bit::High),
            (b, 3.25, Bit::Low),
            (a, 10.0, Bit::Low),
        ];
        for &(net, t, v) in &script {
            traces.record(net, Time::from_ps(t), v);
        }
        let mut out = Vec::new();
        write_vcd(&mut out, &traces, "rt", |net| format!("n{}", net.index()))
            .expect("write to Vec");
        let doc = parse_vcd(&String::from_utf8(out).expect("ascii")).expect("parses");

        assert_eq!(doc.variables.len(), 2);
        assert_eq!(doc.variables[0].1, "n0");
        assert_eq!(doc.initial.len(), 2);
        assert_eq!(doc.initial[0].1, Bit::High);
        assert_eq!(doc.changes.len(), script.len());
        // Every change matches, with ps -> fs timestamps.
        let code_of = |net: NetId| doc.variables[net.index()].0.clone();
        for (change, &(net, t, v)) in doc.changes.iter().zip(&script) {
            assert_eq!(change.0, (t * 1000.0).round() as u64);
            assert_eq!(change.1, code_of(net));
            assert_eq!(change.2, v);
        }
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(matches!(
            parse_vcd("$var wire 1 ! $end"),
            Err(ParseVcdError::BadVariable(_))
        ));
        assert!(matches!(
            parse_vcd("#xyz"),
            Err(ParseVcdError::BadTimestamp(_))
        ));
        assert!(matches!(
            parse_vcd("$var wire 1 ! sig $end\n#5\n1\""),
            Err(ParseVcdError::UnknownCode(_))
        ));
        assert!(matches!(
            parse_vcd("$var wire 1 ! sig $end\n#5\n1"),
            Err(ParseVcdError::BadChange(_))
        ));
        // Error messages are informative.
        let err = parse_vcd("#bad").expect_err("must fail");
        assert!(err.to_string().contains("timestamp"));
    }

    #[test]
    fn simulator_convenience_dump() {
        let mut sim = Simulator::new(0);
        let n = sim.add_net("osc");
        sim.watch(n).expect("net exists");
        sim.inject(n, Bit::High, 10.0).expect("valid");
        sim.run_until(Time::from_ps(20.0)).expect("no limit");
        let mut out = Vec::new();
        sim.write_vcd(&mut out, "dut").expect("write to Vec");
        let text = String::from_utf8(out).expect("ascii");
        assert!(text.contains("$scope module dut $end"));
        assert!(text.contains("osc"));
        assert!(text.contains("#10000"));
    }
}
