//! Deterministic fault injection for live simulations.
//!
//! A [`FaultPlan`] is a seed-driven schedule of physical faults —
//! stuck-at clamps on named nets, transient glitch pulses, per-stage
//! delay drift (aging) and supply-droop windows — that a caller builds
//! up front and arms on a [`Simulator`] before running it. Arming
//! translates the plan into ordinary queue events (a crate-private
//! [`Occurrence`] variant), so injection rides the same `(time, seq)`
//! ordering as every other event and the run stays bit-reproducible
//! under a fixed seed.
//!
//! The hot path pays nothing when no plan is armed: the engine holds an
//! `Option<Box<FaultRuntime>>` that `drive_net` checks with a single
//! branch, and the per-component drift table handed to [`Context`] is
//! an empty slice.
//!
//! Supply-droop specs are *not* applied by the engine — voltage lives
//! in the device layer (`strent-device::Supply`), so ring-level runners
//! split them out with [`FaultPlan::supply_faults`] and rebuild the
//! board before construction. [`Simulator::arm_faults`] rejects plans
//! that still contain them.
//!
//! See `docs/robustness.md` for the full fault taxonomy.
//!
//! [`Simulator`]: crate::Simulator
//! [`Simulator::arm_faults`]: crate::Simulator::arm_faults
//! [`Context`]: crate::Context
//! [`Occurrence`]: crate::event::Occurrence

use crate::error::SimError;
use crate::rng::RngTree;
use crate::signal::Bit;

/// What a single fault does once it triggers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultKind {
    /// Clamp the target net to `value` from the fault time until
    /// `until_ps` (absolute). Drives attempted while the clamp holds
    /// are blocked but remembered; when the clamp releases, the last
    /// blocked level is re-driven so a stalled ring wakes up again.
    StuckAt {
        /// The forced level.
        value: Bit,
        /// Absolute release time, ps.
        until_ps: f64,
    },
    /// Force the target net to `value` for `width_ps`, then restore the
    /// pre-glitch level (or the last blocked drive, if the ring fired
    /// into the glitch window).
    Glitch {
        /// The forced level.
        value: Bit,
        /// Pulse width, ps.
        width_ps: f64,
    },
    /// Multiply every delay the target stage schedules by a factor that
    /// ramps linearly from 1 at the fault time to `factor` over
    /// `ramp_ps` — the aging model.
    DelayDrift {
        /// Final delay multiplier (> 0).
        factor: f64,
        /// Ramp duration, ps (0 applies the full factor instantly).
        ramp_ps: f64,
    },
    /// Drop the supply from its DC level by `delta_v` volts until
    /// `until_ps` (absolute). Applied at the device layer — see the
    /// module docs.
    SupplyDroop {
        /// Voltage drop, V (> 0).
        delta_v: f64,
        /// Absolute recovery time, ps.
        until_ps: f64,
    },
}

/// What a fault acts on.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultTarget {
    /// A net, by its registered name (e.g. `"str3"`, `"iro0"`).
    Net(String),
    /// A stage, by position in the handle's component list.
    Stage(usize),
    /// The board supply (only meaningful for [`FaultKind::SupplyDroop`]).
    Supply,
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// What the fault acts on.
    pub target: FaultTarget,
    /// Absolute onset time, ps.
    pub at_ps: f64,
    /// What happens at the onset.
    pub kind: FaultKind,
}

/// A deterministic, seed-driven schedule of faults.
///
/// Build with the `with_*` constructors, then hand to
/// [`Simulator::arm_faults`](crate::Simulator::arm_faults) (net/stage
/// faults) and the device layer ([`FaultPlan::supply_faults`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<FaultSpec>,
}

/// Validates a fault onset/extent pair.
fn check_window(what: &str, at_ps: f64, end_ps: f64) -> Result<(), SimError> {
    if !at_ps.is_finite() || at_ps < 0.0 {
        return Err(SimError::InvalidFault(format!(
            "{what}: onset must be finite and non-negative, got {at_ps}"
        )));
    }
    if !end_ps.is_finite() || end_ps <= at_ps {
        return Err(SimError::InvalidFault(format!(
            "{what}: window end {end_ps} must lie after onset {at_ps}"
        )));
    }
    Ok(())
}

impl FaultPlan {
    /// An empty plan whose seed drives the burst-spacing dither.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// The scheduled specs, in insertion order.
    #[must_use]
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// The plan seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `true` if no fault is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Schedules a stuck-at clamp on the net named `net` over
    /// `[at_ps, until_ps)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFault`] for a non-finite/negative
    /// onset or an empty window.
    pub fn with_stuck_at(
        mut self,
        net: impl Into<String>,
        value: Bit,
        at_ps: f64,
        until_ps: f64,
    ) -> Result<Self, SimError> {
        check_window("stuck-at", at_ps, until_ps)?;
        self.specs.push(FaultSpec {
            target: FaultTarget::Net(net.into()),
            at_ps,
            kind: FaultKind::StuckAt { value, until_ps },
        });
        Ok(self)
    }

    /// Schedules a single glitch pulse on the net named `net`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFault`] for a non-finite/negative
    /// onset or a non-positive width.
    pub fn with_glitch(
        mut self,
        net: impl Into<String>,
        value: Bit,
        at_ps: f64,
        width_ps: f64,
    ) -> Result<Self, SimError> {
        if !width_ps.is_finite() || width_ps <= 0.0 {
            return Err(SimError::InvalidFault(format!(
                "glitch: width must be positive, got {width_ps}"
            )));
        }
        check_window("glitch", at_ps, at_ps + width_ps)?;
        self.specs.push(FaultSpec {
            target: FaultTarget::Net(net.into()),
            at_ps,
            kind: FaultKind::Glitch { value, width_ps },
        });
        Ok(self)
    }

    /// Schedules a burst of `count` glitch pulses with nominal spacing
    /// `spacing_ps`, each start dithered by up to ±10 % of the spacing
    /// from the plan seed — the "EM injection" style disturbance. The
    /// dither is a pure function of `(seed, specs.len(), pulse index)`,
    /// so equal plans expand to equal schedules.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFault`] for invalid geometry
    /// (`count == 0`, non-positive width/spacing, or pulses that would
    /// overlap: `width_ps` must stay below 80 % of `spacing_ps`).
    pub fn with_glitch_burst(
        mut self,
        net: impl Into<String>,
        value: Bit,
        at_ps: f64,
        count: usize,
        spacing_ps: f64,
        width_ps: f64,
    ) -> Result<Self, SimError> {
        if count == 0 {
            return Err(SimError::InvalidFault(
                "glitch burst: count must be at least 1".to_owned(),
            ));
        }
        if !spacing_ps.is_finite() || spacing_ps <= 0.0 {
            return Err(SimError::InvalidFault(format!(
                "glitch burst: spacing must be positive, got {spacing_ps}"
            )));
        }
        if !width_ps.is_finite() || width_ps <= 0.0 || width_ps > 0.8 * spacing_ps {
            return Err(SimError::InvalidFault(format!(
                "glitch burst: width {width_ps} must be positive and below 80% of spacing {spacing_ps}"
            )));
        }
        check_window("glitch burst", at_ps, at_ps + width_ps)?;
        let net = net.into();
        // The dither stream is keyed on the spec index the burst starts
        // at, so appending bursts in a different order produces
        // different (but still deterministic) schedules.
        let mut rng = RngTree::new(self.seed).stream(self.specs.len() as u64);
        for pulse in 0..count {
            // ±10 % of the spacing keeps consecutive pulses disjoint
            // given the 80 % width bound above.
            let dither = rng.uniform_in(-0.1, 0.1) * spacing_ps;
            let start = if pulse == 0 {
                at_ps
            } else {
                at_ps + pulse as f64 * spacing_ps + dither
            };
            self.specs.push(FaultSpec {
                target: FaultTarget::Net(net.clone()),
                at_ps: start,
                kind: FaultKind::Glitch { value, width_ps },
            });
        }
        Ok(self)
    }

    /// Schedules delay drift (aging) on stage `stage`: delays it
    /// schedules ramp to `factor`× over `ramp_ps` starting at `at_ps`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFault`] for a non-positive factor or
    /// invalid times.
    pub fn with_delay_drift(
        mut self,
        stage: usize,
        at_ps: f64,
        factor: f64,
        ramp_ps: f64,
    ) -> Result<Self, SimError> {
        if !at_ps.is_finite() || at_ps < 0.0 {
            return Err(SimError::InvalidFault(format!(
                "delay drift: onset must be finite and non-negative, got {at_ps}"
            )));
        }
        if !factor.is_finite() || factor <= 0.0 {
            return Err(SimError::InvalidFault(format!(
                "delay drift: factor must be positive, got {factor}"
            )));
        }
        if !ramp_ps.is_finite() || ramp_ps < 0.0 {
            return Err(SimError::InvalidFault(format!(
                "delay drift: ramp must be finite and non-negative, got {ramp_ps}"
            )));
        }
        self.specs.push(FaultSpec {
            target: FaultTarget::Stage(stage),
            at_ps,
            kind: FaultKind::DelayDrift { factor, ramp_ps },
        });
        Ok(self)
    }

    /// Schedules a supply droop of `delta_v` volts over
    /// `[at_ps, until_ps)`. Consumed by the device layer, not the
    /// engine — see the module docs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFault`] for a non-positive drop or an
    /// empty window.
    pub fn with_supply_droop(
        mut self,
        at_ps: f64,
        delta_v: f64,
        until_ps: f64,
    ) -> Result<Self, SimError> {
        if !delta_v.is_finite() || delta_v <= 0.0 {
            return Err(SimError::InvalidFault(format!(
                "supply droop: delta_v must be positive, got {delta_v}"
            )));
        }
        check_window("supply droop", at_ps, until_ps)?;
        self.specs.push(FaultSpec {
            target: FaultTarget::Supply,
            at_ps,
            kind: FaultKind::SupplyDroop { delta_v, until_ps },
        });
        Ok(self)
    }

    /// The supply-droop specs — the part of the plan the device layer
    /// applies (the engine rejects them).
    #[must_use]
    pub fn supply_faults(&self) -> Vec<&FaultSpec> {
        self.specs
            .iter()
            .filter(|s| s.target == FaultTarget::Supply)
            .collect()
    }

    /// A copy of the plan without its supply-droop specs — what
    /// [`Simulator::arm_faults`](crate::Simulator::arm_faults) accepts
    /// after the device layer consumed [`FaultPlan::supply_faults`].
    #[must_use]
    pub fn without_supply_faults(&self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            specs: self
                .specs
                .iter()
                .filter(|s| s.target != FaultTarget::Supply)
                .cloned()
                .collect(),
        }
    }

    /// The earliest fault onset, ps — the healthy/degraded boundary
    /// monitors key on. `None` for an empty plan.
    #[must_use]
    pub fn first_onset_ps(&self) -> Option<f64> {
        self.specs
            .iter()
            .map(|s| s.at_ps)
            .min_by(|a, b| a.partial_cmp(b).expect("onsets are finite"))
    }
}

/// A forcing window (stuck-at or glitch) resolved onto a net id.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ForceState {
    /// The clamped net (index into the simulator's net table).
    pub(crate) net: u32,
    /// The forced level while active.
    pub(crate) value: Bit,
    /// Whether the window is currently holding the net.
    pub(crate) active: bool,
    /// Net level right before the window opened (glitch restore value).
    pub(crate) prev: Bit,
    /// Last drive blocked while the window held (ring wake-up value).
    pub(crate) blocked: Option<Bit>,
}

/// A delay-drift (aging) record resolved onto a component id.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DriftState {
    /// The aged component.
    pub(crate) component: u32,
    /// Final delay multiplier.
    pub(crate) factor: f64,
    /// Onset, ps.
    pub(crate) from_ps: f64,
    /// Ramp duration, ps.
    pub(crate) ramp_ps: f64,
}

impl DriftState {
    /// The delay multiplier at absolute time `now_ps`: 1 before the
    /// onset, `factor` after the ramp, linear in between.
    #[inline]
    pub(crate) fn scale_at(&self, now_ps: f64) -> f64 {
        if now_ps < self.from_ps {
            return 1.0;
        }
        if self.ramp_ps <= 0.0 {
            return self.factor;
        }
        let progress = ((now_ps - self.from_ps) / self.ramp_ps).min(1.0);
        1.0 + (self.factor - 1.0) * progress
    }
}

/// What a scheduled fault-edge event does when it fires. The `usize`
/// indexes [`FaultRuntime::forces`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum FaultAction {
    /// Open forcing window `i`: remember the current level, clamp.
    ForceStart(usize),
    /// Close forcing window `i`: release, re-drive the wake-up level.
    ForceEnd(usize),
}

/// The armed form of a [`FaultPlan`]: forcing windows and drift records
/// resolved onto net/component ids, plus the action table the
/// fault-edge queue events index into.
///
/// Boxed behind an `Option` on the simulator so the unarmed hot path
/// pays one branch and no storage.
#[derive(Debug, Default)]
pub(crate) struct FaultRuntime {
    pub(crate) forces: Vec<ForceState>,
    pub(crate) drifts: Vec<DriftState>,
    pub(crate) actions: Vec<FaultAction>,
}

impl FaultRuntime {
    /// Applies active clamps to an organic drive of `net`: returns the
    /// (possibly overridden) value to apply, remembering the blocked
    /// level so the closing edge can re-drive it.
    #[inline]
    pub(crate) fn filter(&mut self, net: u32, value: Bit) -> Bit {
        for force in &mut self.forces {
            if force.active && force.net == net {
                if value != force.value {
                    force.blocked = Some(value);
                }
                return force.value;
            }
        }
        value
    }

    /// Per-component drift table view handed to `Context` (empty slice
    /// when unarmed — the caller maps `None` to `&[]`).
    #[inline]
    pub(crate) fn drift_table(&self) -> &[DriftState] {
        &self.drifts
    }
}

/// Combined delay multiplier for `component` at `now_ps` over a drift
/// table (the empty-table case is the unarmed hot path).
#[inline]
pub(crate) fn drift_scale(drifts: &[DriftState], component: usize, now_ps: f64) -> f64 {
    let mut scale = 1.0;
    for drift in drifts {
        if drift.component as usize == component {
            scale *= drift.scale_at(now_ps);
        }
    }
    scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Component, Context, Event, NetId, SimError, Simulator, Time};

    /// An inverting delay stage closed on itself — the smallest
    /// oscillator, used to observe clamp/release and aging behavior.
    struct LoopedInverter {
        net: NetId,
        delay: f64,
    }

    impl Component for LoopedInverter {
        fn on_event(&mut self, event: &Event, ctx: &mut Context<'_>) {
            if let Event::NetChanged { net, value } = *event {
                if net == self.net {
                    ctx.schedule_net(self.net, !value, self.delay);
                }
            }
        }
    }

    /// 100 ps looped inverter on a watched net named "osc", kicked at
    /// t = 0: edges at 0, 100, 200, ...
    fn oscillator() -> (Simulator, NetId, crate::ComponentId) {
        let mut sim = Simulator::new(7);
        let net = sim.add_net("osc");
        let inv = sim.add_component(LoopedInverter { net, delay: 100.0 });
        sim.listen(net, inv).expect("net exists");
        sim.watch(net).expect("net exists");
        sim.inject(net, Bit::High, 0.0).expect("valid");
        (sim, net, inv)
    }

    #[test]
    fn stuck_at_clamps_then_releases_and_ring_resumes() {
        let (mut sim, net, _stage) = oscillator();
        let plan = FaultPlan::new(1)
            .with_stuck_at("osc", Bit::High, 1_000.0, 2_000.0)
            .expect("valid");
        sim.arm_faults(&plan, &[]).expect("arms");
        sim.run_until(Time::from_ps(3_000.0)).expect("no limit");
        let trace = sim.trace(net).expect("watched");
        // Clamped flat inside the window...
        assert_eq!(trace.value_at(Time::from_ps(1_050.0)), Bit::High);
        assert_eq!(trace.value_at(Time::from_ps(1_550.0)), Bit::High);
        assert_eq!(trace.value_at(Time::from_ps(1_950.0)), Bit::High);
        // ...released at 2000 with the blocked drive (Low), after which
        // the loop oscillates again with its 200 ps period.
        assert_eq!(trace.value_at(Time::from_ps(2_050.0)), Bit::Low);
        assert_eq!(trace.value_at(Time::from_ps(2_150.0)), Bit::High);
        assert_eq!(trace.value_at(Time::from_ps(2_250.0)), Bit::Low);
        // No transitions recorded strictly inside the clamp window.
        let inside = trace
            .transitions()
            .iter()
            .filter(|(t, _)| t.as_ps() > 1_000.0 && t.as_ps() < 2_000.0)
            .count();
        assert_eq!(inside, 0, "clamp window must be flat");
    }

    #[test]
    fn glitch_forces_and_restores_a_quiet_net() {
        let mut sim = Simulator::new(7);
        let net = sim.add_net("quiet");
        sim.watch(net).expect("net exists");
        let plan = FaultPlan::new(1)
            .with_glitch("quiet", Bit::High, 500.0, 100.0)
            .expect("valid");
        sim.arm_faults(&plan, &[]).expect("arms");
        sim.run_until(Time::from_ps(1_000.0)).expect("no limit");
        let trace = sim.trace(net).expect("watched");
        assert_eq!(trace.value_at(Time::from_ps(499.0)), Bit::Low);
        assert_eq!(trace.value_at(Time::from_ps(550.0)), Bit::High);
        // Restored to the pre-glitch level after the pulse.
        assert_eq!(trace.value_at(Time::from_ps(700.0)), Bit::Low);
        assert_eq!(trace.transitions().len(), 2);
    }

    #[test]
    fn delay_drift_stretches_the_period() {
        let (mut sim, net, stage) = oscillator();
        let plan = FaultPlan::new(1)
            .with_delay_drift(0, 0.0, 2.0, 0.0)
            .expect("valid");
        sim.arm_faults(&plan, &[stage]).expect("arms");
        sim.run_until(Time::from_ps(2_000.0)).expect("no limit");
        let trace = sim.trace(net).expect("watched");
        // Delays double instantly: edges at 0, 200, 400, ... instead
        // of every 100 ps.
        let edges = trace.transitions();
        assert!(edges.len() >= 5);
        for pair in edges.windows(2) {
            let gap = pair[1].0.as_ps() - pair[0].0.as_ps();
            assert!((gap - 200.0).abs() < 1e-9, "spacing {gap}");
        }
    }

    #[test]
    fn empty_plan_is_bit_identical_to_unarmed() {
        let run = |arm: bool| {
            let (mut sim, net, _) = oscillator();
            if arm {
                sim.arm_faults(&FaultPlan::new(9), &[]).expect("arms");
            }
            sim.run_until(Time::from_ps(5_000.0)).expect("no limit");
            sim.trace(net).expect("watched").transitions().to_vec()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn arm_rejects_bad_plans() {
        let (mut sim, _, _) = oscillator();
        // Unknown net name.
        let plan = FaultPlan::new(1)
            .with_stuck_at("nope", Bit::High, 0.0, 10.0)
            .expect("valid");
        assert!(matches!(
            sim.arm_faults(&plan, &[]),
            Err(SimError::UnknownNetName(_))
        ));
        // Supply specs belong to the device layer.
        let plan = FaultPlan::new(1)
            .with_supply_droop(0.0, 0.2, 10.0)
            .expect("valid");
        assert!(matches!(
            sim.arm_faults(&plan, &[]),
            Err(SimError::InvalidFault(_))
        ));
        assert!(sim
            .arm_faults(&plan.without_supply_faults(), &[])
            .is_ok());
        // Stage index out of range.
        let plan = FaultPlan::new(1)
            .with_delay_drift(5, 0.0, 2.0, 0.0)
            .expect("valid");
        assert!(matches!(
            sim.arm_faults(&plan, &[]),
            Err(SimError::InvalidFault(_))
        ));
        // Onset before current time.
        sim.run_until(Time::from_ps(100.0)).expect("no limit");
        let plan = FaultPlan::new(1)
            .with_glitch("osc", Bit::High, 50.0, 10.0)
            .expect("valid");
        assert!(matches!(
            sim.arm_faults(&plan, &[]),
            Err(SimError::InvalidFault(_))
        ));
    }

    #[test]
    fn builders_validate() {
        assert!(FaultPlan::new(1)
            .with_stuck_at("n", Bit::High, 10.0, 5.0)
            .is_err());
        assert!(FaultPlan::new(1)
            .with_stuck_at("n", Bit::High, -1.0, 5.0)
            .is_err());
        assert!(FaultPlan::new(1).with_glitch("n", Bit::High, 0.0, 0.0).is_err());
        assert!(FaultPlan::new(1)
            .with_glitch_burst("n", Bit::High, 0.0, 0, 100.0, 10.0)
            .is_err());
        assert!(FaultPlan::new(1)
            .with_glitch_burst("n", Bit::High, 0.0, 3, 100.0, 90.0)
            .is_err());
        assert!(FaultPlan::new(1).with_delay_drift(0, 0.0, 0.0, 10.0).is_err());
        assert!(FaultPlan::new(1).with_delay_drift(0, 0.0, 2.0, -1.0).is_err());
        assert!(FaultPlan::new(1).with_supply_droop(0.0, -0.1, 10.0).is_err());
        let plan = FaultPlan::new(1)
            .with_stuck_at("n", Bit::High, 0.0, 5.0)
            .expect("valid")
            .with_supply_droop(1.0, 0.2, 9.0)
            .expect("valid");
        assert_eq!(plan.specs().len(), 2);
        assert_eq!(plan.supply_faults().len(), 1);
        assert_eq!(plan.without_supply_faults().specs().len(), 1);
        assert_eq!(plan.first_onset_ps(), Some(0.0));
    }

    #[test]
    fn burst_expansion_is_deterministic_and_disjoint() {
        let expand = || {
            FaultPlan::new(42)
                .with_glitch_burst("n", Bit::High, 1000.0, 8, 200.0, 50.0)
                .expect("valid")
        };
        let a = expand();
        let b = expand();
        assert_eq!(a, b, "equal seeds must expand identically");
        assert_eq!(a.specs().len(), 8);
        // Pulses stay ordered and non-overlapping: dither is ±10 % of
        // spacing and width is bounded by 80 % of spacing.
        let mut last_end = f64::MIN;
        for spec in a.specs() {
            let FaultKind::Glitch { width_ps, .. } = spec.kind else {
                panic!("burst expands to glitches");
            };
            assert!(spec.at_ps >= last_end, "pulse overlap at {}", spec.at_ps);
            last_end = spec.at_ps + width_ps;
        }
        // A different seed dithers differently.
        let c = FaultPlan::new(43)
            .with_glitch_burst("n", Bit::High, 1000.0, 8, 200.0, 50.0)
            .expect("valid");
        assert_ne!(a, c);
    }

    #[test]
    fn drift_scale_ramps_linearly() {
        let drift = DriftState {
            component: 0,
            factor: 3.0,
            from_ps: 100.0,
            ramp_ps: 200.0,
        };
        assert_eq!(drift.scale_at(50.0), 1.0);
        assert_eq!(drift.scale_at(100.0), 1.0);
        assert!((drift.scale_at(200.0) - 2.0).abs() < 1e-12);
        assert_eq!(drift.scale_at(300.0), 3.0);
        assert_eq!(drift.scale_at(1000.0), 3.0);
        let instant = DriftState {
            ramp_ps: 0.0,
            ..drift
        };
        assert_eq!(instant.scale_at(100.0001), 3.0);
    }

    #[test]
    fn filter_blocks_and_remembers() {
        let mut rt = FaultRuntime {
            forces: vec![ForceState {
                net: 3,
                value: Bit::High,
                active: true,
                prev: Bit::Low,
                blocked: None,
            }],
            drifts: Vec::new(),
            actions: Vec::new(),
        };
        // Other nets pass through.
        assert_eq!(rt.filter(2, Bit::Low), Bit::Low);
        // The clamped net is overridden and the blocked level kept.
        assert_eq!(rt.filter(3, Bit::Low), Bit::High);
        assert_eq!(rt.forces[0].blocked, Some(Bit::Low));
        // Driving the forced value doesn't clobber the wake-up level.
        assert_eq!(rt.filter(3, Bit::High), Bit::High);
        assert_eq!(rt.forces[0].blocked, Some(Bit::Low));
        // Inactive windows pass everything through.
        rt.forces[0].active = false;
        assert_eq!(rt.filter(3, Bit::Low), Bit::Low);
    }
}
