//! Deterministic random-number plumbing.
//!
//! All randomness in a simulation flows from a single master seed through a
//! [`RngTree`]: each component derives an independent, stable stream keyed
//! by its identifier. This keeps runs reproducible *and* insensitive to the
//! order in which unrelated components draw numbers.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// SplitMix64 step — used to derive stream seeds from `(master, key)`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Factory for independent, reproducible random streams.
///
/// # Examples
///
/// ```
/// use strent_sim::RngTree;
///
/// let tree = RngTree::new(1234);
/// let mut a = tree.stream(0);
/// let mut b = tree.stream(1);
/// // Streams with different keys are independent...
/// assert_ne!(a.next_u64(), b.next_u64());
/// // ...and the same key always yields the same stream.
/// assert_eq!(tree.stream(0).next_u64(), tree.stream(0).next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngTree {
    master: u64,
}

impl RngTree {
    /// Creates a tree rooted at the given master seed.
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        RngTree {
            master: master_seed,
        }
    }

    /// The master seed this tree was created with.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Derives the independent stream for `key`.
    #[must_use]
    pub fn stream(&self, key: u64) -> SimRng {
        let seed = splitmix64(self.master ^ splitmix64(key));
        SimRng::seed_from_u64(seed)
    }

    /// Derives a sub-tree, for components that themselves own many
    /// stochastic elements (e.g. a board deriving per-LUT streams).
    #[must_use]
    pub fn subtree(&self, key: u64) -> RngTree {
        RngTree {
            master: splitmix64(self.master ^ splitmix64(key ^ 0x5bf0_3635_dcd1_d867)),
        }
    }

    /// Forks an independent per-job tree keyed by a stable identifier —
    /// the seed-sharding primitive behind
    /// [`sweep::SweepRunner`](crate::sweep::SweepRunner). `fork(i)`
    /// depends only on `(master, i)`, never on draw order, so sweeps
    /// stay bit-identical under any parallel schedule.
    #[must_use]
    pub fn fork(&self, key: u64) -> RngTree {
        self.subtree(key ^ 0x6a09_e667_f3bc_c908)
    }
}

/// A deterministic random stream with Gaussian sampling support.
///
/// Wraps [`StdRng`] and adds a Box–Muller normal sampler (with spare
/// caching), so the simulator does not need an external distributions
/// crate.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    spare: Option<f64>,
}

impl SimRng {
    /// Creates a stream from a raw seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid uniform range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal sample (mean 0, standard deviation 1) via
    /// Box–Muller with spare caching.
    #[inline]
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: u1 in (0,1] to avoid ln(0). `sin_cos` shares the
        // argument reduction between the two projections; libm computes
        // it with the same kernels as separate `sin`/`cos` calls, so the
        // samples (and every downstream RNG-dependent result) stay
        // bit-identical to the two-call form.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        let (sin, cos) = theta.sin_cos();
        self.spare = Some(r * sin);
        r * cos
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    #[inline]
    pub fn normal(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be non-negative, got {sigma}"
        );
        mean + sigma * self.standard_normal()
    }

    /// Bernoulli sample with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        self.uniform() < p
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
}

/// A reusable normal distribution `N(mean, sigma^2)`.
///
/// # Examples
///
/// ```
/// use strent_sim::{Normal, RngTree};
///
/// let gate_delay = Normal::new(255.0, 2.0); // ps
/// let mut rng = RngTree::new(7).stream(0);
/// let d = gate_delay.sample(&mut rng);
/// assert!((d - 255.0).abs() < 20.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sigma: f64,
}

impl Normal {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    #[must_use]
    pub fn new(mean: f64, sigma: f64) -> Self {
        assert!(mean.is_finite(), "mean must be finite, got {mean}");
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be non-negative, got {sigma}"
        );
        Normal { mean, sigma }
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.normal(self.mean, self.sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let tree = RngTree::new(99);
        let a: Vec<u64> = (0..8).map(|_| tree.stream(5).next_u64()).collect();
        // Same key, fresh streams: every draw equals the first draw.
        assert!(a.iter().all(|&x| x == a[0]));
        let mut s = tree.stream(5);
        let seq1: Vec<u64> = (0..8).map(|_| s.next_u64()).collect();
        let mut s = tree.stream(5);
        let seq2: Vec<u64> = (0..8).map(|_| s.next_u64()).collect();
        assert_eq!(seq1, seq2);
    }

    #[test]
    fn streams_differ_across_keys_and_seeds() {
        let tree = RngTree::new(99);
        assert_ne!(tree.stream(0).next_u64(), tree.stream(1).next_u64());
        assert_ne!(
            RngTree::new(1).stream(0).next_u64(),
            RngTree::new(2).stream(0).next_u64()
        );
        assert_ne!(
            tree.subtree(0).stream(0).next_u64(),
            tree.subtree(1).stream(0).next_u64()
        );
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = RngTree::new(3).stream(0);
        for _ in 0..1000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
        for _ in 0..100 {
            let u = rng.uniform_in(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&u));
        }
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = RngTree::new(11).stream(7);
        let dist = Normal::new(10.0, 2.0);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sigma {}", var.sqrt());
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = RngTree::new(5).stream(0);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.25)).count();
        let freq = hits as f64 / 10_000.0;
        assert!((freq - 0.25).abs() < 0.02, "freq {freq}");
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn negative_sigma_rejected() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "p must be")]
    fn bad_bernoulli_rejected() {
        let mut rng = RngTree::new(5).stream(0);
        let _ = rng.bernoulli(1.5);
    }

    #[test]
    fn master_seed_accessor() {
        assert_eq!(RngTree::new(77).master_seed(), 77);
    }
}
