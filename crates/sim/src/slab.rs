//! Generation-stamped liveness slab for event cancellation.
//!
//! The simulator used to keep cancelled sequence numbers in a
//! `HashSet<u64>`, paying a hash probe on **every** dispatched event —
//! and leaking one entry forever for each cancellation that raced with
//! its own firing. [`CancelSlab`] replaces it with a free-list slab of
//! generation-stamped slots:
//!
//! * every scheduled event borrows a slot for its lifetime in the
//!   queue; the public [`EventId`](crate::EventId) packs the slot index
//!   with the slot's generation at allocation time;
//! * `cancel` validates the generation, so cancelling an event that
//!   already fired (its slot since freed, possibly reused) is a
//!   guaranteed no-op, as is cancelling twice;
//! * the dispatch hot path checks liveness with one indexed load and
//!   frees the slot by bumping the generation — no hashing, no heap
//!   traffic after warm-up.

/// Per-slot state: the current generation and the cancellation flag of
/// the event (if any) occupying the slot.
#[derive(Debug, Clone, Copy)]
struct Slot {
    generation: u32,
    cancelled: bool,
}

/// Sentinel slot index for events scheduled without a cancellation
/// handle (fire-and-forget): they carry no slab entry, and the dispatch
/// path skips the liveness check entirely.
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// A free-list slab tracking the liveness of every queued event.
#[derive(Debug, Default)]
pub(crate) struct CancelSlab {
    slots: Vec<Slot>,
    free: Vec<u32>,
}

impl CancelSlab {
    /// Reserves a slot for a newly scheduled event and returns
    /// `(slot, generation)` — the payload of its `EventId`.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` events are pending at once.
    #[inline]
    pub(crate) fn alloc(&mut self) -> (u32, u32) {
        if let Some(slot) = self.free.pop() {
            (slot, self.slots[slot as usize].generation)
        } else {
            let slot = u32::try_from(self.slots.len()).expect("too many pending events");
            assert!(slot != NO_SLOT, "too many pending events");
            self.slots.push(Slot {
                generation: 0,
                cancelled: false,
            });
            (slot, 0)
        }
    }

    /// Marks the event in `slot` cancelled if `generation` still
    /// matches (the event has not fired). Idempotent; stale handles are
    /// ignored.
    #[inline]
    pub(crate) fn cancel(&mut self, slot: u32, generation: u32) {
        if let Some(state) = self.slots.get_mut(slot as usize) {
            if state.generation == generation {
                state.cancelled = true;
            }
        }
    }

    /// Retires `slot` when its event pops from the queue, returning
    /// whether the event had been cancelled. Bumping the generation
    /// invalidates every outstanding `EventId` for the slot before it
    /// is recycled.
    #[inline]
    pub(crate) fn finish(&mut self, slot: u32) -> bool {
        let state = &mut self.slots[slot as usize];
        let was_cancelled = state.cancelled;
        state.generation = state.generation.wrapping_add(1);
        state.cancelled = false;
        self.free.push(slot);
        was_cancelled
    }

    /// Number of live (allocated, unfired) slots — i.e. queued events.
    #[cfg(test)]
    fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_finish_recycles_slots() {
        let mut slab = CancelSlab::default();
        let (s0, g0) = slab.alloc();
        let (s1, _) = slab.alloc();
        assert_ne!(s0, s1);
        assert_eq!(slab.live(), 2);
        assert!(!slab.finish(s0), "not cancelled");
        let (s2, g2) = slab.alloc();
        assert_eq!(s2, s0, "freed slot is reused");
        assert_ne!(g2, g0, "reuse bumps the generation");
        assert_eq!(slab.live(), 2);
    }

    #[test]
    fn cancel_marks_live_event() {
        let mut slab = CancelSlab::default();
        let (slot, generation) = slab.alloc();
        slab.cancel(slot, generation);
        slab.cancel(slot, generation); // twice: no-op
        assert!(slab.finish(slot), "seen as cancelled exactly once");
    }

    #[test]
    fn stale_cancel_is_a_no_op() {
        let mut slab = CancelSlab::default();
        let (slot, generation) = slab.alloc();
        assert!(!slab.finish(slot)); // event fired
        let (slot2, _) = slab.alloc(); // slot recycled for a new event
        assert_eq!(slot2, slot);
        slab.cancel(slot, generation); // stale handle
        assert!(!slab.finish(slot2), "new occupant unaffected");
    }

    #[test]
    fn out_of_range_cancel_is_ignored() {
        let mut slab = CancelSlab::default();
        slab.cancel(17, 0); // never allocated
        assert_eq!(slab.live(), 0);
    }

    /// Invariant test (simlint relies on it): generation stamps wrap
    /// with `wrapping_add`, and a handle from the pre-wrap generation
    /// must not cancel the post-wrap occupant. Without wrapping
    /// semantics, `finish` would panic on overflow after 2^32 reuses of
    /// one slot; without the stale-handle check, an `EventId` kept
    /// alive across the wrap could cancel an unrelated event.
    #[test]
    fn generation_wraparound_keeps_stale_handles_dead() {
        let mut slab = CancelSlab::default();
        let (slot, generation) = slab.alloc();
        assert_eq!(generation, 0);
        // Age the slot to the last representable generation.
        slab.slots[slot as usize].generation = u32::MAX;
        let stale = u32::MAX; // handle minted just before the wrap
        assert!(!slab.finish(slot), "not cancelled");
        assert_eq!(
            slab.slots[slot as usize].generation, 0,
            "generation wraps to zero instead of overflowing"
        );
        let (slot2, generation2) = slab.alloc();
        assert_eq!(slot2, slot, "slot recycled across the wrap");
        assert_eq!(generation2, 0);
        slab.cancel(slot, stale); // pre-wrap handle
        assert!(
            !slab.finish(slot2),
            "stale pre-wrap handle must not cancel the new occupant"
        );
    }

    /// Invariant test: a handle whose generation collides *after* the
    /// wrap (generation 0 again) is honoured — generation reuse is an
    /// accepted 1-in-2^32 ABA window, documented here so a future
    /// change to the stamp width keeps the test honest.
    #[test]
    fn generation_wraparound_aba_window_is_exact() {
        let mut slab = CancelSlab::default();
        let (slot, _) = slab.alloc();
        slab.slots[slot as usize].generation = u32::MAX;
        assert!(!slab.finish(slot));
        let (_, generation) = slab.alloc();
        slab.cancel(slot, generation); // matching post-wrap handle
        assert!(slab.finish(slot), "matching generation still cancels");
    }
}
