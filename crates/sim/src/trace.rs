//! Waveform traces: recorded net transitions and derived measurements.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::signal::{Bit, Edge, NetId};
use crate::Time;

/// The recorded waveform of one net.
///
/// A trace stores the initial level and every subsequent transition as
/// `(instant, new level)` pairs in increasing time order. Measurement
/// helpers ([`rising_edges`], [`periods`], [`value_at`], ...) operate
/// directly on this representation — this is the simulator's stand-in for
/// the paper's oscilloscope.
///
/// [`rising_edges`]: Trace::rising_edges
/// [`periods`]: Trace::periods
/// [`value_at`]: Trace::value_at
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    initial: Bit,
    transitions: Vec<(Time, Bit)>,
}

impl Trace {
    /// Creates an empty trace starting at the given level.
    #[must_use]
    pub fn new(initial: Bit) -> Self {
        Trace {
            initial,
            transitions: Vec::new(),
        }
    }

    /// The level before the first transition.
    #[must_use]
    pub fn initial(&self) -> Bit {
        self.initial
    }

    /// Records a transition. Transitions at identical or decreasing times
    /// are accepted (the simulator guarantees monotonicity); redundant
    /// writes to the same level are ignored.
    pub fn record(&mut self, time: Time, value: Bit) {
        if self.last_value() != value {
            self.transitions.push((time, value));
        }
    }

    /// The level after the most recent transition.
    #[must_use]
    pub fn last_value(&self) -> Bit {
        self.transitions
            .last()
            .map_or(self.initial, |&(_, v)| v)
    }

    /// Number of recorded transitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether no transition has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// All recorded transitions as `(time, new level)` pairs.
    #[must_use]
    pub fn transitions(&self) -> &[(Time, Bit)] {
        &self.transitions
    }

    /// The level at an arbitrary instant (between transitions).
    #[must_use]
    pub fn value_at(&self, time: Time) -> Bit {
        match self
            .transitions
            .binary_search_by(|&(t, _)| t.cmp(&time))
        {
            Ok(i) => self.transitions[i].1,
            Err(0) => self.initial,
            Err(i) => self.transitions[i - 1].1,
        }
    }

    /// Instants of all edges of the given direction.
    #[must_use]
    pub fn edges(&self, edge: Edge) -> Vec<Time> {
        let target = edge.target_level();
        self.transitions
            .iter()
            .filter(|&&(_, v)| v == target)
            .map(|&(t, _)| t)
            .collect()
    }

    /// Instants of all rising edges.
    #[must_use]
    pub fn rising_edges(&self) -> Vec<Time> {
        self.edges(Edge::Rising)
    }

    /// Instants of all falling edges.
    #[must_use]
    pub fn falling_edges(&self) -> Vec<Time> {
        self.edges(Edge::Falling)
    }

    /// Successive periods in picoseconds, measured between consecutive
    /// edges of the given direction (the scope's "period" measurement).
    #[must_use]
    pub fn periods(&self, edge: Edge) -> Vec<f64> {
        let edges = self.edges(edge);
        edges.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Successive half-periods in picoseconds (between any two
    /// consecutive transitions).
    #[must_use]
    pub fn half_periods(&self) -> Vec<f64> {
        self.transitions
            .windows(2)
            .map(|w| w[1].0 - w[0].0)
            .collect()
    }

    /// Mean frequency in MHz derived from rising edges, or `None` if the
    /// trace holds fewer than two rising edges.
    #[must_use]
    pub fn mean_frequency_mhz(&self) -> Option<f64> {
        let edges = self.rising_edges();
        let (first, last) = (edges.first()?, edges.last()?);
        let n = edges.len();
        if n < 2 {
            return None;
        }
        let mean_period_ps = (*last - *first) / (n - 1) as f64;
        // 1/ps = 1e12 Hz = 1e6 MHz.
        Some(1e6 / mean_period_ps)
    }

    /// Discards the first `n` transitions (warm-up removal), keeping the
    /// level reached as the new initial level.
    pub fn discard_prefix(&mut self, n: usize) {
        let n = n.min(self.transitions.len());
        if n == 0 {
            return;
        }
        self.initial = self.transitions[n - 1].1;
        self.transitions.drain(..n);
    }
}

/// Recorded traces for all watched nets of a simulation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSet {
    traces: BTreeMap<NetId, Trace>,
}

impl TraceSet {
    /// Creates an empty trace set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts recording `net`, with `initial` as its current level.
    /// Re-watching a net is a no-op.
    pub fn watch(&mut self, net: NetId, initial: Bit) {
        self.traces.entry(net).or_insert_with(|| Trace::new(initial));
    }

    /// Whether `net` is being recorded.
    #[must_use]
    pub fn is_watched(&self, net: NetId) -> bool {
        self.traces.contains_key(&net)
    }

    /// Records a transition if the net is watched.
    pub fn record(&mut self, net: NetId, time: Time, value: Bit) {
        if let Some(trace) = self.traces.get_mut(&net) {
            trace.record(time, value);
        }
    }

    /// The trace of `net`, if watched.
    #[must_use]
    pub fn get(&self, net: NetId) -> Option<&Trace> {
        self.traces.get(&net)
    }

    /// Iterates over `(net, trace)` pairs in net order.
    pub fn iter(&self) -> impl Iterator<Item = (NetId, &Trace)> {
        self.traces.iter().map(|(&net, trace)| (net, trace))
    }

    /// Number of watched nets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether no net is watched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_wave(period: f64, cycles: usize) -> Trace {
        let mut trace = Trace::new(Bit::Low);
        for i in 0..cycles {
            let t0 = i as f64 * period;
            trace.record(Time::from_ps(t0), Bit::High);
            trace.record(Time::from_ps(t0 + period / 2.0), Bit::Low);
        }
        trace
    }

    #[test]
    fn edges_and_periods() {
        let trace = square_wave(100.0, 4);
        assert_eq!(trace.len(), 8);
        assert_eq!(trace.rising_edges().len(), 4);
        assert_eq!(trace.falling_edges().len(), 4);
        let periods = trace.periods(Edge::Rising);
        assert_eq!(periods, vec![100.0, 100.0, 100.0]);
        let halves = trace.half_periods();
        assert_eq!(halves.len(), 7);
        assert!(halves.iter().all(|&h| (h - 50.0).abs() < 1e-9));
    }

    #[test]
    fn redundant_writes_ignored() {
        let mut trace = Trace::new(Bit::Low);
        trace.record(Time::from_ps(1.0), Bit::Low);
        assert!(trace.is_empty());
        trace.record(Time::from_ps(2.0), Bit::High);
        trace.record(Time::from_ps(3.0), Bit::High);
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn value_at_interpolates() {
        let trace = square_wave(100.0, 2);
        assert_eq!(trace.value_at(Time::from_ps(-5.0)), Bit::Low);
        assert_eq!(trace.value_at(Time::from_ps(0.0)), Bit::High);
        assert_eq!(trace.value_at(Time::from_ps(25.0)), Bit::High);
        assert_eq!(trace.value_at(Time::from_ps(50.0)), Bit::Low);
        assert_eq!(trace.value_at(Time::from_ps(75.0)), Bit::Low);
        assert_eq!(trace.value_at(Time::from_ps(100.0)), Bit::High);
        assert_eq!(trace.value_at(Time::from_ps(1e6)), Bit::Low);
    }

    #[test]
    fn mean_frequency() {
        // 100 ps period -> 10 GHz -> 10_000 MHz.
        let trace = square_wave(100.0, 10);
        let f = trace.mean_frequency_mhz().expect("enough edges");
        assert!((f - 10_000.0).abs() < 1e-6);
        assert_eq!(Trace::new(Bit::Low).mean_frequency_mhz(), None);
    }

    #[test]
    fn discard_prefix_preserves_level() {
        let mut trace = square_wave(100.0, 3);
        trace.discard_prefix(3); // after 3 transitions the level is High
        assert_eq!(trace.initial(), Bit::High);
        assert_eq!(trace.len(), 3);
        let mut t2 = square_wave(100.0, 1);
        t2.discard_prefix(100); // over-long prefix is clamped
        assert!(t2.is_empty());
    }

    #[test]
    fn trace_set_roundtrip() {
        let mut set = TraceSet::new();
        let net = NetId(1);
        assert!(!set.is_watched(net));
        set.record(net, Time::ZERO, Bit::High); // unwatched: ignored
        set.watch(net, Bit::Low);
        set.watch(net, Bit::High); // idempotent, keeps first initial
        set.record(net, Time::from_ps(5.0), Bit::High);
        assert_eq!(set.len(), 1);
        let trace = set.get(net).expect("watched");
        assert_eq!(trace.initial(), Bit::Low);
        assert_eq!(trace.len(), 1);
        assert_eq!(set.iter().count(), 1);
    }
}
