//! Waveform traces: recorded net transitions and derived measurements.

use serde::{Deserialize, Serialize};

use crate::signal::{Bit, Edge, NetId};
use crate::Time;

/// The recorded waveform of one net.
///
/// A trace stores the initial level and every subsequent transition as
/// `(instant, new level)` pairs in increasing time order. Measurement
/// helpers ([`rising_edges`], [`periods`], [`value_at`], ...) operate
/// directly on this representation — this is the simulator's stand-in for
/// the paper's oscilloscope.
///
/// [`rising_edges`]: Trace::rising_edges
/// [`periods`]: Trace::periods
/// [`value_at`]: Trace::value_at
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    initial: Bit,
    transitions: Vec<(Time, Bit)>,
}

impl Trace {
    /// Creates an empty trace starting at the given level.
    #[must_use]
    pub fn new(initial: Bit) -> Self {
        Trace {
            initial,
            transitions: Vec::new(),
        }
    }

    /// The level before the first transition.
    #[must_use]
    pub fn initial(&self) -> Bit {
        self.initial
    }

    /// Records a transition. Transitions at identical or decreasing times
    /// are accepted (the simulator guarantees monotonicity); redundant
    /// writes to the same level are ignored.
    #[inline]
    pub fn record(&mut self, time: Time, value: Bit) {
        if self.last_value() != value {
            self.transitions.push((time, value));
        }
    }

    /// Reserves room for at least `additional` further transitions, so a
    /// measurement loop that knows its horizon records without
    /// reallocating.
    pub fn reserve(&mut self, additional: usize) {
        self.transitions.reserve(additional);
    }

    /// The level after the most recent transition.
    #[must_use]
    pub fn last_value(&self) -> Bit {
        self.transitions
            .last()
            .map_or(self.initial, |&(_, v)| v)
    }

    /// Number of recorded transitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether no transition has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// All recorded transitions as `(time, new level)` pairs.
    #[must_use]
    pub fn transitions(&self) -> &[(Time, Bit)] {
        &self.transitions
    }

    /// The level at an arbitrary instant (between transitions).
    #[must_use]
    pub fn value_at(&self, time: Time) -> Bit {
        match self
            .transitions
            .binary_search_by(|&(t, _)| t.cmp(&time))
        {
            Ok(i) => self.transitions[i].1,
            Err(0) => self.initial,
            Err(i) => self.transitions[i - 1].1,
        }
    }

    /// Instants of all edges of the given direction.
    #[must_use]
    pub fn edges(&self, edge: Edge) -> Vec<Time> {
        let target = edge.target_level();
        self.transitions
            .iter()
            .filter(|&&(_, v)| v == target)
            .map(|&(t, _)| t)
            .collect()
    }

    /// Number of edges of the given direction, without allocating the
    /// instants vector ([`edges`](Trace::edges) does). Progress checks in
    /// measurement loops poll this after every horizon extension.
    #[must_use]
    pub fn edge_count(&self, edge: Edge) -> usize {
        let target = edge.target_level();
        self.transitions.iter().filter(|&&(_, v)| v == target).count()
    }

    /// Instants of all rising edges.
    #[must_use]
    pub fn rising_edges(&self) -> Vec<Time> {
        self.edges(Edge::Rising)
    }

    /// Instants of all falling edges.
    #[must_use]
    pub fn falling_edges(&self) -> Vec<Time> {
        self.edges(Edge::Falling)
    }

    /// Successive periods in picoseconds, measured between consecutive
    /// edges of the given direction (the scope's "period" measurement).
    #[must_use]
    pub fn periods(&self, edge: Edge) -> Vec<f64> {
        let edges = self.edges(edge);
        edges.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Successive half-periods in picoseconds (between any two
    /// consecutive transitions).
    #[must_use]
    pub fn half_periods(&self) -> Vec<f64> {
        self.transitions
            .windows(2)
            .map(|w| w[1].0 - w[0].0)
            .collect()
    }

    /// Mean frequency in MHz derived from rising edges, or `None` if the
    /// trace holds fewer than two rising edges.
    #[must_use]
    pub fn mean_frequency_mhz(&self) -> Option<f64> {
        let edges = self.rising_edges();
        let (first, last) = (edges.first()?, edges.last()?);
        let n = edges.len();
        if n < 2 {
            return None;
        }
        let mean_period_ps = (*last - *first) / (n - 1) as f64;
        // 1/ps = 1e12 Hz = 1e6 MHz.
        Some(1e6 / mean_period_ps)
    }

    /// Discards the first `n` transitions (warm-up removal), keeping the
    /// level reached as the new initial level.
    pub fn discard_prefix(&mut self, n: usize) {
        let n = n.min(self.transitions.len());
        if n == 0 {
            return;
        }
        self.initial = self.transitions[n - 1].1;
        self.transitions.drain(..n);
    }

    /// Discards every transition strictly before `time`, keeping the
    /// level held at `time` as the new initial level, and returns how
    /// many transitions were dropped.
    ///
    /// This is the memory bound for *long-running* sources: a serving
    /// worker that has sampled a trace window prunes it before advancing
    /// the simulation further, so the trace never grows with uptime.
    /// [`value_at`](Trace::value_at) and the edge helpers keep answering
    /// correctly for instants at or after `time`.
    pub fn discard_before(&mut self, time: Time) -> usize {
        let n = self.transitions.partition_point(|&(t, _)| t < time);
        self.discard_prefix(n);
        n
    }
}

/// Sentinel in the dense net-index → trace-slot map for unwatched nets.
const UNWATCHED: u32 = u32::MAX;

/// Recorded traces for all watched nets of a simulation.
///
/// Storage is a dense `net index → slot` map over a vector of traces
/// kept sorted by [`NetId`], so the per-transition [`record`] on the
/// dispatch hot path is one indexed load (the previous `BTreeMap`
/// representation paid a tree descent per recorded — or unwatched —
/// drive). Watching a net is O(watched) but happens only at setup.
///
/// [`record`]: TraceSet::record
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSet {
    /// `slots[net.index()]` is the position of the net's trace in
    /// `traces`, or [`UNWATCHED`].
    slots: Vec<u32>,
    /// `(net, trace)` pairs sorted by net id.
    traces: Vec<(NetId, Trace)>,
}

impl TraceSet {
    /// Creates an empty trace set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts recording `net`, with `initial` as its current level.
    /// Re-watching a net is a no-op.
    pub fn watch(&mut self, net: NetId, initial: Bit) {
        let index = net.index();
        if index >= self.slots.len() {
            self.slots.resize(index + 1, UNWATCHED);
        }
        if self.slots[index] != UNWATCHED {
            return;
        }
        // Insert in net order; later slots shift one position right.
        let pos = self
            .traces
            .partition_point(|&(existing, _)| existing < net);
        for slot in &mut self.slots {
            if *slot != UNWATCHED && *slot >= pos as u32 {
                *slot += 1;
            }
        }
        self.slots[index] = u32::try_from(pos).expect("watched net count fits u32");
        self.traces.insert(pos, (net, Trace::new(initial)));
    }

    /// Whether `net` is being recorded.
    #[must_use]
    pub fn is_watched(&self, net: NetId) -> bool {
        self.slots.get(net.index()).is_some_and(|&s| s != UNWATCHED)
    }

    /// Records a transition if the net is watched.
    #[inline]
    pub fn record(&mut self, net: NetId, time: Time, value: Bit) {
        if let Some(&slot) = self.slots.get(net.index()) {
            if slot != UNWATCHED {
                self.traces[slot as usize].1.record(time, value);
            }
        }
    }

    /// Preallocates room for `additional` further transitions on the
    /// trace of `net` (no-op if unwatched).
    pub fn reserve(&mut self, net: NetId, additional: usize) {
        if let Some(trace) = self.get_mut(net) {
            trace.reserve(additional);
        }
    }

    /// The trace of `net`, if watched.
    #[must_use]
    pub fn get(&self, net: NetId) -> Option<&Trace> {
        let &slot = self.slots.get(net.index())?;
        (slot != UNWATCHED).then(|| &self.traces[slot as usize].1)
    }

    /// Mutable access to the trace of `net`, if watched (e.g. for
    /// warm-up removal via [`Trace::discard_prefix`]).
    pub fn get_mut(&mut self, net: NetId) -> Option<&mut Trace> {
        let &slot = self.slots.get(net.index())?;
        (slot != UNWATCHED).then(|| &mut self.traces[slot as usize].1)
    }

    /// Iterates over `(net, trace)` pairs in net order.
    pub fn iter(&self) -> impl Iterator<Item = (NetId, &Trace)> {
        self.traces.iter().map(|(net, trace)| (*net, trace))
    }

    /// Number of watched nets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether no net is watched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_wave(period: f64, cycles: usize) -> Trace {
        let mut trace = Trace::new(Bit::Low);
        for i in 0..cycles {
            let t0 = i as f64 * period;
            trace.record(Time::from_ps(t0), Bit::High);
            trace.record(Time::from_ps(t0 + period / 2.0), Bit::Low);
        }
        trace
    }

    #[test]
    fn edges_and_periods() {
        let trace = square_wave(100.0, 4);
        assert_eq!(trace.len(), 8);
        assert_eq!(trace.rising_edges().len(), 4);
        assert_eq!(trace.falling_edges().len(), 4);
        let periods = trace.periods(Edge::Rising);
        assert_eq!(periods, vec![100.0, 100.0, 100.0]);
        let halves = trace.half_periods();
        assert_eq!(halves.len(), 7);
        assert!(halves.iter().all(|&h| (h - 50.0).abs() < 1e-9));
    }

    #[test]
    fn redundant_writes_ignored() {
        let mut trace = Trace::new(Bit::Low);
        trace.record(Time::from_ps(1.0), Bit::Low);
        assert!(trace.is_empty());
        trace.record(Time::from_ps(2.0), Bit::High);
        trace.record(Time::from_ps(3.0), Bit::High);
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn value_at_interpolates() {
        let trace = square_wave(100.0, 2);
        assert_eq!(trace.value_at(Time::from_ps(-5.0)), Bit::Low);
        assert_eq!(trace.value_at(Time::from_ps(0.0)), Bit::High);
        assert_eq!(trace.value_at(Time::from_ps(25.0)), Bit::High);
        assert_eq!(trace.value_at(Time::from_ps(50.0)), Bit::Low);
        assert_eq!(trace.value_at(Time::from_ps(75.0)), Bit::Low);
        assert_eq!(trace.value_at(Time::from_ps(100.0)), Bit::High);
        assert_eq!(trace.value_at(Time::from_ps(1e6)), Bit::Low);
    }

    #[test]
    fn mean_frequency() {
        // 100 ps period -> 10 GHz -> 10_000 MHz.
        let trace = square_wave(100.0, 10);
        let f = trace.mean_frequency_mhz().expect("enough edges");
        assert!((f - 10_000.0).abs() < 1e-6);
        assert_eq!(Trace::new(Bit::Low).mean_frequency_mhz(), None);
    }

    #[test]
    fn discard_prefix_preserves_level() {
        let mut trace = square_wave(100.0, 3);
        trace.discard_prefix(3); // after 3 transitions the level is High
        assert_eq!(trace.initial(), Bit::High);
        assert_eq!(trace.len(), 3);
        let mut t2 = square_wave(100.0, 1);
        t2.discard_prefix(100); // over-long prefix is clamped
        assert!(t2.is_empty());
    }

    #[test]
    fn discard_before_preserves_values_at_and_after_the_cut() {
        let mut trace = square_wave(100.0, 4); // edges at 0,50,100,...,350
        let dropped = trace.discard_before(Time::from_ps(120.0));
        assert_eq!(dropped, 3, "0, 50 and 100 ps transitions dropped");
        // At the cut instant the level is what it was mid-wave.
        assert_eq!(trace.initial(), Bit::High);
        assert_eq!(trace.value_at(Time::from_ps(120.0)), Bit::High);
        assert_eq!(trace.value_at(Time::from_ps(150.0)), Bit::Low);
        // Exactly-at-cut transitions survive (strictly-before contract).
        let mut t2 = square_wave(100.0, 2);
        t2.discard_before(Time::from_ps(100.0));
        assert_eq!(t2.transitions().first(), Some(&(Time::from_ps(100.0), Bit::High)));
        // A cut past the end keeps the final level as initial.
        let mut t3 = square_wave(100.0, 2);
        let dropped = t3.discard_before(Time::from_ps(1e9));
        assert_eq!(dropped, 4);
        assert!(t3.is_empty());
        assert_eq!(t3.value_at(Time::from_ps(1e9)), Bit::Low);
        // Pruning an empty trace is a no-op.
        assert_eq!(Trace::new(Bit::Low).discard_before(Time::from_ps(5.0)), 0);
    }

    #[test]
    fn edge_count_matches_edges() {
        let trace = square_wave(100.0, 5);
        assert_eq!(trace.edge_count(Edge::Rising), trace.rising_edges().len());
        assert_eq!(trace.edge_count(Edge::Falling), trace.falling_edges().len());
        assert_eq!(Trace::new(Bit::Low).edge_count(Edge::Rising), 0);
    }

    #[test]
    fn out_of_order_watch_keeps_net_order() {
        let mut set = TraceSet::new();
        for raw in [7u32, 2, 9, 0, 2] {
            set.watch(NetId(raw), Bit::Low);
        }
        assert_eq!(set.len(), 4);
        let order: Vec<u32> = set.iter().map(|(net, _)| net.index() as u32).collect();
        assert_eq!(order, vec![0, 2, 7, 9], "iteration is in net order");
        // Each watched net resolves to its own trace after the shifts.
        set.record(NetId(2), Time::from_ps(1.0), Bit::High);
        set.record(NetId(9), Time::from_ps(2.0), Bit::High);
        assert_eq!(set.get(NetId(2)).expect("watched").len(), 1);
        assert_eq!(set.get(NetId(9)).expect("watched").len(), 1);
        assert_eq!(set.get(NetId(7)).expect("watched").len(), 0);
        assert!(set.get(NetId(3)).is_none());
        set.reserve(NetId(2), 1000);
        set.reserve(NetId(3), 1000); // unwatched: no-op
        assert!(set.get_mut(NetId(0)).is_some());
    }

    #[test]
    fn trace_set_roundtrip() {
        let mut set = TraceSet::new();
        let net = NetId(1);
        assert!(!set.is_watched(net));
        set.record(net, Time::ZERO, Bit::High); // unwatched: ignored
        set.watch(net, Bit::Low);
        set.watch(net, Bit::High); // idempotent, keeps first initial
        set.record(net, Time::from_ps(5.0), Bit::High);
        assert_eq!(set.len(), 1);
        let trace = set.get(net).expect("watched");
        assert_eq!(trace.initial(), Bit::Low);
        assert_eq!(trace.len(), 1);
        assert_eq!(set.iter().count(), 1);
    }
}
