//! Absolute simulation time.
//!
//! [`Time`] is a newtype over `f64` **picoseconds** with a total order
//! (non-finite values are rejected at construction), so it can key the
//! event queue deterministically.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An absolute simulation instant, in picoseconds.
///
/// `Time` is totally ordered: constructors reject NaN and infinities, so
/// comparisons never need to handle unordered values.
///
/// # Examples
///
/// ```
/// use strent_sim::Time;
///
/// let t = Time::from_ps(2_500.0);
/// assert_eq!(t.as_ns(), 2.5);
/// assert!(t + 100.0 > t);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Time(f64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0.0);

    /// Creates a `Time` from a picosecond value.
    ///
    /// # Panics
    ///
    /// Panics if `ps` is NaN or infinite — a non-finite simulation time is
    /// always a logic error upstream and would break event ordering.
    #[must_use]
    pub fn from_ps(ps: f64) -> Self {
        assert!(ps.is_finite(), "simulation time must be finite, got {ps}");
        Time(ps)
    }

    /// Creates a `Time` from a nanosecond value.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is NaN or infinite.
    #[must_use]
    pub fn from_ns(ns: f64) -> Self {
        Self::from_ps(ns * 1e3)
    }

    /// Creates a `Time` from a microsecond value.
    ///
    /// # Panics
    ///
    /// Panics if `us` is NaN or infinite.
    #[must_use]
    pub fn from_us(us: f64) -> Self {
        Self::from_ps(us * 1e6)
    }

    /// Returns the instant as picoseconds.
    #[must_use]
    pub fn as_ps(self) -> f64 {
        self.0
    }

    /// Returns the instant as nanoseconds.
    #[must_use]
    pub fn as_ns(self) -> f64 {
        self.0 * 1e-3
    }

    /// Returns the instant as seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0 * 1e-12
    }

    /// Returns the later of two instants.
    #[must_use]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    #[must_use]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Default for Time {
    fn default() -> Self {
        Time::ZERO
    }
}

impl Eq for Time {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Time {
    fn cmp(&self, other: &Self) -> Ordering {
        // Construction guarantees finiteness, so partial_cmp never fails.
        self.0
            .partial_cmp(&other.0)
            .expect("Time is always finite")
    }
}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<f64> for Time {
    /// Interprets the value as picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the value is NaN or infinite.
    fn from(ps: f64) -> Self {
        Time::from_ps(ps)
    }
}

impl Add<f64> for Time {
    type Output = Time;

    /// Advances the instant by a duration in picoseconds.
    fn add(self, ps: f64) -> Time {
        Time::from_ps(self.0 + ps)
    }
}

impl AddAssign<f64> for Time {
    fn add_assign(&mut self, ps: f64) {
        *self = *self + ps;
    }
}

impl Sub for Time {
    type Output = f64;

    /// Difference between two instants, in picoseconds.
    fn sub(self, rhs: Time) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1e6 {
            write!(f, "{:.3} us", self.0 * 1e-6)
        } else if self.0.abs() >= 1e3 {
            write!(f, "{:.3} ns", self.0 * 1e-3)
        } else {
            write!(f, "{:.3} ps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        let t = Time::from_ns(1.5);
        assert_eq!(t.as_ps(), 1_500.0);
        assert_eq!(t.as_ns(), 1.5);
        assert_eq!(Time::from_us(2.0).as_ps(), 2e6);
        assert_eq!(Time::ZERO.as_secs(), 0.0);
    }

    #[test]
    fn ordering_is_total() {
        let a = Time::from_ps(1.0);
        let b = Time::from_ps(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = Time::from_ps(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinity_rejected() {
        let _ = Time::from_ps(f64::INFINITY);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_ps(100.0);
        assert_eq!((t + 50.0).as_ps(), 150.0);
        assert_eq!((t + 50.0) - t, 50.0);
        let mut u = t;
        u += 25.0;
        assert_eq!(u.as_ps(), 125.0);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", Time::from_ps(12.5)), "12.500 ps");
        assert_eq!(format!("{}", Time::from_ps(1_500.0)), "1.500 ns");
        assert_eq!(format!("{}", Time::from_ps(2.5e6)), "2.500 us");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Time::default(), Time::ZERO);
    }
}
