//! Regenerates the EXT-DEGRADATION campaign: fault injection against
//! the online health tests, on both ring families.
//!
//! Not part of `repro_all` — fault campaigns are opt-in so the default
//! reproduction output stays byte-stable.

use std::process::ExitCode;

use strent_bench::repro_main;
use strentropy::experiments::degradation;

fn main() -> ExitCode {
    repro_main("repro_degradation", degradation::run)
}
