//! Regenerates the paper's ext_method result. See `strentropy::experiments::ext_method`.

use std::process::ExitCode;

fn main() -> ExitCode {
    strent_bench::repro_main("ext_method", strentropy::experiments::ext_method::run)
}
