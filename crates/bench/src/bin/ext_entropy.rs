//! Regenerates the EXT-ENTROPY result (analytic min-entropy bound vs
//! Markov estimate, plus the differential CMRR table). See
//! `strentropy::experiments::ext_entropy`.

use std::process::ExitCode;

fn main() -> ExitCode {
    strent_bench::repro_main("ext_entropy", strentropy::experiments::ext_entropy::run)
}
