//! Regenerates the paper's fig5 result. See `strentropy::experiments::fig5`.

use std::process::ExitCode;

fn main() -> ExitCode {
    strent_bench::repro_main("fig5", strentropy::experiments::fig5::run)
}
