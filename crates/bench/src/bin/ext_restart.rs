//! Regenerates the ext_restart extension result. See `strentropy::experiments::ext_restart`.

use std::process::ExitCode;

fn main() -> ExitCode {
    strent_bench::repro_main("ext_restart", strentropy::experiments::ext_restart::run)
}
