//! Regenerates the paper's fig9 result. See `strentropy::experiments::fig9`.

use std::process::ExitCode;

fn main() -> ExitCode {
    strent_bench::repro_main("fig9", strentropy::experiments::fig9::run)
}
