//! Emits `BENCH_sweep.json` (per-stage execution statistics of the
//! parallel experiment runner: wall clock, per-shard busy time and
//! dispatched simulator events, plus a fig8 thread-scaling probe) and
//! `BENCH_engine.json` (per-experiment dispatch throughput plus a
//! three-queue 32-stage STR dispatch microbench — the kernel evidence
//! described in `docs/engine_perf.md`).
//!
//! The JSON is hand-formatted — the workspace builds offline against
//! stub crates, so no serializer is assumed.
//!
//! Usage: `bench_sweep [--quick|--full] [--seed N] [--threads N]
//! [--out PATH] [--engine-out PATH]` (default `--quick`,
//! `BENCH_sweep.json` / `BENCH_engine.json` in the current directory).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use strent_device::{Board, Technology};
use strent_rings::{str_ring, StrConfig};
use strent_sim::{BinaryHeapQueue, CalendarQueue, EventQueue, Simulator, Time, WheelQueue};
use strentropy::experiments::runner::{ExperimentRunner, StageReport};
use strentropy::experiments::{
    ext_charlie, ext_coherent, ext_det, ext_flicker, ext_method, ext_mode, ext_multi,
    ext_restart, ext_trng, fig5, fig8, obs_a, table1, table2, Effort, ExperimentError,
};

struct Options {
    effort: Effort,
    seed: u64,
    threads: Option<usize>,
    out: String,
    engine_out: String,
}

fn parse(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut options = Options {
        effort: Effort::Quick,
        seed: strentropy::calibration::PAPER_SEED,
        threads: None,
        out: "BENCH_sweep.json".to_owned(),
        engine_out: "BENCH_engine.json".to_owned(),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.effort = Effort::Quick,
            "--full" => options.effort = Effort::Full,
            "--seed" => {
                let value = args.next().ok_or("--seed requires a value")?;
                options.seed = value.parse().map_err(|_| format!("invalid seed: {value}"))?;
            }
            "--threads" => {
                let value = args.next().ok_or("--threads requires a value")?;
                options.threads =
                    Some(value.parse().map_err(|_| format!("invalid threads: {value}"))?);
            }
            "--out" => options.out = args.next().ok_or("--out requires a value")?.clone(),
            "--engine-out" => {
                options.engine_out = args.next().ok_or("--engine-out requires a value")?.clone();
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(options)
}

/// One measured queue implementation in the dispatch microbench.
struct QueueProbe {
    name: &'static str,
    events: u64,
    wall_ns: u128,
}

impl QueueProbe {
    fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.events as f64 * 1e9 / self.wall_ns as f64
    }
}

/// Dispatches a 32-stage STR for `horizon_us` simulated microseconds on
/// the given queue and reports events + wall time (best of three runs,
/// which suppresses allocator warm-up noise).
fn probe_queue<Q: EventQueue, F: Fn() -> Q>(name: &'static str, make: F) -> QueueProbe {
    let board = Board::new(Technology::cyclone_iii(), 0, 7);
    let config = StrConfig::new(32, 16).expect("valid counts");
    let mut best: Option<QueueProbe> = None;
    for _ in 0..3 {
        let mut sim = Simulator::with_queue(7, make());
        let handle = str_ring::build(&config, &board, &mut sim).expect("wires");
        sim.watch(handle.output()).expect("net exists");
        let started = Instant::now();
        sim.run_until(Time::from_us(4.0)).expect("no limit");
        let wall_ns = started.elapsed().as_nanos();
        let probe = QueueProbe {
            name,
            events: sim.stats().events_processed,
            wall_ns,
        };
        if best.as_ref().is_none_or(|b| probe.wall_ns < b.wall_ns) {
            best = Some(probe);
        }
    }
    best.expect("three runs happened")
}

/// Emits `BENCH_engine.json`: per-experiment dispatch throughput from
/// the stage log plus the three-queue STR-32 dispatch microbench.
fn engine_json(options: &Options, threads: usize, stages: &[StageReport]) -> String {
    let probes = [
        probe_queue("wheel", WheelQueue::new),
        probe_queue("binary_heap", BinaryHeapQueue::new),
        probe_queue("calendar", || CalendarQueue::new(200.0)),
    ];
    let heap_eps = probes[1].events_per_sec();
    let speedup = if heap_eps > 0.0 {
        probes[0].events_per_sec() / heap_eps
    } else {
        0.0
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"strentropy-bench-engine/1\",");
    let _ = writeln!(
        json,
        "  \"effort\": \"{}\",",
        match options.effort {
            Effort::Quick => "quick",
            Effort::Full => "full",
        }
    );
    let _ = writeln!(json, "  \"seed\": {},", options.seed);
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"default_queue\": \"wheel\",");
    json.push_str("  \"str32_dispatch_microbench\": {\n");
    let _ = writeln!(json, "    \"workload\": \"str32_16tok_4us_single_thread\",");
    json.push_str("    \"queues\": [");
    for (i, probe) in probes.iter().enumerate() {
        let _ = write!(
            json,
            "{}{{\"name\": \"{}\", \"events\": {}, \"wall_ns\": {}, \
             \"events_per_sec\": {:.0}}}",
            if i == 0 { "" } else { ", " },
            probe.name,
            probe.events,
            probe.wall_ns,
            probe.events_per_sec()
        );
    }
    json.push_str("],\n");
    let _ = writeln!(json, "    \"wheel_speedup_vs_heap\": {speedup:.3},");
    // Recorded pre-PR reference: the same workload on the old kernel
    // (BinaryHeapQueue default, per-drive listener clone, HashSet
    // cancellation, per-event alpha-power evaluation), measured with
    // the identical best-of-N in-process methodology at commit a4a414d.
    // This is a calibration constant, not re-measured per run — see
    // docs/engine_perf.md for the measurement log.
    const PRE_PR_EVENTS_PER_SEC: f64 = 5_380_000.0;
    let _ = writeln!(
        json,
        "    \"pre_pr_baseline\": {{\"commit\": \"a4a414d\", \"queue\": \"binary_heap\", \
         \"events_per_sec\": {PRE_PR_EVENTS_PER_SEC:.0}}},"
    );
    let _ = writeln!(
        json,
        "    \"wheel_speedup_vs_pre_pr\": {:.3}",
        probes[0].events_per_sec() / PRE_PR_EVENTS_PER_SEC
    );
    json.push_str("  },\n");
    json.push_str("  \"experiments\": [\n");
    for (i, report) in stages.iter().enumerate() {
        let s = &report.stats;
        let _ = write!(
            json,
            "    {{\"label\": \"{}\", \"jobs\": {}, \"wall_ns\": {}",
            report.label, s.jobs, s.wall_ns,
        );
        // Stages that drive traces through samplers without metering a
        // simulator record no events; omitting the fields keeps a zero
        // from masquerading as a measured throughput of zero.
        if s.events() > 0 {
            let _ = write!(
                json,
                ", \"events\": {}, \"events_per_sec\": {:.0}",
                s.events(),
                s.events_per_sec(),
            );
        }
        let _ = write!(
            json,
            ", \"cancelled\": {}, \"suppressed\": {}}}",
            s.cancelled(),
            s.suppressed()
        );
        json.push_str(if i + 1 == stages.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

/// Every ported experiment, driven through one shared runner so the
/// stage log accumulates in execution order.
fn run_all(runner: &ExperimentRunner) -> Result<(), ExperimentError> {
    fig5::run_with(runner)?;
    fig8::run_with(runner)?;
    obs_a::run_with(runner)?;
    table1::run_with(runner)?;
    table2::run_with(runner)?;
    ext_charlie::run_with(runner)?;
    ext_mode::run_with(runner)?;
    ext_det::run_with(runner)?;
    ext_flicker::run_with(runner)?;
    ext_method::run_with(runner)?;
    ext_multi::run_with(runner)?;
    ext_restart::run_with(runner)?;
    ext_coherent::run_with(runner)?;
    ext_trng::run_with(runner)?;
    Ok(())
}

fn stage_json(out: &mut String, report: &StageReport) {
    let s = &report.stats;
    let _ = write!(
        out,
        "    {{\"label\": \"{}\", \"threads\": {}, \"jobs\": {}, \"wall_ns\": {}, \
         \"busy_ns\": {}, \"events\": {}, \"speedup\": {:.4}, \"shards\": [",
        report.label,
        s.threads,
        s.jobs,
        s.wall_ns,
        s.busy_ns(),
        s.events(),
        s.speedup()
    );
    for (i, shard) in s.shards.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"jobs\": {}, \"busy_ns\": {}, \"events\": {}}}",
            if i == 0 { "" } else { ", " },
            shard.jobs,
            shard.busy_ns,
            shard.events
        );
    }
    out.push_str("]}");
}

fn main() -> ExitCode {
    let options = match parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!(
                "{msg}\nusage: bench_sweep [--quick|--full] [--seed N] [--threads N] [--out PATH]"
            );
            return ExitCode::FAILURE;
        }
    };
    let available = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let threads = options.threads.unwrap_or(available);

    let mut runner = ExperimentRunner::new(options.effort, options.seed);
    if let Some(t) = options.threads {
        runner = runner.with_threads(t);
    }
    eprintln!(
        "# bench_sweep: {:?} effort, seed {}, {threads} worker(s), {available} CPU(s)",
        options.effort, options.seed
    );
    if let Err(e) = run_all(&runner) {
        eprintln!("experiment failed: {e}");
        return ExitCode::FAILURE;
    }
    let stages = runner.take_stages();

    // Thread-scaling probe on fig8 (the widest frequency sweep): run it
    // once single-threaded and once at the configured worker count. On
    // a single-CPU container the ratio only measures sharding overhead,
    // so the JSON records `available_parallelism` for the consumer to
    // gate speedup expectations on.
    let single = ExperimentRunner::new(options.effort, options.seed).with_threads(1);
    let t0 = Instant::now();
    if let Err(e) = fig8::run_with(&single) {
        eprintln!("fig8 scaling probe failed: {e}");
        return ExitCode::FAILURE;
    }
    let wall_1 = t0.elapsed().as_nanos();
    let multi = ExperimentRunner::new(options.effort, options.seed).with_threads(threads);
    let t0 = Instant::now();
    if let Err(e) = fig8::run_with(&multi) {
        eprintln!("fig8 scaling probe failed: {e}");
        return ExitCode::FAILURE;
    }
    let wall_n = t0.elapsed().as_nanos();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"strentropy-bench-sweep/1\",");
    let _ = writeln!(
        json,
        "  \"effort\": \"{}\",",
        match options.effort {
            Effort::Quick => "quick",
            Effort::Full => "full",
        }
    );
    let _ = writeln!(json, "  \"seed\": {},", options.seed);
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"available_parallelism\": {available},");
    let _ = writeln!(
        json,
        "  \"totals\": {{\"stages\": {}, \"jobs\": {}, \"wall_ns\": {}, \"events\": {}}},",
        stages.len(),
        stages.iter().map(|s| s.stats.jobs).sum::<usize>(),
        stages.iter().map(|s| s.stats.wall_ns).sum::<u128>(),
        stages.iter().map(|s| s.stats.events()).sum::<u64>()
    );
    let _ = writeln!(
        json,
        "  \"fig8_scaling\": {{\"threads\": {threads}, \"wall_ns_1\": {wall_1}, \
         \"wall_ns_n\": {wall_n}, \"speedup\": {:.4}}},",
        wall_1 as f64 / wall_n.max(1) as f64
    );
    json.push_str("  \"stages\": [\n");
    for (i, report) in stages.iter().enumerate() {
        stage_json(&mut json, report);
        json.push_str(if i + 1 == stages.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&options.out, &json) {
        eprintln!("cannot write {}: {e}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!(
        "# wrote {} ({} stages, fig8 speedup {:.2}x at {threads} thread(s))",
        options.out,
        stages.len(),
        wall_1 as f64 / wall_n.max(1) as f64
    );

    let engine = engine_json(&options, threads, &stages);
    if let Err(e) = std::fs::write(&options.engine_out, &engine) {
        eprintln!("cannot write {}: {e}", options.engine_out);
        return ExitCode::FAILURE;
    }
    eprintln!("# wrote {}", options.engine_out);
    ExitCode::SUCCESS
}
