//! Emits `BENCH_sweep.json`: per-stage execution statistics of the
//! parallel experiment runner (wall clock, per-shard busy time and
//! dispatched simulator events), plus a fig8 thread-scaling probe.
//!
//! The JSON is hand-formatted — the workspace builds offline against
//! stub crates, so no serializer is assumed.
//!
//! Usage: `bench_sweep [--quick|--full] [--seed N] [--threads N]
//! [--out PATH]` (default `--quick`, `BENCH_sweep.json` in the current
//! directory).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use strentropy::experiments::runner::{ExperimentRunner, StageReport};
use strentropy::experiments::{
    ext_charlie, ext_coherent, ext_det, ext_flicker, ext_method, ext_mode, ext_multi,
    ext_restart, ext_trng, fig5, fig8, obs_a, table1, table2, Effort, ExperimentError,
};

struct Options {
    effort: Effort,
    seed: u64,
    threads: Option<usize>,
    out: String,
}

fn parse(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut options = Options {
        effort: Effort::Quick,
        seed: strentropy::calibration::PAPER_SEED,
        threads: None,
        out: "BENCH_sweep.json".to_owned(),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.effort = Effort::Quick,
            "--full" => options.effort = Effort::Full,
            "--seed" => {
                let value = args.next().ok_or("--seed requires a value")?;
                options.seed = value.parse().map_err(|_| format!("invalid seed: {value}"))?;
            }
            "--threads" => {
                let value = args.next().ok_or("--threads requires a value")?;
                options.threads =
                    Some(value.parse().map_err(|_| format!("invalid threads: {value}"))?);
            }
            "--out" => options.out = args.next().ok_or("--out requires a value")?.clone(),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(options)
}

/// Every ported experiment, driven through one shared runner so the
/// stage log accumulates in execution order.
fn run_all(runner: &ExperimentRunner) -> Result<(), ExperimentError> {
    fig5::run_with(runner)?;
    fig8::run_with(runner)?;
    obs_a::run_with(runner)?;
    table1::run_with(runner)?;
    table2::run_with(runner)?;
    ext_charlie::run_with(runner)?;
    ext_mode::run_with(runner)?;
    ext_det::run_with(runner)?;
    ext_flicker::run_with(runner)?;
    ext_method::run_with(runner)?;
    ext_multi::run_with(runner)?;
    ext_restart::run_with(runner)?;
    ext_coherent::run_with(runner)?;
    ext_trng::run_with(runner)?;
    Ok(())
}

fn stage_json(out: &mut String, report: &StageReport) {
    let s = &report.stats;
    let _ = write!(
        out,
        "    {{\"label\": \"{}\", \"threads\": {}, \"jobs\": {}, \"wall_ns\": {}, \
         \"busy_ns\": {}, \"events\": {}, \"speedup\": {:.4}, \"shards\": [",
        report.label,
        s.threads,
        s.jobs,
        s.wall_ns,
        s.busy_ns(),
        s.events(),
        s.speedup()
    );
    for (i, shard) in s.shards.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"jobs\": {}, \"busy_ns\": {}, \"events\": {}}}",
            if i == 0 { "" } else { ", " },
            shard.jobs,
            shard.busy_ns,
            shard.events
        );
    }
    out.push_str("]}");
}

fn main() -> ExitCode {
    let options = match parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!(
                "{msg}\nusage: bench_sweep [--quick|--full] [--seed N] [--threads N] [--out PATH]"
            );
            return ExitCode::FAILURE;
        }
    };
    let available = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let threads = options.threads.unwrap_or(available);

    let mut runner = ExperimentRunner::new(options.effort, options.seed);
    if let Some(t) = options.threads {
        runner = runner.with_threads(t);
    }
    eprintln!(
        "# bench_sweep: {:?} effort, seed {}, {threads} worker(s), {available} CPU(s)",
        options.effort, options.seed
    );
    if let Err(e) = run_all(&runner) {
        eprintln!("experiment failed: {e}");
        return ExitCode::FAILURE;
    }
    let stages = runner.take_stages();

    // Thread-scaling probe on fig8 (the widest frequency sweep): run it
    // once single-threaded and once at the configured worker count. On
    // a single-CPU container the ratio only measures sharding overhead,
    // so the JSON records `available_parallelism` for the consumer to
    // gate speedup expectations on.
    let single = ExperimentRunner::new(options.effort, options.seed).with_threads(1);
    let t0 = Instant::now();
    if let Err(e) = fig8::run_with(&single) {
        eprintln!("fig8 scaling probe failed: {e}");
        return ExitCode::FAILURE;
    }
    let wall_1 = t0.elapsed().as_nanos();
    let multi = ExperimentRunner::new(options.effort, options.seed).with_threads(threads);
    let t0 = Instant::now();
    if let Err(e) = fig8::run_with(&multi) {
        eprintln!("fig8 scaling probe failed: {e}");
        return ExitCode::FAILURE;
    }
    let wall_n = t0.elapsed().as_nanos();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"strentropy-bench-sweep/1\",");
    let _ = writeln!(
        json,
        "  \"effort\": \"{}\",",
        match options.effort {
            Effort::Quick => "quick",
            Effort::Full => "full",
        }
    );
    let _ = writeln!(json, "  \"seed\": {},", options.seed);
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"available_parallelism\": {available},");
    let _ = writeln!(
        json,
        "  \"totals\": {{\"stages\": {}, \"jobs\": {}, \"wall_ns\": {}, \"events\": {}}},",
        stages.len(),
        stages.iter().map(|s| s.stats.jobs).sum::<usize>(),
        stages.iter().map(|s| s.stats.wall_ns).sum::<u128>(),
        stages.iter().map(|s| s.stats.events()).sum::<u64>()
    );
    let _ = writeln!(
        json,
        "  \"fig8_scaling\": {{\"threads\": {threads}, \"wall_ns_1\": {wall_1}, \
         \"wall_ns_n\": {wall_n}, \"speedup\": {:.4}}},",
        wall_1 as f64 / wall_n.max(1) as f64
    );
    json.push_str("  \"stages\": [\n");
    for (i, report) in stages.iter().enumerate() {
        stage_json(&mut json, report);
        json.push_str(if i + 1 == stages.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&options.out, &json) {
        eprintln!("cannot write {}: {e}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!(
        "# wrote {} ({} stages, fig8 speedup {:.2}x at {threads} thread(s))",
        options.out,
        stages.len(),
        wall_1 as f64 / wall_n.max(1) as f64
    );
    ExitCode::SUCCESS
}
