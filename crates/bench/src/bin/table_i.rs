//! Regenerates the paper's table1 result. See `strentropy::experiments::table1`.

use std::process::ExitCode;

fn main() -> ExitCode {
    strent_bench::repro_main("table_i", strentropy::experiments::table1::run)
}
