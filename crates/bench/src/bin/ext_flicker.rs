//! Regenerates the ext_flicker extension result. See `strentropy::experiments::ext_flicker`.

use std::process::ExitCode;

fn main() -> ExitCode {
    strent_bench::repro_main("ext_flicker", strentropy::experiments::ext_flicker::run)
}
