//! Regenerates the paper's table2 result. See `strentropy::experiments::table2`.

use std::process::ExitCode;

fn main() -> ExitCode {
    strent_bench::repro_main("table_ii", strentropy::experiments::table2::run)
}
