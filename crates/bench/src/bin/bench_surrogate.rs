//! Emits `BENCH_surrogate.json`: sampled-bit throughput of the
//! calibrated surrogate tier against the full discrete-event stream on
//! the three serving presets, plus the period-moment agreement the
//! speedup is conditional on (see `docs/surrogate.md`).
//!
//! Both backends are driven through [`EntropySource`] — the same
//! chunked advance/sample/prune loop the serving layer uses — so the
//! measured ratio is the one a pool actually sees. Calibration cost is
//! reported separately: it is a one-time spend per `(ring, board,
//! seed)`, not part of the steady-state samples/s.
//!
//! The JSON is hand-formatted — the workspace builds offline against
//! stub crates, so no serializer is assumed.
//!
//! Usage: `bench_surrogate [--quick|--full] [--seed N] [--out PATH]`
//! (default `--quick`, `BENCH_surrogate.json` in the current
//! directory).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use strent_rings::measure::{self, RingRun, WARMUP_PERIODS};
use strent_rings::stream::StreamConfig;
use strent_rings::surrogate::{Calibrator, EntropySource, SourceBackend, SurrogateStream};
use strent_rings::RingError;
use strent_sim::{RngTree, Time};
use strent_trng::sampler::Sampler;
use strentropy::pool::{RingSpec, SourceSpec};

/// Sampler period as a multiple of the ring period — matches the
/// serving default's order of magnitude while staying incommensurate
/// with the waveform.
const SAMPLE_PERIOD_FACTOR: f64 = 2.37;

/// Samples produced per chunk before pruning the consumed waveform.
const CHUNK: usize = 4096;

/// RNG key for the sampler's metastability draws.
const SAMPLER_RNG_KEY: u64 = 0xBE7C_5A3D;

struct Options {
    quick: bool,
    seed: u64,
    out: String,
}

fn parse(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut options = Options {
        quick: true,
        seed: strentropy::calibration::PAPER_SEED,
        out: "BENCH_surrogate.json".to_owned(),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--full" => options.quick = false,
            "--seed" => {
                let value = args.next().ok_or("--seed requires a value")?;
                options.seed = value.parse().map_err(|_| format!("invalid seed: {value}"))?;
            }
            "--out" => options.out = args.next().ok_or("--out requires a value")?.clone(),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(options)
}

/// One backend's measured steady-state throughput.
struct Throughput {
    wall_ns: u128,
    samples: usize,
    /// Time spent in [`EntropySource::build`] (calibration for the
    /// surrogate, netlist construction for the full sim).
    build_ns: u128,
    backend: SourceBackend,
    ones_fraction: f64,
}

impl Throughput {
    fn samples_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.samples as f64 * 1e9 / self.wall_ns as f64
    }
}

/// Drives `samples` sampled bits through the serving-style chunked
/// loop (advance the waveform, sample a chunk, prune what was
/// consumed) and reports the best wall time of `reps` runs.
fn probe_backend(
    ring: &RingSpec,
    seed: u64,
    backend: SourceBackend,
    samples: usize,
    reps: usize,
) -> Result<Throughput, RingError> {
    let spec = SourceSpec::new(*ring, seed);
    let board = spec.board(0);
    let config = ring.stream_config();
    let mut best: Option<Throughput> = None;
    for _ in 0..reps {
        let build_started = Instant::now();
        let mut source = EntropySource::build(&config, &board, seed, None, backend)?;
        let build_ns = build_started.elapsed().as_nanos();
        let period = source.expected_period_ps();
        let sample_ps = SAMPLE_PERIOD_FACTOR * period;
        let sampler = Sampler::new(sample_ps, 0.0).expect("valid sampler");
        let mut rng = RngTree::new(seed).stream(SAMPLER_RNG_KEY);
        let warmup_ps = WARMUP_PERIODS as f64 * period;
        source.advance_by(warmup_ps)?;
        let mut cursor = source.now().as_ps().max(warmup_ps);
        let mut produced = 0usize;
        let mut ones = 0usize;
        let started = Instant::now();
        while produced < samples {
            let n = CHUNK.min(samples - produced);
            let span = n as f64 * sample_ps;
            while source.now().as_ps() < cursor + span {
                let deficit = cursor + span - source.now().as_ps();
                source.advance_by(deficit + period)?;
            }
            let bits = sampler
                .sample_trace_until(
                    source.trace(),
                    Time::from_ps(cursor),
                    n,
                    source.now(),
                    &mut rng,
                )
                .map_err(|_| RingError::NotOscillating {
                    observed_transitions: produced,
                })?;
            ones += bits.count_ones();
            cursor += span;
            source.prune_before(Time::from_ps(cursor));
            produced += n;
        }
        let probe = Throughput {
            wall_ns: started.elapsed().as_nanos(),
            samples,
            build_ns,
            backend: source.selected_backend(),
            ones_fraction: ones as f64 / samples as f64,
        };
        if best.as_ref().is_none_or(|b| probe.wall_ns < b.wall_ns) {
            best = Some(probe);
        }
    }
    Ok(best.expect("at least one rep ran"))
}

/// Mean and standard deviation of a period series.
fn moments(periods_ps: &[f64]) -> (f64, f64) {
    let n = periods_ps.len().max(1) as f64;
    let mean = periods_ps.iter().sum::<f64>() / n;
    let var = periods_ps.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Period moments from the event-driven reference run.
fn full_sim_moments(ring: &RingSpec, seed: u64, periods: usize) -> Result<(f64, f64), RingError> {
    let board = SourceSpec::new(*ring, seed).board(0);
    let run: RingRun = match ring.stream_config() {
        StreamConfig::Iro(config) => measure::run_iro(&config, &board, seed, periods)?,
        StreamConfig::Str(config) => measure::run_str(&config, &board, seed, periods)?,
    };
    Ok(moments(&run.periods_ps))
}

/// Period moments from a calibrated surrogate replay (same warm-up
/// discard as the event-driven runners).
fn surrogate_moments(ring: &RingSpec, seed: u64, periods: usize) -> Result<(f64, f64), RingError> {
    let board = SourceSpec::new(*ring, seed).board(0);
    let model = Calibrator::default().fit(&ring.stream_config(), &board, seed)?;
    let mut stream = SurrogateStream::new(model, seed);
    stream.next_periods(WARMUP_PERIODS);
    stream.prune_before(stream.now());
    Ok(moments(&stream.next_periods(periods)))
}

fn main() -> ExitCode {
    let options = match parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}\nusage: bench_surrogate [--quick|--full] [--seed N] [--out PATH]");
            return ExitCode::FAILURE;
        }
    };
    let (samples, moment_periods, reps) = if options.quick {
        (60_000, 2_000, 2)
    } else {
        (250_000, 8_000, 3)
    };
    eprintln!(
        "# bench_surrogate: {} samples/preset, seed {}, best of {reps}",
        samples, options.seed
    );

    let presets = [RingSpec::Str32, RingSpec::Str64, RingSpec::Iro32];
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"strentropy-bench-surrogate/1\",");
    let _ = writeln!(
        json,
        "  \"effort\": \"{}\",",
        if options.quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"seed\": {},", options.seed);
    let _ = writeln!(json, "  \"sample_period_factor\": {SAMPLE_PERIOD_FACTOR},");
    let _ = writeln!(json, "  \"samples_per_preset\": {samples},");
    let _ = writeln!(json, "  \"moment_periods\": {moment_periods},");
    json.push_str("  \"presets\": [\n");

    let mut str32_speedup = 0.0;
    for (i, ring) in presets.iter().enumerate() {
        let full = match probe_backend(ring, options.seed, SourceBackend::FullSim, samples, reps) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{} full-sim probe failed: {e}", ring.label());
                return ExitCode::FAILURE;
            }
        };
        let surr = match probe_backend(ring, options.seed, SourceBackend::Surrogate, samples, reps)
        {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{} surrogate probe failed: {e}", ring.label());
                return ExitCode::FAILURE;
            }
        };
        if surr.backend != SourceBackend::Surrogate {
            eprintln!("{} unexpectedly fell back to the full sim", ring.label());
            return ExitCode::FAILURE;
        }
        let (full_mean, full_sigma) = match full_sim_moments(ring, options.seed, moment_periods) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("{} full-sim moments failed: {e}", ring.label());
                return ExitCode::FAILURE;
            }
        };
        let (surr_mean, surr_sigma) = match surrogate_moments(ring, options.seed, moment_periods) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("{} surrogate moments failed: {e}", ring.label());
                return ExitCode::FAILURE;
            }
        };
        let speedup = surr.samples_per_sec() / full.samples_per_sec().max(1e-9);
        if *ring == RingSpec::Str32 {
            str32_speedup = speedup;
        }
        eprintln!(
            "# {}: full {:.0} samples/s, surrogate {:.0} samples/s ({speedup:.1}x)",
            ring.label(),
            full.samples_per_sec(),
            surr.samples_per_sec()
        );
        let _ = writeln!(json, "    {{\"label\": \"{}\",", ring.label());
        let _ = writeln!(
            json,
            "     \"full_sim\": {{\"wall_ns\": {}, \"samples_per_sec\": {:.0}, \
             \"build_ns\": {}, \"ones_fraction\": {:.4}, \
             \"period_mean_ps\": {:.4}, \"period_sigma_ps\": {:.4}}},",
            full.wall_ns,
            full.samples_per_sec(),
            full.build_ns,
            full.ones_fraction,
            full_mean,
            full_sigma
        );
        let _ = writeln!(
            json,
            "     \"surrogate\": {{\"wall_ns\": {}, \"samples_per_sec\": {:.0}, \
             \"calibration_ns\": {}, \"ones_fraction\": {:.4}, \
             \"period_mean_ps\": {:.4}, \"period_sigma_ps\": {:.4}}},",
            surr.wall_ns,
            surr.samples_per_sec(),
            surr.build_ns,
            surr.ones_fraction,
            surr_mean,
            surr_sigma
        );
        let _ = writeln!(
            json,
            "     \"speedup\": {:.3}, \"mean_rel_err\": {:.6}, \"sigma_ratio\": {:.4}}}{}",
            speedup,
            (surr_mean - full_mean).abs() / full_mean,
            surr_sigma / full_sigma.max(1e-12),
            if i + 1 == presets.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"str32_speedup\": {str32_speedup:.3}");
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&options.out, &json) {
        eprintln!("cannot write {}: {e}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("# wrote {} (str32 speedup {str32_speedup:.1}x)", options.out);
    ExitCode::SUCCESS
}
