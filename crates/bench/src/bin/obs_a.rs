//! Regenerates the paper's obs_a result. See `strentropy::experiments::obs_a`.

use std::process::ExitCode;

fn main() -> ExitCode {
    strent_bench::repro_main("obs_a", strentropy::experiments::obs_a::run)
}
