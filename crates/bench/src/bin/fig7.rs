//! Regenerates the paper's fig7 result. See `strentropy::experiments::fig7`.

use std::process::ExitCode;

fn main() -> ExitCode {
    strent_bench::repro_main("fig7", strentropy::experiments::fig7::run)
}
