//! Regenerates the ext_charlie ablation result. See `strentropy::experiments::ext_charlie`.

use std::process::ExitCode;

fn main() -> ExitCode {
    strent_bench::repro_main("ext_charlie", strentropy::experiments::ext_charlie::run)
}
