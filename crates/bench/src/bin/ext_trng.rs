//! Regenerates the paper's ext_trng result. See `strentropy::experiments::ext_trng`.

use std::process::ExitCode;

fn main() -> ExitCode {
    strent_bench::repro_main("ext_trng", strentropy::experiments::ext_trng::run)
}
