//! Regenerates the ext_coherent extension result. See `strentropy::experiments::ext_coherent`.

use std::process::ExitCode;

fn main() -> ExitCode {
    strent_bench::repro_main("ext_coherent", strentropy::experiments::ext_coherent::run)
}
