//! Regenerates every table and figure of the paper in one run — the
//! source of `EXPERIMENTS.md`'s measured numbers.

use std::process::ExitCode;
use std::time::Instant;

use strent_bench::ReproOptions;
use strentropy::experiments;

fn main() -> ExitCode {
    let options = match ReproOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}\nusage: repro_all [--quick|--full] [--seed N]");
            return ExitCode::FAILURE;
        }
    };
    let (effort, seed) = (options.effort, options.seed);
    eprintln!("# repro_all ({effort:?} effort, seed {seed})");

    macro_rules! section {
        ($id:literal, $module:ident) => {
            let start = Instant::now();
            println!("\n================ {} ================", $id);
            match experiments::$module::run(effort, seed) {
                Ok(result) => println!("{result}"),
                Err(err) => {
                    eprintln!("{} failed: {err}", $id);
                    return ExitCode::FAILURE;
                }
            }
            eprintln!("[{} done in {:.1}s]", $id, start.elapsed().as_secs_f64());
        };
    }

    section!("FIG5", fig5);
    section!("FIG7", fig7);
    section!("FIG8", fig8);
    section!("TAB1", table1);
    section!("TAB2", table2);
    section!("FIG9", fig9);
    section!("FIG11", fig11);
    section!("FIG12", fig12);
    section!("OBS-A", obs_a);
    section!("EXT-DET", ext_det);
    section!("EXT-METHOD", ext_method);
    section!("EXT-TRNG", ext_trng);
    section!("EXT-MODE", ext_mode);
    section!("EXT-CHARLIE", ext_charlie);
    section!("EXT-FLICKER", ext_flicker);
    section!("EXT-RESTART", ext_restart);
    section!("EXT-MULTI", ext_multi);
    section!("EXT-COHERENT", ext_coherent);
    ExitCode::SUCCESS
}
