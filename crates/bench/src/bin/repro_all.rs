//! Regenerates every table and figure of the paper in one run — the
//! source of `EXPERIMENTS.md`'s measured numbers.
//!
//! By default a failing section aborts the run. Under `--keep-going`
//! the remaining sections still execute, partial output is kept, and a
//! JSON failure report lands on stderr before the (still non-zero)
//! exit — the experiment-level analogue of the sweep layer's partial
//! results + failure manifest.

use std::process::ExitCode;
use std::time::Instant;

use strent_bench::{section_failure_report, ReproOptions};
use strentropy::experiments;

fn main() -> ExitCode {
    let options = match ReproOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}\nusage: repro_all [--quick|--full] [--seed N] [--keep-going]");
            return ExitCode::FAILURE;
        }
    };
    let (effort, seed) = (options.effort, options.seed);
    eprintln!("# repro_all ({effort:?} effort, seed {seed})");

    let mut sections = 0usize;
    let mut failures: Vec<(String, String)> = Vec::new();

    macro_rules! section {
        ($id:literal, $module:ident) => {
            sections += 1;
            let start = Instant::now();
            println!("\n================ {} ================", $id);
            match experiments::$module::run(effort, seed) {
                Ok(result) => {
                    println!("{result}");
                    eprintln!("[{} done in {:.1}s]", $id, start.elapsed().as_secs_f64());
                }
                Err(err) => {
                    eprintln!("{} failed: {err}", $id);
                    if !options.keep_going {
                        return ExitCode::FAILURE;
                    }
                    failures.push(($id.to_owned(), err.to_string()));
                }
            }
        };
    }

    section!("FIG5", fig5);
    section!("FIG7", fig7);
    section!("FIG8", fig8);
    section!("TAB1", table1);
    section!("TAB2", table2);
    section!("FIG9", fig9);
    section!("FIG11", fig11);
    section!("FIG12", fig12);
    section!("OBS-A", obs_a);
    section!("EXT-DET", ext_det);
    section!("EXT-METHOD", ext_method);
    section!("EXT-TRNG", ext_trng);
    section!("EXT-MODE", ext_mode);
    section!("EXT-CHARLIE", ext_charlie);
    section!("EXT-FLICKER", ext_flicker);
    section!("EXT-RESTART", ext_restart);
    section!("EXT-MULTI", ext_multi);
    section!("EXT-COHERENT", ext_coherent);

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("{}", section_failure_report(sections, &failures));
        ExitCode::FAILURE
    }
}
