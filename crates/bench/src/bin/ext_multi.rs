//! Regenerates the ext_multi extension result. See `strentropy::experiments::ext_multi`.

use std::process::ExitCode;

fn main() -> ExitCode {
    strent_bench::repro_main("ext_multi", strentropy::experiments::ext_multi::run)
}
