//! Regenerates the paper's fig12 result. See `strentropy::experiments::fig12`.

use std::process::ExitCode;

fn main() -> ExitCode {
    strent_bench::repro_main("fig12", strentropy::experiments::fig12::run)
}
