//! Regenerates the paper's ext_mode result. See `strentropy::experiments::ext_mode`.

use std::process::ExitCode;

fn main() -> ExitCode {
    strent_bench::repro_main("ext_mode", strentropy::experiments::ext_mode::run)
}
