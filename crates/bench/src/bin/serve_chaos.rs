//! Chaos drill for `strent-serve`: injects a seed-deterministic fault
//! plan into a live service and asserts the self-healing contract,
//! emitting `BENCH_chaos.json` (schema `strentropy-bench-chaos/1`) with
//! five sections:
//!
//! * `determinism` — deterministic round-barrier runs at 1, 2 and 8
//!   shards, chaos OFF and chaos ON (worker panic plus scheduler
//!   panic/stall), and chaos ON across three distinct chaos seeds: the
//!   served byte stream must be bit-identical in every run, proving
//!   recovery is byte-transparent;
//! * `recovery` — a fair-mode run with the plan's scheduler panic and
//!   stall armed, every grant latency measured: the service must
//!   restart, serve every request, and keep the worst grant under the
//!   recovery bound (no unbounded outage, no silent drop);
//! * `quarantine_storm` — a shard driven through its restart budget by
//!   a panic-on-every-poll storm must escalate, be quarantined, and
//!   have new clients rerouted to its healthy sibling;
//! * `uds` — misbehaving socket clients against the poll frontend:
//!   slowloris (reaped by the idle timeout), poison frames (typed `ERR`
//!   under the error budget, closed past it, with a valid request still
//!   served in between), a mid-frame partial write, and a mid-stream
//!   disconnect with a request outstanding — with full request
//!   accounting proving zero silent drops;
//! * `drain` — the graceful shutdown state machine on both the socket
//!   frontend and the scheduler tier must report a clean drain.
//!
//! Every injection parameter derives from `--seed` (see
//! `strent_serve::chaos::ChaosPlan`); the drill replays identically.
//! The JSON is hand-formatted — the workspace builds offline against
//! stub crates, so no serializer is assumed.
//!
//! Usage: `serve_chaos [--quick|--full] [--seed N] [--out PATH]`
//! (default `--quick`, `BENCH_chaos.json` in the current directory).

use std::fmt::Write as _;
use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::process::ExitCode;
use std::thread;
use std::time::{Duration, Instant};

use strent_serve::wire::{self, OP_ERR, OP_HELLO, OP_HELLO_OK, OP_OK, OP_REQ};
use strent_serve::{
    ChaosInjector, ChaosPlan, EntropyService, RestartPolicy, SchedulerMode, ServeConfig,
    ServerOptions, UdsClient, UdsServer,
};
use strent_trng::postprocess::ConditionerKind;
use strent_rings::surrogate::SourceBackend;
use strentropy::pool::PoolConfig;

/// Shard counts the determinism section digests the stream at.
const SHARD_SWEEP: [usize; 3] = [1, 2, 8];

/// Worst tolerated grant latency while the scheduler is panicking,
/// stalling and restarting (the bounded-recovery assertion).
const RECOVERY_BOUND_MS: f64 = 5_000.0;

/// Idle timeout of the UDS drill server — the slowloris trip wire.
const DRILL_IDLE_TIMEOUT: Duration = Duration::from_millis(300);

/// Error budget of the UDS drill server.
const DRILL_ERROR_BUDGET: u32 = 4;

struct Options {
    full: bool,
    seed: u64,
    out: String,
    clients: usize,
    requests: usize,
    bytes: usize,
}

fn parse(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut options = Options {
        full: false,
        seed: 42,
        out: "BENCH_chaos.json".to_owned(),
        clients: 3,
        requests: 6,
        bytes: 32,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.full = false,
            "--full" => options.full = true,
            "--seed" => {
                let value = args.next().ok_or("--seed requires a value")?;
                options.seed = value.parse().map_err(|_| format!("invalid seed: {value}"))?;
            }
            "--out" => options.out = args.next().ok_or("--out requires a value")?.clone(),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if options.full {
        options.requests *= 3;
    }
    Ok(options)
}

/// The drill pool: raw conditioner (stream content is what's digested)
/// on the calibrated surrogate fast path, small batches so the worker
/// panic trigger fires early.
fn chaos_pool(sources: usize, seed: u64) -> PoolConfig {
    let mut config = PoolConfig::mixed_default(sources, seed);
    config.conditioner = ConditionerKind::Raw;
    config.sample_period_factor = 2.37;
    config.batch_raw_bits = 64;
    config.warmup_periods = 16.0;
    config.with_backend(SourceBackend::Surrogate)
}

/// Arms the plan's worker-panic trigger on its chosen pool slot.
fn arm_worker_panic(config: &mut PoolConfig, plan: &ChaosPlan) {
    let slot = plan.worker_panic_source % config.sources.len();
    config.sources[slot] =
        config.sources[slot]
            .clone()
            .with_panic_after(plan.worker_panic_after_batches);
}

/// FNV-1a 64-bit — a stable stream digest with no dependencies.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The deterministic request trace: sizes vary by (client, round) so
/// the allocation exercises uneven grants while staying a pure function
/// of the drill parameters.
fn request_size(options: &Options, client: usize, round: usize) -> usize {
    1 + (options.bytes + client * 7 + round * 3) % (2 * options.bytes)
}

// ---------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------

/// One deterministic-mode run, optionally with the full chaos plan
/// injected. Returns the concatenated served stream (client order) and
/// the number of injected-fault incidents recorded.
fn deterministic_run(
    options: &Options,
    shards: usize,
    chaos_seed: Option<u64>,
) -> Result<(Vec<u8>, usize), String> {
    let mut pool = chaos_pool(options.clients.max(2), options.seed);
    let mut chaos = None;
    if let Some(seed) = chaos_seed {
        let plan = ChaosPlan::derive(seed);
        arm_worker_panic(&mut pool, &plan);
        chaos = Some(ChaosInjector::from_plan(&plan, 1));
    }
    let mut config = ServeConfig::new(
        pool,
        SchedulerMode::Deterministic {
            expected_clients: options.clients,
        },
    );
    config.workers = 2;
    config.shards = shards;
    config.chaos = chaos;
    let service =
        EntropyService::start(&config).map_err(|e| format!("service start failed: {e}"))?;
    let mut handles = Vec::new();
    for client_id in 0..options.clients {
        let client = service
            .connect(u32::try_from(client_id).expect("small id"))
            .map_err(|e| format!("client {client_id} failed to register: {e}"))?;
        let sizes: Vec<usize> = (0..options.requests)
            .map(|round| request_size(options, client_id, round))
            .collect();
        handles.push(thread::spawn(move || {
            let mut stream = Vec::new();
            for nbytes in sizes {
                match client.request(nbytes) {
                    Ok(grant) => stream.extend(grant),
                    Err(e) => return Err(format!("grant failed: {e}")),
                }
            }
            client.close();
            Ok(stream)
        }));
    }
    let mut concat = Vec::new();
    for (client_id, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(Ok(stream)) => concat.extend(stream),
            Ok(Err(e)) => return Err(format!("client {client_id}: {e}")),
            Err(_) => return Err(format!("client {client_id} panicked")),
        }
    }
    let injected = service.incidents().count_of("panic");
    service
        .shutdown()
        .map_err(|e| format!("shutdown failed: {e}"))?;
    Ok((concat, injected))
}

struct DeterminismSection {
    /// (shards, chaos_on, digest) per run of the shard sweep.
    shard_digests: Vec<(usize, bool, u64)>,
    /// (chaos_seed, digest) at 1 shard, chaos on.
    seed_digests: Vec<(u64, u64)>,
    bytes_per_run: usize,
    identical: bool,
    injected_panics: usize,
}

fn determinism(options: &Options) -> Result<DeterminismSection, String> {
    let mut shard_digests = Vec::new();
    let mut bytes_per_run = 0usize;
    let mut injected = 0usize;
    for shards in SHARD_SWEEP {
        for chaos_on in [false, true] {
            let seed = chaos_on.then_some(options.seed);
            let (stream, panics) = deterministic_run(options, shards, seed)?;
            if chaos_on && panics == 0 {
                return Err(format!(
                    "chaos-on run at {shards} shards injected nothing — the drill is vacuous"
                ));
            }
            injected += panics;
            bytes_per_run = stream.len();
            shard_digests.push((shards, chaos_on, fnv1a(&stream)));
        }
    }
    // Distinct chaos seeds reshape the fault schedule; the bytes must
    // not move.
    let mut seed_digests = Vec::new();
    for offset in [1u64, 2] {
        let seed = options.seed.wrapping_add(offset * 0x9E37);
        let (stream, panics) = deterministic_run(options, 1, Some(seed))?;
        if panics == 0 {
            return Err(format!("chaos seed {seed} injected nothing"));
        }
        injected += panics;
        seed_digests.push((seed, fnv1a(&stream)));
    }
    let reference = shard_digests[0].2;
    let identical = shard_digests.iter().all(|&(_, _, d)| d == reference)
        && seed_digests.iter().all(|&(_, d)| d == reference);
    Ok(DeterminismSection {
        shard_digests,
        seed_digests,
        bytes_per_run,
        identical,
        injected_panics: injected,
    })
}

// ---------------------------------------------------------------------
// recovery latency
// ---------------------------------------------------------------------

struct RecoverySection {
    requests: usize,
    grants: usize,
    max_grant_ms: f64,
    bound_ms: f64,
    restarts: usize,
    panics: usize,
    stalls: u64,
    bounded: bool,
}

/// Fair-mode service with the plan's scheduler panic and stall armed on
/// its one shard; every grant is timed through the outage.
fn recovery(options: &Options) -> Result<RecoverySection, String> {
    let plan = ChaosPlan::derive(options.seed);
    let injector = ChaosInjector::from_plan(&plan, 1);
    let mut config = ServeConfig::new(
        chaos_pool(2, options.seed),
        SchedulerMode::Fair { max_in_flight: 8 },
    );
    config.shards = 1;
    config.chaos = Some(injector.clone());
    let service =
        EntropyService::start(&config).map_err(|e| format!("service start failed: {e}"))?;
    let client = service.connect(0).map_err(|e| format!("register: {e}"))?;
    let requests = (options.requests * 4).max(16);
    let mut grants = 0usize;
    let mut max_grant_ms = 0f64;
    for round in 0..requests {
        let nbytes = request_size(options, 0, round);
        let begin = Instant::now();
        let grant = client
            .request(nbytes)
            .map_err(|e| format!("grant {round} failed during chaos: {e}"))?;
        let elapsed_ms = begin.elapsed().as_secs_f64() * 1e3;
        max_grant_ms = max_grant_ms.max(elapsed_ms);
        if grant.len() == nbytes {
            grants += 1;
        }
    }
    client.close();
    let restarts = service.incidents().count_of("restarted");
    let panics = service.incidents().count_of("panic");
    let stalls = injector.stalls_fired();
    service
        .shutdown()
        .map_err(|e| format!("shutdown failed: {e}"))?;
    if panics == 0 {
        return Err("recovery drill injected no panic — the drill is vacuous".to_owned());
    }
    Ok(RecoverySection {
        requests,
        grants,
        max_grant_ms,
        bound_ms: RECOVERY_BOUND_MS,
        restarts,
        panics,
        stalls,
        bounded: grants == requests && max_grant_ms < RECOVERY_BOUND_MS,
    })
}

// ---------------------------------------------------------------------
// quarantine storm
// ---------------------------------------------------------------------

struct QuarantineSection {
    quarantined: bool,
    escalated: usize,
    rerouted_bytes: usize,
    wait_ms: f64,
}

/// Drives fair shard 0 through its restart budget with a
/// panic-on-every-poll storm; shard 1 must absorb the rerouted client.
fn quarantine_storm(options: &Options) -> Result<QuarantineSection, String> {
    let mut config = ServeConfig::new(
        chaos_pool(2, options.seed),
        SchedulerMode::Fair { max_in_flight: 8 },
    );
    config.shards = 2;
    config.chaos = Some(ChaosInjector::escalation_storm(0, 2));
    // A tight budget so the storm escalates in milliseconds.
    config.restart = RestartPolicy {
        initial_backoff: Duration::from_micros(50),
        max_backoff: Duration::from_micros(200),
        max_restarts: 2,
        window: Duration::from_secs(60),
        jitter_seed: options.seed,
    };
    let service =
        EntropyService::start(&config).map_err(|e| format!("service start failed: {e}"))?;
    let begin = Instant::now();
    let deadline = begin + Duration::from_secs(30);
    while !service.quarantined()[0] && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(2));
    }
    let wait_ms = begin.elapsed().as_secs_f64() * 1e3;
    let quarantined = service.quarantined()[0];
    // A client homed on the dead shard (id % 2 == 0) must reroute.
    let rerouted_bytes = if quarantined {
        let client = service
            .connector()
            .connect(0)
            .map_err(|e| format!("rerouted register: {e}"))?;
        let got = client
            .request(48)
            .map_err(|e| format!("rerouted grant: {e}"))?
            .len();
        client.close();
        got
    } else {
        0
    };
    let escalated = service.incidents().count_of("escalated");
    service
        .shutdown()
        .map_err(|e| format!("shutdown failed: {e}"))?;
    Ok(QuarantineSection {
        quarantined,
        escalated,
        rerouted_bytes,
        wait_ms,
    })
}

// ---------------------------------------------------------------------
// UDS drills
// ---------------------------------------------------------------------

/// Request-accounting ledger of the socket drills: every REQ frame the
/// drill fully writes is issued, and must come back as a grant, a typed
/// rejection/error, or a deliberately abandoned in-flight request — the
/// zero-silent-drop invariant.
#[derive(Default)]
struct Ledger {
    issued: u64,
    granted: u64,
    typed_rejections: u64,
    abandoned: u64,
}

impl Ledger {
    fn balanced(&self) -> bool {
        self.issued == self.granted + self.typed_rejections + self.abandoned
    }
}

struct UdsSection {
    slowloris_reaped: u64,
    poison_errs: u32,
    poison_survived: bool,
    poison_closed: bool,
    partial_write_survived: bool,
    disconnect_survived: bool,
    accepted: u64,
    protocol_errors: u64,
    issued: u64,
    granted: u64,
    typed_rejections: u64,
    abandoned: u64,
    zero_silent_drops: bool,
}

/// Raw socket helper: registers `id` over a bare stream so the drill
/// can send byte sequences no well-behaved client would.
fn raw_hello(path: &std::path::Path, id: u32) -> Result<UnixStream, String> {
    let mut stream = UnixStream::connect(path).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("timeout: {e}"))?;
    wire::write_frame(&mut stream, OP_HELLO, &id.to_le_bytes())
        .map_err(|e| format!("hello: {e}"))?;
    // Bounded by the read timeout set above.
    let (op, _) = wire::read_frame(&mut stream).map_err(|e| format!("hello reply: {e}"))?;
    if op != OP_HELLO_OK {
        return Err(format!("expected HELLO_OK, got 0x{op:02x}"));
    }
    Ok(stream)
}

#[allow(clippy::too_many_lines)]
fn uds_drills(options: &Options) -> Result<UdsSection, String> {
    let plan = ChaosPlan::derive(options.seed);
    let config = ServeConfig::new(
        chaos_pool(2, options.seed),
        SchedulerMode::Fair { max_in_flight: 8 },
    );
    let service =
        EntropyService::start(&config).map_err(|e| format!("service start failed: {e}"))?;
    let socket = std::env::temp_dir().join(format!(
        "strent-chaos-{}-{}.sock",
        options.seed,
        std::process::id()
    ));
    let server_options = ServerOptions {
        idle_timeout: Some(DRILL_IDLE_TIMEOUT),
        error_budget: DRILL_ERROR_BUDGET,
    };
    let server = UdsServer::start_with_options(service.connector(), &socket, server_options)
        .map_err(|e| format!("server start failed: {e}"))?;
    let stats = server.stats();
    let mut ledger = Ledger::default();

    // --- Poison frames: ERR under the budget, close past it, a valid
    // request served in between.
    let mut poison_errs = 0u32;
    let mut stream = raw_hello(&socket, 10)?;
    for _ in 0..DRILL_ERROR_BUDGET - 1 {
        wire::write_frame(&mut stream, plan.malformed_opcode, &[])
            .map_err(|e| format!("poison write: {e}"))?;
        // Bounded by the raw_hello read timeout.
        let (op, _) = wire::read_frame(&mut stream).map_err(|e| format!("poison reply: {e}"))?;
        if op == OP_ERR {
            poison_errs += 1;
        }
    }
    wire::write_frame(&mut stream, OP_REQ, &24u32.to_le_bytes())
        .map_err(|e| format!("req after poison: {e}"))?;
    ledger.issued += 1;
    let (op, payload) =
        wire::read_frame(&mut stream).map_err(|e| format!("grant after poison: {e}"))?;
    let poison_survived = op == OP_OK && payload.len() == 24;
    if poison_survived {
        ledger.granted += 1;
    } else {
        ledger.typed_rejections += 1;
    }
    // Spend the rest of the budget and one more: the final poison must
    // close the connection (ERR frames drain first, then EOF).
    let mut poison_closed = false;
    for _ in 0..=DRILL_ERROR_BUDGET {
        if wire::write_frame(&mut stream, plan.malformed_opcode, &[]).is_err() {
            poison_closed = true;
            break;
        }
        match wire::read_frame(&mut stream) {
            Ok((op, _)) if op == OP_ERR => poison_errs += 1,
            Ok(_) => {}
            Err(_) => {
                poison_closed = true;
                break;
            }
        }
    }
    drop(stream);

    // --- Partial write: a frame header cut mid-way, then a vanished
    // peer. The decoder must hold the fragment and the loop must not
    // stumble.
    {
        let mut stream = raw_hello(&socket, 11)?;
        let mut frame = Vec::new();
        wire::encode_frame(&mut frame, OP_REQ, &16u32.to_le_bytes())
            .map_err(|e| format!("encode: {e}"))?;
        stream
            .write_all(&frame[..plan.partial_write_len])
            .map_err(|e| format!("partial write: {e}"))?;
        // Dropping here is the interrupted write: never issued.
    }
    let mut probe = UdsClient::connect(&socket, 12).map_err(|e| format!("probe: {e}"))?;
    ledger.issued += 1;
    let partial_write_survived = match probe.request(16) {
        Ok(grant) => {
            ledger.granted += 1;
            grant.len() == 16
        }
        Err(_) => {
            ledger.typed_rejections += 1;
            false
        }
    };
    drop(probe);

    // --- Mid-stream disconnect: a client that completes the plan's
    // request count, writes one more REQ, and vanishes without reading
    // the reply. The grant lands on a stale generation and is dropped
    // by design — accounted as abandoned, not silent.
    {
        let mut stream = raw_hello(&socket, 13)?;
        for round in 0..plan.disconnect_after_requests {
            let nbytes = u32::try_from(request_size(options, 13, round)).expect("small");
            wire::write_frame(&mut stream, OP_REQ, &nbytes.to_le_bytes())
                .map_err(|e| format!("disconnect req: {e}"))?;
            ledger.issued += 1;
            let (op, _) =
                wire::read_frame(&mut stream).map_err(|e| format!("disconnect reply: {e}"))?;
            if op == OP_OK {
                ledger.granted += 1;
            } else {
                ledger.typed_rejections += 1;
            }
        }
        wire::write_frame(&mut stream, OP_REQ, &32u32.to_le_bytes())
            .map_err(|e| format!("abandoned req: {e}"))?;
        ledger.issued += 1;
        ledger.abandoned += 1;
        // Vanish with the request in flight.
    }
    let mut probe = UdsClient::connect(&socket, 14).map_err(|e| format!("probe2: {e}"))?;
    ledger.issued += 1;
    let disconnect_survived = match probe.request(16) {
        Ok(grant) => {
            ledger.granted += 1;
            grant.len() == 16
        }
        Err(_) => {
            ledger.typed_rejections += 1;
            false
        }
    };
    drop(probe);

    // --- Slowloris: register, then go silent; the idle reaper must
    // collect the connection and count it.
    let slow = UdsClient::connect(&socket, 15).map_err(|e| format!("slowloris: {e}"))?;
    let reap_deadline = Instant::now() + Duration::from_secs(15);
    while stats.idle_reaped() == 0 && Instant::now() < reap_deadline {
        thread::sleep(Duration::from_millis(25));
    }
    drop(slow);
    let slowloris_reaped = stats.idle_reaped();

    // --- The loop survived everything above: one final served request.
    let mut fresh = UdsClient::connect(&socket, 16).map_err(|e| format!("final probe: {e}"))?;
    ledger.issued += 1;
    match fresh.request(8) {
        Ok(_) => ledger.granted += 1,
        Err(_) => ledger.typed_rejections += 1,
    }
    drop(fresh);

    let accepted = stats.accepted();
    let protocol_errors = stats.protocol_errors();
    server.shutdown().map_err(|e| format!("server stop: {e}"))?;
    service
        .shutdown()
        .map_err(|e| format!("service stop: {e}"))?;
    let _ = std::fs::remove_file(&socket);
    Ok(UdsSection {
        slowloris_reaped,
        poison_errs,
        poison_survived,
        poison_closed,
        partial_write_survived,
        disconnect_survived,
        accepted,
        protocol_errors,
        issued: ledger.issued,
        granted: ledger.granted,
        typed_rejections: ledger.typed_rejections,
        abandoned: ledger.abandoned,
        zero_silent_drops: ledger.balanced(),
    })
}

// ---------------------------------------------------------------------
// graceful drain
// ---------------------------------------------------------------------

struct DrainSection {
    server_drained: bool,
    service_drained: bool,
    drain_ms: f64,
}

fn drain_drill(options: &Options) -> Result<DrainSection, String> {
    let config = ServeConfig::new(
        chaos_pool(2, options.seed),
        SchedulerMode::Fair { max_in_flight: 8 },
    );
    let service =
        EntropyService::start(&config).map_err(|e| format!("service start failed: {e}"))?;
    let socket = std::env::temp_dir().join(format!(
        "strent-chaos-drain-{}-{}.sock",
        options.seed,
        std::process::id()
    ));
    let server = UdsServer::start(service.connector(), &socket)
        .map_err(|e| format!("server start failed: {e}"))?;
    let mut client = UdsClient::connect(&socket, 1).map_err(|e| format!("register: {e}"))?;
    for _ in 0..4 {
        client.request(32).map_err(|e| format!("grant: {e}"))?;
    }
    client.close().map_err(|e| format!("close: {e}"))?;
    let begin = Instant::now();
    let server_drained = server
        .shutdown_graceful(Duration::from_secs(10))
        .map_err(|e| format!("server drain: {e}"))?;
    let service_drained = service
        .shutdown_graceful(Duration::from_secs(10))
        .map_err(|e| format!("service drain: {e}"))?;
    let drain_ms = begin.elapsed().as_secs_f64() * 1e3;
    let _ = std::fs::remove_file(&socket);
    Ok(DrainSection {
        server_drained,
        service_drained,
        drain_ms,
    })
}

// ---------------------------------------------------------------------
// report
// ---------------------------------------------------------------------

fn emit_json(
    options: &Options,
    det: &DeterminismSection,
    recovery: &RecoverySection,
    storm: &QuarantineSection,
    uds: &UdsSection,
    drain: &DrainSection,
) -> String {
    let plan = ChaosPlan::derive(options.seed);
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"strentropy-bench-chaos/1\",");
    let _ = writeln!(
        json,
        "  \"effort\": \"{}\",",
        if options.full { "full" } else { "quick" }
    );
    let _ = writeln!(json, "  \"seed\": {},", options.seed);
    let _ = writeln!(
        json,
        "  \"plan\": {{\"worker_panic_source\": {}, \"worker_panic_after_batches\": {}, \
         \"scheduler_panic_at_tick\": {}, \"scheduler_stall_at_tick\": {}, \
         \"stall_ms\": {}, \"malformed_opcode\": \"0x{:02x}\", \
         \"partial_write_len\": {}, \"disconnect_after_requests\": {}}},",
        plan.worker_panic_source,
        plan.worker_panic_after_batches,
        plan.scheduler_panic_at_tick,
        plan.scheduler_stall_at_tick,
        plan.stall_ms,
        plan.malformed_opcode,
        plan.partial_write_len,
        plan.disconnect_after_requests,
    );
    json.push_str("  \"determinism\": {\n");
    json.push_str("    \"runs\": [");
    for (i, (shards, chaos_on, digest)) in det.shard_digests.iter().enumerate() {
        let _ = write!(
            json,
            "{}{{\"shards\": {shards}, \"chaos\": {chaos_on}, \"fnv1a64\": \"{digest:016x}\"}}",
            if i == 0 { "" } else { ", " }
        );
    }
    json.push_str("],\n");
    json.push_str("    \"chaos_seed_runs\": [");
    for (i, (seed, digest)) in det.seed_digests.iter().enumerate() {
        let _ = write!(
            json,
            "{}{{\"chaos_seed\": {seed}, \"fnv1a64\": \"{digest:016x}\"}}",
            if i == 0 { "" } else { ", " }
        );
    }
    json.push_str("],\n");
    let _ = writeln!(json, "    \"bytes_per_run\": {},", det.bytes_per_run);
    let _ = writeln!(json, "    \"injected_panics\": {},", det.injected_panics);
    let _ = writeln!(json, "    \"identical\": {}", det.identical);
    json.push_str("  },\n");

    json.push_str("  \"recovery\": {\n");
    let _ = writeln!(json, "    \"requests\": {},", recovery.requests);
    let _ = writeln!(json, "    \"grants\": {},", recovery.grants);
    let _ = writeln!(json, "    \"max_grant_ms\": {:.3},", recovery.max_grant_ms);
    let _ = writeln!(json, "    \"bound_ms\": {:.1},", recovery.bound_ms);
    let _ = writeln!(json, "    \"panics\": {},", recovery.panics);
    let _ = writeln!(json, "    \"restarts\": {},", recovery.restarts);
    let _ = writeln!(json, "    \"stalls\": {},", recovery.stalls);
    let _ = writeln!(json, "    \"bounded\": {}", recovery.bounded);
    json.push_str("  },\n");

    json.push_str("  \"quarantine_storm\": {\n");
    let _ = writeln!(json, "    \"quarantined\": {},", storm.quarantined);
    let _ = writeln!(json, "    \"escalated_incidents\": {},", storm.escalated);
    let _ = writeln!(json, "    \"rerouted_bytes\": {},", storm.rerouted_bytes);
    let _ = writeln!(json, "    \"quarantine_wait_ms\": {:.1}", storm.wait_ms);
    json.push_str("  },\n");

    json.push_str("  \"uds\": {\n");
    let _ = writeln!(json, "    \"slowloris_reaped\": {},", uds.slowloris_reaped);
    let _ = writeln!(json, "    \"poison_errs\": {},", uds.poison_errs);
    let _ = writeln!(json, "    \"poison_survived\": {},", uds.poison_survived);
    let _ = writeln!(json, "    \"poison_closed\": {},", uds.poison_closed);
    let _ = writeln!(
        json,
        "    \"partial_write_survived\": {},",
        uds.partial_write_survived
    );
    let _ = writeln!(
        json,
        "    \"disconnect_survived\": {},",
        uds.disconnect_survived
    );
    let _ = writeln!(json, "    \"accepted\": {},", uds.accepted);
    let _ = writeln!(json, "    \"protocol_errors\": {},", uds.protocol_errors);
    let _ = writeln!(
        json,
        "    \"accounting\": {{\"issued\": {}, \"granted\": {}, \
         \"typed_rejections\": {}, \"abandoned\": {}}},",
        uds.issued, uds.granted, uds.typed_rejections, uds.abandoned
    );
    let _ = writeln!(json, "    \"zero_silent_drops\": {}", uds.zero_silent_drops);
    json.push_str("  },\n");

    json.push_str("  \"drain\": {\n");
    let _ = writeln!(json, "    \"server_drained\": {},", drain.server_drained);
    let _ = writeln!(json, "    \"service_drained\": {},", drain.service_drained);
    let _ = writeln!(json, "    \"drain_ms\": {:.1}", drain.drain_ms);
    json.push_str("  }\n}\n");
    json
}

fn main() -> ExitCode {
    let options = match parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(msg) => {
            eprintln!("{msg}\nusage: serve_chaos [--quick|--full] [--seed N] [--out PATH]");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# serve_chaos: seed {}, {} clients x {} requests (base {} bytes)",
        options.seed, options.clients, options.requests, options.bytes
    );
    let det = match determinism(&options) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("determinism section failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# determinism: {} bytes/run, {} injected panics, digests {}",
        det.bytes_per_run,
        det.injected_panics,
        if det.identical { "identical" } else { "DIVERGED" }
    );
    let rec = match recovery(&options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("recovery section failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# recovery: {}/{} grants, worst {:.1}ms (bound {:.0}ms), {} restarts, {} stalls",
        rec.grants, rec.requests, rec.max_grant_ms, rec.bound_ms, rec.restarts, rec.stalls
    );
    let storm = match quarantine_storm(&options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("quarantine storm failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# quarantine storm: quarantined={} after {:.0}ms, {} escalations, rerouted {} bytes",
        storm.quarantined, storm.wait_ms, storm.escalated, storm.rerouted_bytes
    );
    let uds = match uds_drills(&options) {
        Ok(u) => u,
        Err(e) => {
            eprintln!("uds drills failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# uds: reaped {}, poison errs {} (survived={}, closed={}), partial={}, \
         disconnect={}, accounting {}+{}+{} of {} issued",
        uds.slowloris_reaped,
        uds.poison_errs,
        uds.poison_survived,
        uds.poison_closed,
        uds.partial_write_survived,
        uds.disconnect_survived,
        uds.granted,
        uds.typed_rejections,
        uds.abandoned,
        uds.issued
    );
    let drain = match drain_drill(&options) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("drain drill failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# drain: server={}, service={}, {:.0}ms",
        drain.server_drained, drain.service_drained, drain.drain_ms
    );

    let failed = !det.identical
        || !rec.bounded
        || !storm.quarantined
        || storm.rerouted_bytes == 0
        || uds.slowloris_reaped == 0
        || !uds.poison_survived
        || !uds.poison_closed
        || !uds.partial_write_survived
        || !uds.disconnect_survived
        || !uds.zero_silent_drops
        || !drain.server_drained
        || !drain.service_drained;

    let json = emit_json(&options, &det, &rec, &storm, &uds, &drain);
    if let Err(e) = std::fs::write(&options.out, &json) {
        eprintln!("cannot write {}: {e}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("# wrote {}", options.out);
    if failed {
        eprintln!("serve_chaos: an invariant failed (see the JSON report)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
