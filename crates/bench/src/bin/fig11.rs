//! Regenerates the paper's fig11 result. See `strentropy::experiments::fig11`.

use std::process::ExitCode;

fn main() -> ExitCode {
    strent_bench::repro_main("fig11", strentropy::experiments::fig11::run)
}
