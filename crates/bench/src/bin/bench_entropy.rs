//! Emits `BENCH_entropy.json`: the cost and the calibration of the
//! entropy-estimation subsystem.
//!
//! Three sections:
//!
//! 1. **Estimator throughput** — the serving layer's sliding-window
//!    [`RateEstimator`] fed with deterministic pseudorandom bytes, per
//!    Markov order: bit-feed rate (the per-batch cost every pool slot
//!    pays) and verdict-evaluation rate (the on-demand
//!    `entropy_rate()` rebuild).
//! 2. **Bound-vs-Markov agreement** — the EXT-ENTROPY sweep rows
//!    (analytic min-entropy bound vs the order-`k` Markov estimate on
//!    the same physics), with the worst undercut compared against the
//!    documented [`AGREEMENT_BAND`].
//! 3. **Differential CMRR** — the paired-ring common-mode-rejection
//!    table from the same experiment.
//!
//! The JSON is hand-formatted — the workspace builds offline against
//! stub crates, so no serializer is assumed.
//!
//! Usage: `bench_entropy [--quick|--full] [--seed N] [--out PATH]`
//! (default `--quick`, `BENCH_entropy.json` in the current directory).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use strent_serve::RateEstimator;
use strent_sim::RngTree;
use strentropy::experiments::ext_entropy::{self, AGREEMENT_BAND, MARKOV_ORDER};
use strentropy::experiments::Effort;

/// Markov orders probed by the throughput section.
const ORDERS: [usize; 3] = [1, 2, 4];

/// Sliding-window size for the throughput probes — the serving
/// default's order of magnitude.
const WINDOW_BITS: usize = 4_096;

/// RNG key for the throughput byte stream.
const FEED_RNG_KEY: u64 = 0xE57B;

struct Options {
    quick: bool,
    seed: u64,
    out: String,
}

fn parse(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut options = Options {
        quick: true,
        seed: strentropy::calibration::PAPER_SEED,
        out: "BENCH_entropy.json".to_owned(),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--full" => options.quick = false,
            "--seed" => {
                let value = args.next().ok_or("--seed requires a value")?;
                options.seed = value.parse().map_err(|_| format!("invalid seed: {value}"))?;
            }
            "--out" => options.out = args.next().ok_or("--out requires a value")?.clone(),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(options)
}

/// One order's measured estimator cost.
struct EstimatorProbe {
    order: usize,
    feed_bits: usize,
    feed_ns: u128,
    evals: usize,
    eval_ns: u128,
    /// The final verdict, bits/bit — a sanity anchor (a balanced
    /// pseudorandom stream must score high).
    bits_per_bit: f64,
}

impl EstimatorProbe {
    fn feed_mbits_per_sec(&self) -> f64 {
        if self.feed_ns == 0 {
            return 0.0;
        }
        self.feed_bits as f64 * 1e3 / self.feed_ns as f64
    }

    fn evals_per_sec(&self) -> f64 {
        if self.eval_ns == 0 {
            return 0.0;
        }
        self.evals as f64 * 1e9 / self.eval_ns as f64
    }
}

/// Feeds `feed_bytes` pseudorandom bytes through a fresh estimator of
/// the given order, then times `evals` on-demand verdicts; best wall
/// time of `reps` runs per phase.
fn probe_estimator(
    order: usize,
    seed: u64,
    feed_bytes: usize,
    evals: usize,
    reps: usize,
) -> Result<EstimatorProbe, String> {
    let mut rng = RngTree::new(seed).stream(FEED_RNG_KEY);
    let bytes: Vec<u8> = (0..feed_bytes.div_ceil(8))
        .flat_map(|_| rng.next_u64().to_le_bytes())
        .take(feed_bytes)
        .collect();
    let mut best_feed: Option<u128> = None;
    let mut best_eval: Option<u128> = None;
    let mut bits_per_bit = 0.0;
    for _ in 0..reps {
        let mut estimator =
            RateEstimator::new(order, WINDOW_BITS).map_err(|e| format!("order {order}: {e}"))?;
        let started = Instant::now();
        estimator.feed_bytes(&bytes);
        let feed_ns = started.elapsed().as_nanos();
        let started = Instant::now();
        let mut verdict = None;
        for _ in 0..evals {
            verdict = estimator.entropy_rate();
        }
        let eval_ns = started.elapsed().as_nanos();
        bits_per_bit = verdict
            .ok_or_else(|| format!("order {order}: saturated window withheld a verdict"))?
            .bits_per_bit();
        if best_feed.is_none_or(|b| feed_ns < b) {
            best_feed = Some(feed_ns);
        }
        if best_eval.is_none_or(|b| eval_ns < b) {
            best_eval = Some(eval_ns);
        }
    }
    Ok(EstimatorProbe {
        order,
        feed_bits: feed_bytes * 8,
        feed_ns: best_feed.expect("at least one rep ran"),
        evals,
        eval_ns: best_eval.expect("at least one rep ran"),
        bits_per_bit,
    })
}

fn main() -> ExitCode {
    let options = match parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}\nusage: bench_entropy [--quick|--full] [--seed N] [--out PATH]");
            return ExitCode::FAILURE;
        }
    };
    let (feed_bytes, evals, reps, effort) = if options.quick {
        (262_144, 64, 2, Effort::Quick)
    } else {
        (1_048_576, 256, 3, Effort::Full)
    };
    eprintln!(
        "# bench_entropy: {} fed bytes/order, {evals} evals, seed {}, best of {reps}",
        feed_bytes, options.seed
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"strentropy-bench-entropy/1\",");
    let _ = writeln!(
        json,
        "  \"effort\": \"{}\",",
        if options.quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"seed\": {},", options.seed);
    let _ = writeln!(json, "  \"window_bits\": {WINDOW_BITS},");
    let _ = writeln!(json, "  \"feed_bytes_per_order\": {feed_bytes},");

    json.push_str("  \"estimator\": [\n");
    for (i, &order) in ORDERS.iter().enumerate() {
        let probe = match probe_estimator(order, options.seed, feed_bytes, evals, reps) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("estimator probe failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "# order {}: feed {:.1} Mbit/s, {:.0} evals/s, verdict {:.4} bits/bit",
            probe.order,
            probe.feed_mbits_per_sec(),
            probe.evals_per_sec(),
            probe.bits_per_bit
        );
        let _ = writeln!(
            json,
            "    {{\"order\": {}, \"feed_bits\": {}, \"feed_ns\": {}, \
             \"feed_mbits_per_sec\": {:.2}, \"evals\": {}, \"eval_ns\": {}, \
             \"evals_per_sec\": {:.0}, \"bits_per_bit\": {:.4}}}{}",
            probe.order,
            probe.feed_bits,
            probe.feed_ns,
            probe.feed_mbits_per_sec(),
            probe.evals,
            probe.eval_ns,
            probe.evals_per_sec(),
            probe.bits_per_bit,
            if i + 1 == ORDERS.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");

    let result = match ext_entropy::run(effort, options.seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("EXT-ENTROPY failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let _ = writeln!(json, "  \"markov_order\": {MARKOV_ORDER},");
    let _ = writeln!(json, "  \"agreement_band\": {AGREEMENT_BAND},");
    json.push_str("  \"agreement\": [\n");
    let mut worst = f64::INFINITY;
    for (i, row) in result.rows.iter().enumerate() {
        worst = worst.min(row.agreement());
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"factor\": {:.0}, \"ratio\": {:.6}, \
             \"bound\": {:.4}, \"shannon_bound\": {:.4}, \"markov\": {:.4}, \
             \"agreement\": {:.4}}}{}",
            row.label,
            row.factor,
            row.ratio,
            row.bound,
            row.shannon_bound,
            row.markov,
            row.agreement(),
            if i + 1 == result.rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"worst_agreement\": {worst:.4},");
    let within = worst >= -AGREEMENT_BAND;
    let _ = writeln!(json, "  \"within_band\": {within},");
    eprintln!("# worst agreement {worst:+.4} (band -{AGREEMENT_BAND})");

    json.push_str("  \"differential\": [\n");
    for (i, out) in result.differential.iter().enumerate() {
        eprintln!(
            "# {}: CMRR {:.1} dB, det/thermal {:.2}",
            out.label,
            out.cmrr_db(),
            out.det_to_thermal()
        );
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"single_tone_ps\": {:.3}, \
             \"differential_tone_ps\": {:.4}, \"cmrr_db\": {:.2}, \
             \"det_to_thermal\": {:.4}}}{}",
            out.label,
            out.single_tone_ps,
            out.differential_tone_ps,
            out.cmrr_db(),
            out.det_to_thermal(),
            if i + 1 == result.differential.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let min_cmrr = result
        .differential
        .iter()
        .map(|out| out.cmrr_db())
        .fold(f64::INFINITY, f64::min);
    let _ = writeln!(json, "  \"min_cmrr_db\": {min_cmrr:.2}");
    json.push_str("}\n");

    if !within {
        eprintln!("estimator undercut the bound beyond the band");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&options.out, &json) {
        eprintln!("cannot write {}: {e}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("# wrote {} (min CMRR {min_cmrr:.1} dB)", options.out);
    ExitCode::SUCCESS
}
