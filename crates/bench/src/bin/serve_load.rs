//! Load bench for `strent-serve`: drives the sharded, readiness-driven
//! service with deterministic request traces plus multiplexed socket
//! load, and emits `BENCH_serve.json` (schema
//! `strentropy-bench-serve/2`) with six sections:
//!
//! * `determinism` — the full served byte stream (deterministic
//!   round-barrier mode) digested at 1, 2 and 8 scheduler shards; the
//!   digests must be identical (the shard-count invariance contract)
//!   and must match a bare single-worker pool replay;
//! * `closed_loop` — saturation throughput vs client count (1, 16,
//!   128, 1024 multiplexed UDS connections, one outstanding request
//!   each): p50/p99/p999 grant latency and requests/s per point;
//! * `open_loop` — fixed-arrival-rate runs at fractions of the
//!   measured closed-loop saturation: achieved rate, tail latency and
//!   typed backpressure counts (the closed-loop numbers hide
//!   coordinated omission; these do not — see `docs/engine_perf.md`);
//! * `shard_scaling` — closed-loop saturation at 1/2/4/8 shards for
//!   both waveform backends (`full_sim`, `surrogate`), measured with
//!   in-process clients so the scheduler tier is isolated from the
//!   single-threaded socket frontend, with the 8-vs-1 speedup per
//!   backend;
//! * `backpressure` — a drill with tiny budgets proving all three
//!   typed classes (`BUSY`, `RATE_LIMITED`, `SHEDDING`) reach clients;
//! * `fault_drill` — a pool with one permanently clamped source: the
//!   slot must alarm, quarantine and replace its ring while the
//!   delivered stream re-passes the SP 800-90B monitors;
//! * `--smoke` additionally exercises the socket frontend end to end:
//!   a ≥1024-connection multiplexed drill through the poll event loop
//!   (no thread per connection), server counter checks, and a
//!   three-client deterministic byte-for-byte replay over real
//!   `UdsClient`s.
//!
//! The JSON is hand-formatted — the workspace builds offline against
//! stub crates, so no serializer is assumed.
//!
//! Usage: `serve_load [--quick|--full] [--seed N] [--clients N]
//! [--requests N] [--bytes N] [--out PATH] [--smoke] [--socket PATH]`
//! (default `--quick`, `BENCH_serve.json` in the current directory).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use strent_serve::mux::{self, LoadMode, MuxConfig, MuxReport};
use strent_serve::{
    EntropyService, RateLimit, SchedulerMode, ServeConfig, SourcePool, UdsClient, UdsServer,
};
use strent_sim::{Bit, FaultPlan};
use strent_trng::bits::BitString;
use strent_trng::health;
use strent_trng::postprocess::ConditionerKind;
use strent_rings::surrogate::SourceBackend;
use strentropy::pool::{PoolConfig, RingSpec, SourceSpec};

/// Shard counts the determinism section digests the stream at.
const SHARD_SWEEP: [usize; 3] = [1, 2, 8];

/// Shard counts the scaling section saturates at.
const SCALING_SHARDS: [usize; 4] = [1, 2, 4, 8];

/// In-process clients and per-shard in-flight budget for the
/// shard-scaling sweep (also emitted into the JSON `shard_scaling`
/// section so the committed artifact documents its own harness).
const SCALING_CLIENTS: usize = 64;
const SCALING_MAX_IN_FLIGHT: usize = 4;

/// Client counts the closed-loop section sweeps.
const CLIENT_SWEEP: [usize; 4] = [1, 16, 128, 1024];

/// Connections the smoke drill holds open through the poll frontend.
const SMOKE_CONNS: usize = 1024;

struct Options {
    full: bool,
    seed: u64,
    clients: usize,
    requests: usize,
    bytes: usize,
    out: String,
    smoke: bool,
    socket: Option<String>,
}

fn parse(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut options = Options {
        full: false,
        seed: 42,
        clients: 3,
        requests: 6,
        bytes: 32,
        out: "BENCH_serve.json".to_owned(),
        smoke: false,
        socket: None,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.full = false,
            "--full" => options.full = true,
            "--smoke" => options.smoke = true,
            "--seed" => {
                let value = args.next().ok_or("--seed requires a value")?;
                options.seed = value.parse().map_err(|_| format!("invalid seed: {value}"))?;
            }
            "--clients" => {
                let value = args.next().ok_or("--clients requires a value")?;
                options.clients =
                    value.parse().map_err(|_| format!("invalid clients: {value}"))?;
            }
            "--requests" => {
                let value = args.next().ok_or("--requests requires a value")?;
                options.requests =
                    value.parse().map_err(|_| format!("invalid requests: {value}"))?;
            }
            "--bytes" => {
                let value = args.next().ok_or("--bytes requires a value")?;
                options.bytes = value.parse().map_err(|_| format!("invalid bytes: {value}"))?;
            }
            "--out" => options.out = args.next().ok_or("--out requires a value")?.clone(),
            "--socket" => options.socket = Some(args.next().ok_or("--socket requires a value")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if options.full {
        options.requests *= 4;
        options.bytes *= 2;
    }
    if options.clients == 0 || options.requests == 0 || options.bytes == 0 {
        return Err("--clients/--requests/--bytes must be positive".to_owned());
    }
    Ok(options)
}

/// A pool configuration sized for the bench: raw conditioner (the
/// stream content is what's digested; conditioning ratios are covered
/// by the serve crate's own tests) and small batches for quick rounds.
fn bench_pool(sources: usize, seed: u64) -> PoolConfig {
    let mut config = PoolConfig::mixed_default(sources, seed);
    config.conditioner = ConditionerKind::Raw;
    config.sample_period_factor = 2.37;
    config.batch_raw_bits = 64;
    config.warmup_periods = 16.0;
    config
}

/// The bench pool on the calibrated surrogate fast path — the backend
/// the socket-load sections default to, so a sweep measures the
/// serving machinery rather than waveform simulation time.
fn surrogate_pool(sources: usize, seed: u64) -> PoolConfig {
    bench_pool(sources, seed).with_backend(SourceBackend::Surrogate)
}

/// FNV-1a 64-bit — a stable stream digest with no dependencies.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The deterministic request trace of one client: sizes vary by
/// (client, round) so the allocation exercises uneven grants while
/// staying a pure function of the bench parameters.
fn request_size(options: &Options, client: usize, round: usize) -> usize {
    1 + (options.bytes + client * 7 + round * 3) % (2 * options.bytes)
}

fn percentile_us(sorted_ns: &[u64], pct: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * pct).round() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)] as f64 / 1e3
}

/// p50/p99/p999 in microseconds from an unsorted latency vector.
fn tails_us(latencies_ns: &mut [u64]) -> (f64, f64, f64) {
    latencies_ns.sort_unstable();
    (
        percentile_us(latencies_ns, 0.50),
        percentile_us(latencies_ns, 0.99),
        percentile_us(latencies_ns, 0.999),
    )
}

// ---------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------

/// Serves every client's full trace in deterministic round-barrier mode
/// at the given shard count and returns the per-client streams, in
/// client-id order.
fn deterministic_run(options: &Options, shards: usize) -> Result<Vec<Vec<u8>>, String> {
    let mut config = ServeConfig::new(
        bench_pool(options.clients.max(2), options.seed),
        SchedulerMode::Deterministic {
            expected_clients: options.clients,
        },
    );
    config.workers = 2;
    config.shards = shards;
    let service =
        EntropyService::start(&config).map_err(|e| format!("service start failed: {e}"))?;
    let mut handles = Vec::new();
    for client_id in 0..options.clients {
        let client = service
            .connect(u32::try_from(client_id).expect("small id"))
            .map_err(|e| format!("client {client_id} failed to register: {e}"))?;
        let requests = options.requests;
        let sizes: Vec<usize> = (0..requests)
            .map(|round| request_size(options, client_id, round))
            .collect();
        handles.push(thread::spawn(move || {
            let mut stream = Vec::new();
            for nbytes in sizes {
                match client.request(nbytes) {
                    Ok(grant) => stream.extend(grant),
                    Err(e) => return Err(format!("grant failed: {e}")),
                }
            }
            client.close();
            Ok(stream)
        }));
    }
    let mut streams = Vec::with_capacity(options.clients);
    for (client_id, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(Ok(stream)) => streams.push(stream),
            Ok(Err(e)) => return Err(format!("client {client_id}: {e}")),
            Err(_) => return Err(format!("client {client_id} panicked")),
        }
    }
    service
        .shutdown()
        .map_err(|e| format!("shutdown failed: {e}"))?;
    Ok(streams)
}

/// Replays the expected allocation from a fresh single-worker pool: the
/// round barrier grants in ascending client id, so the pool stream is
/// consumed in (round, client) order.
fn replay_allocation(options: &Options, sources: usize) -> Result<Vec<Vec<u8>>, String> {
    let config = bench_pool(sources, options.seed);
    let mut pool = SourcePool::start(&config, 1).map_err(|e| format!("pool: {e}"))?;
    let mut streams = vec![Vec::new(); options.clients];
    for round in 0..options.requests {
        for (client_id, stream) in streams.iter_mut().enumerate() {
            let nbytes = request_size(options, client_id, round);
            let grant = pool.read_bytes(nbytes).map_err(|e| format!("read: {e}"))?;
            stream.extend(grant);
        }
    }
    pool.shutdown();
    Ok(streams)
}

struct DeterminismSection {
    digests: Vec<(usize, u64)>,
    bytes_per_run: usize,
    bit_identical: bool,
    matches_replay: bool,
}

fn determinism(options: &Options) -> Result<DeterminismSection, String> {
    let mut digests = Vec::new();
    let mut reference: Option<Vec<Vec<u8>>> = None;
    for shards in SHARD_SWEEP {
        let streams = deterministic_run(options, shards)?;
        let concat: Vec<u8> = streams.iter().flatten().copied().collect();
        digests.push((shards, fnv1a(&concat)));
        if reference.is_none() {
            reference = Some(streams);
        }
    }
    let reference = reference.expect("at least one run");
    let bytes_per_run = reference.iter().map(Vec::len).sum();
    let bit_identical = digests.iter().all(|&(_, d)| d == digests[0].1);
    let replay = replay_allocation(options, options.clients.max(2))?;
    Ok(DeterminismSection {
        digests,
        bytes_per_run,
        bit_identical,
        matches_replay: replay == reference,
    })
}

// ---------------------------------------------------------------------
// Socket load harness
// ---------------------------------------------------------------------

/// One measured socket-load point.
struct LoadPoint {
    label: f64,
    report: MuxReport,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

impl LoadPoint {
    fn throughput_rps(&self) -> f64 {
        if self.report.wall_ns == 0 {
            return 0.0;
        }
        self.report.grants as f64 * 1e9 / self.report.wall_ns as f64
    }

    fn throughput_bytes_per_sec(&self) -> f64 {
        if self.report.wall_ns == 0 {
            return 0.0;
        }
        self.report.bytes as f64 * 1e9 / self.report.wall_ns as f64
    }
}

/// Starts a fair-mode service + UDS server on a fresh temp socket, runs
/// one mux session against it, and tears both down.
fn socket_run(
    pool: PoolConfig,
    shards: usize,
    max_in_flight: usize,
    rate_limit: Option<RateLimit>,
    shed_limit: Option<usize>,
    mux_config: &MuxConfig,
    tag: &str,
) -> Result<(MuxReport, u64, u64), String> {
    let mut config = ServeConfig::new(pool, SchedulerMode::Fair { max_in_flight });
    config.shards = shards;
    config.rate_limit = rate_limit;
    config.shed_limit = shed_limit;
    let service =
        EntropyService::start(&config).map_err(|e| format!("{tag}: service start: {e}"))?;
    let socket = std::env::temp_dir()
        .join(format!("strent-serve-{tag}-{}.sock", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let server = UdsServer::start(service.connector(), &socket)
        .map_err(|e| format!("{tag}: server start: {e}"))?;
    let stats = server.stats();
    let report = mux::run(&socket, mux_config).map_err(|e| format!("{tag}: mux: {e}"))?;
    let accepted = stats.accepted();
    let accept_errors = stats.accept_errors();
    server
        .shutdown()
        .map_err(|e| format!("{tag}: server shutdown: {e}"))?;
    service
        .shutdown()
        .map_err(|e| format!("{tag}: service shutdown: {e}"))?;
    Ok((report, accepted, accept_errors))
}

fn point_from(label: f64, mut report: MuxReport) -> LoadPoint {
    let (p50_us, p99_us, p999_us) = tails_us(&mut report.latencies_ns);
    LoadPoint {
        label,
        report,
        p50_us,
        p99_us,
        p999_us,
    }
}

// ---------------------------------------------------------------------
// closed_loop
// ---------------------------------------------------------------------

struct ClosedLoopSection {
    points: Vec<LoadPoint>,
    saturation_rps: f64,
}

/// Closed-loop sweep: each connection keeps exactly one request
/// outstanding, so throughput is the saturation rate at that
/// concurrency and latency is service time (coordinated omission
/// hides queueing delay — the open-loop section covers that).
fn closed_loop(options: &Options) -> Result<ClosedLoopSection, String> {
    let budget = if options.full { 16_384 } else { 4_096 };
    let mut points = Vec::new();
    for &clients in &CLIENT_SWEEP {
        let requests_per_conn = (budget / clients).clamp(2, 512);
        let mux_config = MuxConfig {
            connections: clients,
            requests_per_conn,
            nbytes: u32::try_from(options.bytes.min(32)).expect("small"),
            mode: LoadMode::Closed,
            first_client_id: 0,
            retry_backpressure: true,
            deadline: Duration::from_secs(120),
        };
        let (report, _, accept_errors) = socket_run(
            surrogate_pool(8, options.seed),
            4,
            64,
            None,
            None,
            &mux_config,
            &format!("closed-{clients}"),
        )?;
        if accept_errors > 0 {
            return Err(format!("closed loop at {clients} clients: accept errors"));
        }
        points.push(point_from(clients as f64, report));
    }
    let saturation_rps = points
        .iter()
        .filter(|p| p.label >= 16.0)
        .map(LoadPoint::throughput_rps)
        .fold(0.0f64, f64::max);
    Ok(ClosedLoopSection {
        points,
        saturation_rps,
    })
}

// ---------------------------------------------------------------------
// open_loop
// ---------------------------------------------------------------------

struct OpenLoopSection {
    conns: usize,
    points: Vec<LoadPoint>,
}

/// Open-loop runs at fractions of the measured closed-loop saturation:
/// arrivals follow a fixed schedule whether or not replies are back, so
/// the tails include queueing delay (no coordinated omission).
fn open_loop(options: &Options, saturation_rps: f64) -> Result<OpenLoopSection, String> {
    let conns = 32usize;
    let seconds = if options.full { 2.0 } else { 0.75 };
    let mut points = Vec::new();
    for fraction in [0.5f64, 0.9, 1.5] {
        let target_rps = (saturation_rps * fraction).max(50.0);
        let per_conn_rps = target_rps / conns as f64;
        let interval_ns = (1e9 / per_conn_rps) as u64;
        let requests_per_conn = ((target_rps * seconds) / conns as f64).ceil().max(2.0) as usize;
        let mux_config = MuxConfig {
            connections: conns,
            requests_per_conn,
            nbytes: u32::try_from(options.bytes.min(32)).expect("small"),
            mode: LoadMode::Open { interval_ns },
            first_client_id: 0,
            retry_backpressure: false,
            deadline: Duration::from_secs(120),
        };
        let (report, _, accept_errors) = socket_run(
            surrogate_pool(8, options.seed),
            4,
            64,
            None,
            None,
            &mux_config,
            &format!("open-{}", (fraction * 100.0) as u32),
        )?;
        if accept_errors > 0 {
            return Err(format!("open loop at {fraction}x: accept errors"));
        }
        points.push(point_from(fraction, report));
    }
    Ok(OpenLoopSection { conns, points })
}

// ---------------------------------------------------------------------
// shard_scaling
// ---------------------------------------------------------------------

struct ScalingPoint {
    backend: &'static str,
    shards: usize,
    throughput_rps: f64,
    p99_us: f64,
}

struct ScalingSection {
    points: Vec<ScalingPoint>,
    speedup_full_sim: f64,
    speedup_surrogate: f64,
}

impl ScalingSection {
    fn best_speedup(&self) -> f64 {
        self.speedup_full_sim.max(self.speedup_surrogate)
    }
}

/// One time-bounded in-process saturation run: `clients` threads in a
/// closed retry loop against a fair service at `shards`, with the
/// per-shard in-flight budget fixed — the resource each added shard
/// brings along.
fn scaling_point(
    options: &Options,
    backend: SourceBackend,
    shards: usize,
    clients: usize,
    max_in_flight: usize,
    seconds: f64,
) -> Result<(f64, f64), String> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let mut config = ServeConfig::new(
        bench_pool(8, options.seed).with_backend(backend),
        SchedulerMode::Fair { max_in_flight },
    );
    config.shards = shards;
    let service =
        EntropyService::start(&config).map_err(|e| format!("scaling service start: {e}"))?;
    let connector = service.connector();
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for id in 0..clients {
        let connector = connector.clone();
        let stop = Arc::clone(&stop);
        handles.push(thread::spawn(move || {
            let client = match connector.connect(u32::try_from(id).expect("small id")) {
                Ok(c) => c,
                Err(e) => return Err(format!("client {id} connect: {e}")),
            };
            let mut latencies_ns = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let t0 = Instant::now();
                match client.request(16) {
                    Ok(_) => latencies_ns.push(t0.elapsed().as_nanos() as u64),
                    // Typed backpressure: retry immediately (closed
                    // retry loop — offered load tracks capacity).
                    Err(e) if e.backpressure().is_some() => {}
                    Err(e) => return Err(format!("client {id} request: {e}")),
                }
            }
            Ok(latencies_ns)
        }));
    }
    let t0 = Instant::now();
    thread::sleep(Duration::from_secs_f64(seconds));
    stop.store(true, Ordering::Relaxed);
    let mut latencies = Vec::new();
    for handle in handles {
        match handle.join() {
            Ok(Ok(lat)) => latencies.extend(lat),
            Ok(Err(e)) => return Err(e),
            Err(_) => return Err("scaling client panicked".to_owned()),
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    service
        .shutdown()
        .map_err(|e| format!("scaling shutdown: {e}"))?;
    let rps = latencies.len() as f64 / wall;
    let (_, p99_us, _) = tails_us(&mut latencies);
    Ok((rps, p99_us))
}

/// Saturation throughput at 1/2/4/8 shards for both backends, using
/// in-process clients so the sweep isolates the scheduler tier from
/// the (single-threaded) socket frontend. Each shard brings a fixed
/// in-flight budget and its own producer worker, so the curve measures
/// per-shard admission and serving capacity under a closed retry loop
/// — the speedup column is the honest answer on this host (see
/// `host_cpus` at the top level and `docs/engine_perf.md`).
fn shard_scaling(options: &Options) -> Result<ScalingSection, String> {
    let clients = SCALING_CLIENTS;
    let max_in_flight = SCALING_MAX_IN_FLIGHT;
    let seconds = if options.full { 1.5 } else { 0.5 };
    let mut points = Vec::new();
    let mut speedups = [0.0f64; 2];
    for (b, backend) in [SourceBackend::FullSim, SourceBackend::Surrogate]
        .into_iter()
        .enumerate()
    {
        let backend_label = match backend {
            SourceBackend::FullSim => "full_sim",
            SourceBackend::Surrogate => "surrogate",
        };
        let mut base_rps = 0.0f64;
        for &shards in &SCALING_SHARDS {
            let (rps, p99_us) =
                scaling_point(options, backend, shards, clients, max_in_flight, seconds)?;
            if shards == 1 {
                base_rps = rps;
            }
            if shards == 8 && base_rps > 0.0 {
                speedups[b] = rps / base_rps;
            }
            points.push(ScalingPoint {
                backend: backend_label,
                shards,
                throughput_rps: rps,
                p99_us,
            });
        }
    }
    Ok(ScalingSection {
        points,
        speedup_full_sim: speedups[0],
        speedup_surrogate: speedups[1],
    })
}

// ---------------------------------------------------------------------
// backpressure
// ---------------------------------------------------------------------

struct BackpressureSection {
    busy: u64,
    rate_limited: u64,
    shed: u64,
    grants: u64,
    all_classes_observed: bool,
}

/// Starves every budget at once — a per-shard in-flight budget of 1, a
/// trickle token bucket and a global shed watermark of 2 — and proves
/// each typed class actually reaches clients over the wire.
fn backpressure_drill(options: &Options) -> Result<BackpressureSection, String> {
    let mux_config = MuxConfig {
        connections: 16,
        requests_per_conn: 6,
        nbytes: 16,
        mode: LoadMode::Closed,
        first_client_id: 0,
        retry_backpressure: true,
        deadline: Duration::from_secs(60),
    };
    let rate = RateLimit {
        bytes_per_sec: 4096.0,
        burst_bytes: 32.0,
    };
    let (report, _, accept_errors) = socket_run(
        surrogate_pool(4, options.seed),
        2,
        1,
        Some(rate),
        Some(2),
        &mux_config,
        "backpressure",
    )?;
    if accept_errors > 0 {
        return Err("backpressure drill: accept errors".to_owned());
    }
    Ok(BackpressureSection {
        busy: report.busy,
        rate_limited: report.rate_limited,
        shed: report.shed,
        grants: report.grants,
        all_classes_observed: report.busy > 0 && report.rate_limited > 0 && report.shed > 0,
    })
}

// ---------------------------------------------------------------------
// fault_drill
// ---------------------------------------------------------------------

struct FaultSection {
    delivered_bytes: u64,
    alarms: u64,
    requarantines: u64,
    replacements: u64,
    health_clean: bool,
}

impl FaultSection {
    fn bytes_per_alarm(&self) -> f64 {
        if self.alarms == 0 {
            return 0.0;
        }
        self.delivered_bytes as f64 / self.alarms as f64
    }
}

/// Fault drill: slot 0 is permanently clamped low, so its ring must be
/// quarantined and replaced while the pooled stream stays health-clean.
fn fault_drill(options: &Options) -> Result<FaultSection, String> {
    let mut config = bench_pool(2, options.seed);
    config.max_relock_windows = 4;
    let spec = &config.sources[0];
    let period = spec.ring.stream_config().predicted_period_ps(&spec.board(0));
    let clamp_from = config.warmup_periods * period;
    // Ring nets are named `str{i}` / `iro{i}`; clamp the first stage.
    let net = match spec.ring {
        RingSpec::Str32 | RingSpec::Str64 => "str0",
        RingSpec::Iro32 => "iro0",
    };
    let plan = FaultPlan::new(spec.seed)
        .with_stuck_at(net, Bit::Low, clamp_from, 1e12)
        .map_err(|e| format!("fault plan: {e}"))?;
    config.sources[0] = SourceSpec::new(spec.ring, spec.seed).with_fault(plan);

    let mut pool = SourcePool::start(&config, 2).map_err(|e| format!("pool: {e}"))?;
    let nbytes = options.requests * options.bytes * 2;
    let delivered = pool.read_bytes(nbytes).map_err(|e| format!("read: {e}"))?;
    let status = pool.status().to_vec();
    pool.shutdown();

    let alarms: u64 = status.iter().map(|s| s.stats.alarms).sum();
    let requarantines: u64 = status.iter().map(|s| s.stats.requarantines).sum();
    let replacements: u64 = status.iter().map(|s| s.stats.replacements).sum();
    let bits = BitString::from_packed(&delivered, delivered.len() * 8);
    let (rct, apt) = health::scan(&bits, config.claimed_min_entropy)
        .map_err(|e| format!("health scan: {e}"))?;
    Ok(FaultSection {
        delivered_bytes: delivered.len() as u64,
        alarms,
        requarantines,
        replacements,
        health_clean: (rct, apt) == (0, 0),
    })
}

// ---------------------------------------------------------------------
// uds_smoke
// ---------------------------------------------------------------------

struct SmokeSection {
    socket: String,
    mux_clients: usize,
    mux_grants: u64,
    mux_errors: u64,
    mux_completed: usize,
    accepted: u64,
    accept_errors: u64,
    register_errors: u64,
    drained: bool,
    replay_clients: usize,
    bytes_served: usize,
    deterministic: bool,
    clean_shutdown: bool,
}

/// Socket smoke, two halves:
///
/// 1. a 1024-connection closed-loop drill through the poll event loop —
///    every connection accepted and multiplexed by one thread, the
///    server counters checked (`accepted >= 1024`, zero accept and
///    register errors, all slots drained after the clients leave);
/// 2. a deterministic three-client run over real `UdsClient`s whose
///    served allocation is checked byte-for-byte against a fresh
///    in-process pool replay.
fn uds_smoke(options: &Options) -> Result<SmokeSection, String> {
    // Half 1: the big multiplexed drill.
    let mut config = ServeConfig::new(
        surrogate_pool(8, options.seed),
        SchedulerMode::Fair { max_in_flight: 64 },
    );
    config.shards = 4;
    let service =
        EntropyService::start(&config).map_err(|e| format!("smoke service start: {e}"))?;
    let socket = options.socket.clone().unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("strent-serve-smoke-{}.sock", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    let server = UdsServer::start(service.connector(), &socket)
        .map_err(|e| format!("smoke server start: {e}"))?;
    let stats = server.stats();
    let mux_config = MuxConfig {
        connections: SMOKE_CONNS,
        requests_per_conn: 2,
        nbytes: 16,
        mode: LoadMode::Closed,
        first_client_id: 0,
        retry_backpressure: true,
        deadline: Duration::from_secs(180),
    };
    let report = mux::run(&socket, &mux_config).map_err(|e| format!("smoke mux: {e}"))?;
    // The clients have all disconnected; the event loop observes the
    // EOFs and releases every slot. Give it a bounded moment.
    let drain_deadline = Instant::now() + Duration::from_secs(10);
    while stats.active() > 0 && Instant::now() < drain_deadline {
        thread::sleep(Duration::from_millis(10));
    }
    let accepted = stats.accepted();
    let accept_errors = stats.accept_errors();
    let register_errors = stats.register_errors();
    let drained = stats.active() == 0;
    let mut clean_shutdown = server.shutdown().is_ok() && service.shutdown().is_ok();

    // Half 2: deterministic replay over real socket clients.
    let replay_clients = 3usize;
    let smoke = Options {
        full: options.full,
        seed: options.seed,
        clients: replay_clients,
        requests: options.requests.min(4),
        bytes: options.bytes.min(24),
        out: String::new(),
        smoke: true,
        socket: None,
    };
    let det_config = ServeConfig::new(
        bench_pool(replay_clients, smoke.seed),
        SchedulerMode::Deterministic {
            expected_clients: replay_clients,
        },
    );
    let det_service =
        EntropyService::start(&det_config).map_err(|e| format!("replay service start: {e}"))?;
    let det_socket = format!("{socket}.det");
    let det_server = UdsServer::start(det_service.connector(), &det_socket)
        .map_err(|e| format!("replay server start: {e}"))?;

    let (tx, rx) = mpsc::channel();
    let mut handles = Vec::new();
    for client_id in 0..replay_clients {
        let path = det_socket.clone();
        let sizes: Vec<u32> = (0..smoke.requests)
            .map(|round| {
                u32::try_from(request_size(&smoke, client_id, round)).expect("small size")
            })
            .collect();
        let tx = tx.clone();
        handles.push(thread::spawn(move || {
            let run = || -> Result<Vec<u8>, String> {
                let mut client =
                    UdsClient::connect(&path, u32::try_from(client_id).expect("small id"))
                        .map_err(|e| format!("connect: {e}"))?;
                let mut stream = Vec::new();
                for nbytes in sizes {
                    stream.extend(
                        client
                            .request(nbytes)
                            .map_err(|e| format!("request: {e}"))?,
                    );
                }
                client.close().map_err(|e| format!("close: {e}"))?;
                Ok(stream)
            };
            let _ = tx.send((client_id, run()));
        }));
    }
    drop(tx);
    let mut streams = vec![Vec::new(); replay_clients];
    for _ in 0..replay_clients {
        let (client_id, result) = rx
            .recv_timeout(Duration::from_secs(120))
            .map_err(|_| "smoke replay client timed out".to_owned())?;
        streams[client_id] = result.map_err(|e| format!("replay client {client_id}: {e}"))?;
    }
    for handle in handles {
        let _ = handle.join();
    }
    clean_shutdown =
        clean_shutdown && det_server.shutdown().is_ok() && det_service.shutdown().is_ok();

    let replay = replay_allocation(&smoke, replay_clients)?;
    Ok(SmokeSection {
        socket,
        mux_clients: SMOKE_CONNS,
        mux_grants: report.grants,
        mux_errors: report.errors,
        mux_completed: report.completed_conns,
        accepted,
        accept_errors,
        register_errors,
        drained,
        replay_clients,
        bytes_served: streams.iter().map(Vec::len).sum(),
        deterministic: streams == replay,
        clean_shutdown,
    })
}

impl SmokeSection {
    fn passed(&self) -> bool {
        self.mux_completed == self.mux_clients
            && self.mux_errors == 0
            && self.mux_grants >= (self.mux_clients as u64) * 2
            && self.accepted >= self.mux_clients as u64
            && self.accept_errors == 0
            && self.register_errors == 0
            && self.drained
            && self.deterministic
            && self.clean_shutdown
    }
}

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

fn push_load_points(json: &mut String, label_key: &str, points: &[LoadPoint], label_int: bool) {
    for (i, point) in points.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let label = if label_int {
            format!("{}", point.label as u64)
        } else {
            format!("{:.2}", point.label)
        };
        let _ = write!(
            json,
            "{sep}\n      {{\"{label_key}\": {label}, \"grants\": {}, \"busy\": {}, \
             \"rate_limited\": {}, \"shed\": {}, \"errors\": {}, \
             \"throughput_rps\": {:.1}, \"throughput_bytes_per_sec\": {:.0}, \
             \"wall_ms\": {:.1}, \"latency_p50_us\": {:.1}, \"latency_p99_us\": {:.1}, \
             \"latency_p999_us\": {:.1}, \"peak_outstanding\": {}, \"deadline_hit\": {}}}",
            point.report.grants,
            point.report.busy,
            point.report.rate_limited,
            point.report.shed,
            point.report.errors,
            point.throughput_rps(),
            point.throughput_bytes_per_sec(),
            point.report.wall_ns as f64 / 1e6,
            point.p50_us,
            point.p99_us,
            point.p999_us,
            point.report.peak_outstanding,
            point.report.deadline_hit,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_json(
    options: &Options,
    det: &DeterminismSection,
    closed: &ClosedLoopSection,
    open: &OpenLoopSection,
    scaling: &ScalingSection,
    backpressure: &BackpressureSection,
    fault: &FaultSection,
    smoke: Option<&SmokeSection>,
) -> String {
    let host_cpus = thread::available_parallelism().map_or(0, std::num::NonZero::get);
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"strentropy-bench-serve/2\",");
    let _ = writeln!(
        json,
        "  \"effort\": \"{}\",",
        if options.full { "full" } else { "quick" }
    );
    let _ = writeln!(json, "  \"seed\": {},", options.seed);
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(
        json,
        "  \"trace\": {{\"clients\": {}, \"requests_per_client\": {}, \
         \"base_bytes\": {}}},",
        options.clients, options.requests, options.bytes
    );
    json.push_str("  \"determinism\": {\n");
    json.push_str("    \"shard_digests\": [");
    for (i, (shards, digest)) in det.digests.iter().enumerate() {
        let _ = write!(
            json,
            "{}{{\"shards\": {shards}, \"fnv1a64\": \"{digest:016x}\"}}",
            if i == 0 { "" } else { ", " }
        );
    }
    json.push_str("],\n");
    let _ = writeln!(json, "    \"bytes_per_run\": {},", det.bytes_per_run);
    let _ = writeln!(json, "    \"bit_identical\": {},", det.bit_identical);
    let _ = writeln!(json, "    \"matches_pool_replay\": {}", det.matches_replay);
    json.push_str("  },\n");

    json.push_str("  \"closed_loop\": {\n");
    json.push_str("    \"backend\": \"surrogate\",\n");
    json.push_str("    \"points\": [");
    push_load_points(&mut json, "clients", &closed.points, true);
    json.push_str("\n    ],\n");
    let _ = writeln!(json, "    \"saturation_rps\": {:.1}", closed.saturation_rps);
    json.push_str("  },\n");

    json.push_str("  \"open_loop\": {\n");
    json.push_str("    \"backend\": \"surrogate\",\n");
    let _ = writeln!(json, "    \"connections\": {},", open.conns);
    json.push_str("    \"points\": [");
    push_load_points(&mut json, "saturation_fraction", &open.points, false);
    json.push_str("\n    ]\n");
    json.push_str("  },\n");

    json.push_str("  \"shard_scaling\": {\n");
    json.push_str("    \"harness\": \"in_process\",\n");
    let _ = writeln!(json, "    \"clients\": {SCALING_CLIENTS},");
    let _ = writeln!(json, "    \"max_in_flight\": {SCALING_MAX_IN_FLIGHT},");
    json.push_str("    \"points\": [");
    for (i, point) in scaling.points.iter().enumerate() {
        let _ = write!(
            json,
            "{}\n      {{\"backend\": \"{}\", \"shards\": {}, \
             \"throughput_rps\": {:.1}, \"latency_p99_us\": {:.1}}}",
            if i == 0 { "" } else { "," },
            point.backend,
            point.shards,
            point.throughput_rps,
            point.p99_us,
        );
    }
    json.push_str("\n    ],\n");
    let _ = writeln!(
        json,
        "    \"speedup_8v1_full_sim\": {:.2},",
        scaling.speedup_full_sim
    );
    let _ = writeln!(
        json,
        "    \"speedup_8v1_surrogate\": {:.2},",
        scaling.speedup_surrogate
    );
    let _ = writeln!(json, "    \"speedup_8v1\": {:.2}", scaling.best_speedup());
    json.push_str("  },\n");

    json.push_str("  \"backpressure\": {\n");
    let _ = writeln!(json, "    \"grants\": {},", backpressure.grants);
    let _ = writeln!(json, "    \"busy\": {},", backpressure.busy);
    let _ = writeln!(json, "    \"rate_limited\": {},", backpressure.rate_limited);
    let _ = writeln!(json, "    \"shed\": {},", backpressure.shed);
    let _ = writeln!(
        json,
        "    \"all_classes_observed\": {}",
        backpressure.all_classes_observed
    );
    json.push_str("  },\n");

    json.push_str("  \"fault_drill\": {\n");
    let _ = writeln!(json, "    \"delivered_bytes\": {},", fault.delivered_bytes);
    let _ = writeln!(json, "    \"alarms\": {},", fault.alarms);
    let _ = writeln!(json, "    \"requarantines\": {},", fault.requarantines);
    let _ = writeln!(json, "    \"replacements\": {},", fault.replacements);
    let _ = writeln!(json, "    \"bytes_per_alarm\": {:.1},", fault.bytes_per_alarm());
    let _ = writeln!(json, "    \"health_clean\": {}", fault.health_clean);
    let _ = write!(json, "  }}");
    if let Some(smoke) = smoke {
        json.push_str(",\n  \"uds_smoke\": {\n");
        let _ = writeln!(json, "    \"socket\": \"{}\",", smoke.socket);
        let _ = writeln!(json, "    \"mux_clients\": {},", smoke.mux_clients);
        let _ = writeln!(json, "    \"mux_grants\": {},", smoke.mux_grants);
        let _ = writeln!(json, "    \"mux_errors\": {},", smoke.mux_errors);
        let _ = writeln!(json, "    \"mux_completed\": {},", smoke.mux_completed);
        let _ = writeln!(json, "    \"accepted\": {},", smoke.accepted);
        let _ = writeln!(json, "    \"accept_errors\": {},", smoke.accept_errors);
        let _ = writeln!(json, "    \"register_errors\": {},", smoke.register_errors);
        let _ = writeln!(json, "    \"drained\": {},", smoke.drained);
        let _ = writeln!(json, "    \"replay_clients\": {},", smoke.replay_clients);
        let _ = writeln!(json, "    \"bytes_served\": {},", smoke.bytes_served);
        let _ = writeln!(json, "    \"deterministic\": {},", smoke.deterministic);
        let _ = writeln!(json, "    \"clean_shutdown\": {}", smoke.clean_shutdown);
        let _ = write!(json, "  }}");
    }
    json.push_str("\n}\n");
    json
}

fn main() -> ExitCode {
    let options = match parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!(
                "{msg}\nusage: serve_load [--quick|--full] [--seed N] [--clients N] \
                 [--requests N] [--bytes N] [--out PATH] [--smoke] [--socket PATH]"
            );
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# serve_load: seed {}, {} clients x {} requests (base {} bytes)",
        options.seed, options.clients, options.requests, options.bytes
    );

    let det = match determinism(&options) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("determinism section failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# determinism: {} bytes/run, digests {} across shards {:?}",
        det.bytes_per_run,
        if det.bit_identical { "identical" } else { "DIVERGED" },
        SHARD_SWEEP
    );
    let closed = match closed_loop(&options) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("closed loop failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for point in &closed.points {
        eprintln!(
            "# closed loop: {} clients -> {:.0} req/s, p50 {:.0}us p99 {:.0}us p999 {:.0}us",
            point.label as u64,
            point.throughput_rps(),
            point.p50_us,
            point.p99_us,
            point.p999_us
        );
    }
    let open = match open_loop(&options, closed.saturation_rps) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("open loop failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for point in &open.points {
        eprintln!(
            "# open loop: {:.2}x sat -> {:.0} req/s achieved, p99 {:.0}us p999 {:.0}us",
            point.label,
            point.throughput_rps(),
            point.p99_us,
            point.p999_us
        );
    }
    let scaling = match shard_scaling(&options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("shard scaling failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# shard scaling: speedup 8v1 full_sim {:.2}x, surrogate {:.2}x",
        scaling.speedup_full_sim, scaling.speedup_surrogate
    );
    let backpressure = match backpressure_drill(&options) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("backpressure drill failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# backpressure: {} grants, busy {}, rate_limited {}, shed {}",
        backpressure.grants, backpressure.busy, backpressure.rate_limited, backpressure.shed
    );
    let fault = match fault_drill(&options) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("fault drill failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# fault drill: {} alarms, {} replacements, {:.0} bytes/alarm, clean={}",
        fault.alarms,
        fault.replacements,
        fault.bytes_per_alarm(),
        fault.health_clean
    );
    let smoke = if options.smoke {
        match uds_smoke(&options) {
            Ok(s) => {
                eprintln!(
                    "# uds smoke: {} mux conns ({} grants, {} errors), accepted {}, \
                     deterministic={}, shutdown={}",
                    s.mux_clients,
                    s.mux_grants,
                    s.mux_errors,
                    s.accepted,
                    s.deterministic,
                    s.clean_shutdown
                );
                Some(s)
            }
            Err(e) => {
                eprintln!("uds smoke failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let failed = !det.bit_identical
        || !det.matches_replay
        || closed.saturation_rps <= 0.0
        || closed.points.iter().any(|p| p.report.deadline_hit)
        || open.points.iter().any(|p| p.report.deadline_hit)
        || scaling.best_speedup() < 2.0
        || !backpressure.all_classes_observed
        || fault.alarms == 0
        || fault.replacements == 0
        || !fault.health_clean
        || smoke.as_ref().is_some_and(|s| !s.passed());

    let json = emit_json(
        &options,
        &det,
        &closed,
        &open,
        &scaling,
        &backpressure,
        &fault,
        smoke.as_ref(),
    );
    if let Err(e) = std::fs::write(&options.out, &json) {
        eprintln!("cannot write {}: {e}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("# wrote {}", options.out);
    if failed {
        eprintln!("serve_load: an invariant failed (see the JSON report)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
