//! Load bench for `strent-serve`: drives N concurrent clients with
//! deterministic request traces and emits `BENCH_serve.json` with four
//! sections:
//!
//! * `determinism` — the full served byte stream (deterministic
//!   round-barrier mode) digested at 1, 2 and 8 pool workers; the
//!   digests must be identical (the worker-count invariance contract);
//! * `load` — a fair-mode run with concurrent client threads:
//!   throughput, p50/p99 request latency, typed-`Busy` rejection rate;
//! * `fault_drill` — a pool with one permanently clamped source: the
//!   slot must alarm, quarantine and replace its ring while the
//!   delivered stream re-passes the SP 800-90B monitors with zero
//!   alarms (bytes-per-alarm is the headline number);
//! * `--smoke` additionally exercises the Unix-socket frontend: a
//!   server on a temp socket, three concurrent `UdsClient`s, and a
//!   byte-for-byte check of the served allocation against a fresh
//!   in-process pool replay.
//!
//! The JSON is hand-formatted — the workspace builds offline against
//! stub crates, so no serializer is assumed.
//!
//! Usage: `serve_load [--quick|--full] [--seed N] [--clients N]
//! [--requests N] [--bytes N] [--out PATH] [--smoke] [--socket PATH]`
//! (default `--quick`, `BENCH_serve.json` in the current directory).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use strent_serve::{
    EntropyService, SchedulerMode, ServeConfig, SourcePool, UdsClient, UdsServer,
};
use strent_sim::{Bit, FaultPlan};
use strent_trng::bits::BitString;
use strent_trng::health;
use strent_trng::postprocess::ConditionerKind;
use strentropy::pool::{PoolConfig, RingSpec, SourceSpec};

/// Worker counts the determinism section digests the stream at.
const WORKER_SWEEP: [usize; 3] = [1, 2, 8];

struct Options {
    full: bool,
    seed: u64,
    clients: usize,
    requests: usize,
    bytes: usize,
    out: String,
    smoke: bool,
    socket: Option<String>,
}

fn parse(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut options = Options {
        full: false,
        seed: 42,
        clients: 3,
        requests: 6,
        bytes: 32,
        out: "BENCH_serve.json".to_owned(),
        smoke: false,
        socket: None,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.full = false,
            "--full" => options.full = true,
            "--smoke" => options.smoke = true,
            "--seed" => {
                let value = args.next().ok_or("--seed requires a value")?;
                options.seed = value.parse().map_err(|_| format!("invalid seed: {value}"))?;
            }
            "--clients" => {
                let value = args.next().ok_or("--clients requires a value")?;
                options.clients =
                    value.parse().map_err(|_| format!("invalid clients: {value}"))?;
            }
            "--requests" => {
                let value = args.next().ok_or("--requests requires a value")?;
                options.requests =
                    value.parse().map_err(|_| format!("invalid requests: {value}"))?;
            }
            "--bytes" => {
                let value = args.next().ok_or("--bytes requires a value")?;
                options.bytes = value.parse().map_err(|_| format!("invalid bytes: {value}"))?;
            }
            "--out" => options.out = args.next().ok_or("--out requires a value")?.clone(),
            "--socket" => options.socket = Some(args.next().ok_or("--socket requires a value")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if options.full {
        options.requests *= 4;
        options.bytes *= 2;
    }
    if options.clients == 0 || options.requests == 0 || options.bytes == 0 {
        return Err("--clients/--requests/--bytes must be positive".to_owned());
    }
    Ok(options)
}

/// A pool configuration sized for the bench: raw conditioner (the
/// stream content is what's digested; conditioning ratios are covered
/// by the serve crate's own tests) and small batches for quick rounds.
fn bench_pool(sources: usize, seed: u64) -> PoolConfig {
    let mut config = PoolConfig::mixed_default(sources, seed);
    config.conditioner = ConditionerKind::Raw;
    config.sample_period_factor = 2.37;
    config.batch_raw_bits = 64;
    config.warmup_periods = 16.0;
    config
}

/// FNV-1a 64-bit — a stable stream digest with no dependencies.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The deterministic request trace of one client: sizes vary by
/// (client, round) so the allocation exercises uneven grants while
/// staying a pure function of the bench parameters.
fn request_size(options: &Options, client: usize, round: usize) -> usize {
    1 + (options.bytes + client * 7 + round * 3) % (2 * options.bytes)
}

/// Serves every client's full trace in deterministic round-barrier mode
/// and returns the per-client streams, in client-id order.
fn deterministic_run(options: &Options, workers: usize) -> Result<Vec<Vec<u8>>, String> {
    let config = ServeConfig {
        pool: bench_pool(options.clients.max(2), options.seed),
        workers,
        mode: SchedulerMode::Deterministic {
            expected_clients: options.clients,
        },
    };
    let service =
        EntropyService::start(&config).map_err(|e| format!("service start failed: {e}"))?;
    let mut handles = Vec::new();
    for client_id in 0..options.clients {
        let client = service
            .connect(u32::try_from(client_id).expect("small id"))
            .map_err(|e| format!("client {client_id} failed to register: {e}"))?;
        let requests = options.requests;
        let sizes: Vec<usize> = (0..requests)
            .map(|round| request_size(options, client_id, round))
            .collect();
        handles.push(thread::spawn(move || {
            let mut stream = Vec::new();
            for nbytes in sizes {
                match client.request(nbytes) {
                    Ok(grant) => stream.extend(grant),
                    Err(e) => return Err(format!("grant failed: {e}")),
                }
            }
            client.close();
            Ok(stream)
        }));
    }
    let mut streams = Vec::with_capacity(options.clients);
    for (client_id, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(Ok(stream)) => streams.push(stream),
            Ok(Err(e)) => return Err(format!("client {client_id}: {e}")),
            Err(_) => return Err(format!("client {client_id} panicked")),
        }
    }
    service
        .shutdown()
        .map_err(|e| format!("shutdown failed: {e}"))?;
    Ok(streams)
}

/// Replays the expected allocation from a fresh single-worker pool: the
/// round barrier grants in ascending client id, so the pool stream is
/// consumed in (round, client) order.
fn replay_allocation(options: &Options, sources: usize) -> Result<Vec<Vec<u8>>, String> {
    let config = bench_pool(sources, options.seed);
    let mut pool = SourcePool::start(&config, 1).map_err(|e| format!("pool: {e}"))?;
    let mut streams = vec![Vec::new(); options.clients];
    for round in 0..options.requests {
        for (client_id, stream) in streams.iter_mut().enumerate() {
            let nbytes = request_size(options, client_id, round);
            let grant = pool.read_bytes(nbytes).map_err(|e| format!("read: {e}"))?;
            stream.extend(grant);
        }
    }
    pool.shutdown();
    Ok(streams)
}

struct DeterminismSection {
    digests: Vec<(usize, u64)>,
    bytes_per_run: usize,
    bit_identical: bool,
    matches_replay: bool,
}

fn determinism(options: &Options) -> Result<DeterminismSection, String> {
    let mut digests = Vec::new();
    let mut reference: Option<Vec<Vec<u8>>> = None;
    for workers in WORKER_SWEEP {
        let streams = deterministic_run(options, workers)?;
        let concat: Vec<u8> = streams.iter().flatten().copied().collect();
        digests.push((workers, fnv1a(&concat)));
        if reference.is_none() {
            reference = Some(streams);
        }
    }
    let reference = reference.expect("at least one run");
    let bytes_per_run = reference.iter().map(Vec::len).sum();
    let bit_identical = digests.iter().all(|&(_, d)| d == digests[0].1);
    let replay = replay_allocation(options, options.clients.max(2))?;
    Ok(DeterminismSection {
        digests,
        bytes_per_run,
        bit_identical,
        matches_replay: replay == reference,
    })
}

struct LoadSection {
    grants: u64,
    rejections: u64,
    total_bytes: u64,
    wall_ns: u128,
    p50_us: f64,
    p99_us: f64,
}

impl LoadSection {
    fn throughput_bytes_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.total_bytes as f64 * 1e9 / self.wall_ns as f64
    }

    fn rejection_rate(&self) -> f64 {
        let attempts = self.grants + self.rejections;
        if attempts == 0 {
            return 0.0;
        }
        self.rejections as f64 / attempts as f64
    }
}

fn percentile_us(sorted_ns: &[u64], pct: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * pct).round() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)] as f64 / 1e3
}

/// Fair-mode load run: every client thread issues its trace, retrying
/// (and counting) typed `Busy` rejections. The in-flight budget is kept
/// below the client count so admission control actually engages.
fn load_run(options: &Options) -> Result<LoadSection, String> {
    let config = ServeConfig {
        pool: bench_pool(options.clients.max(2), options.seed),
        workers: 2,
        mode: SchedulerMode::Fair {
            max_in_flight: options.clients.saturating_sub(1).max(1),
        },
    };
    let service =
        EntropyService::start(&config).map_err(|e| format!("service start failed: {e}"))?;
    let started = Instant::now();
    let mut handles = Vec::new();
    for client_id in 0..options.clients {
        let client = service
            .connect(u32::try_from(client_id).expect("small id"))
            .map_err(|e| format!("client {client_id} failed to register: {e}"))?;
        let sizes: Vec<usize> = (0..options.requests)
            .map(|round| request_size(options, client_id, round))
            .collect();
        handles.push(thread::spawn(move || {
            let mut latencies_ns = Vec::with_capacity(sizes.len());
            let mut rejections = 0u64;
            let mut bytes = 0u64;
            for nbytes in sizes {
                loop {
                    let t0 = Instant::now();
                    match client.request(nbytes) {
                        Ok(grant) => {
                            latencies_ns.push(t0.elapsed().as_nanos() as u64);
                            bytes += grant.len() as u64;
                            break;
                        }
                        Err(e) if e.is_busy() => {
                            rejections += 1;
                            thread::sleep(Duration::from_micros(50));
                        }
                        Err(e) => return Err(format!("grant failed: {e}")),
                    }
                }
            }
            client.close();
            Ok((latencies_ns, rejections, bytes))
        }));
    }
    let mut latencies = Vec::new();
    let mut rejections = 0u64;
    let mut total_bytes = 0u64;
    for (client_id, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(Ok((lat, rej, bytes))) => {
                latencies.extend(lat);
                rejections += rej;
                total_bytes += bytes;
            }
            Ok(Err(e)) => return Err(format!("client {client_id}: {e}")),
            Err(_) => return Err(format!("client {client_id} panicked")),
        }
    }
    let wall_ns = started.elapsed().as_nanos();
    service
        .shutdown()
        .map_err(|e| format!("shutdown failed: {e}"))?;
    latencies.sort_unstable();
    Ok(LoadSection {
        grants: latencies.len() as u64,
        rejections,
        total_bytes,
        wall_ns,
        p50_us: percentile_us(&latencies, 0.50),
        p99_us: percentile_us(&latencies, 0.99),
    })
}

struct FaultSection {
    delivered_bytes: u64,
    alarms: u64,
    requarantines: u64,
    replacements: u64,
    health_clean: bool,
}

impl FaultSection {
    fn bytes_per_alarm(&self) -> f64 {
        if self.alarms == 0 {
            return 0.0;
        }
        self.delivered_bytes as f64 / self.alarms as f64
    }
}

/// Fault drill: slot 0 is permanently clamped low, so its ring must be
/// quarantined and replaced while the pooled stream stays health-clean.
fn fault_drill(options: &Options) -> Result<FaultSection, String> {
    let mut config = bench_pool(2, options.seed);
    config.max_relock_windows = 4;
    let spec = &config.sources[0];
    let period = spec.ring.stream_config().predicted_period_ps(&spec.board(0));
    let clamp_from = config.warmup_periods * period;
    // Ring nets are named `str{i}` / `iro{i}`; clamp the first stage.
    let net = match spec.ring {
        RingSpec::Str32 | RingSpec::Str64 => "str0",
        RingSpec::Iro32 => "iro0",
    };
    let plan = FaultPlan::new(spec.seed)
        .with_stuck_at(net, Bit::Low, clamp_from, 1e12)
        .map_err(|e| format!("fault plan: {e}"))?;
    config.sources[0] = SourceSpec::new(spec.ring, spec.seed).with_fault(plan);

    let mut pool = SourcePool::start(&config, 2).map_err(|e| format!("pool: {e}"))?;
    let nbytes = options.requests * options.bytes * 2;
    let delivered = pool.read_bytes(nbytes).map_err(|e| format!("read: {e}"))?;
    let status = pool.status().to_vec();
    pool.shutdown();

    let alarms: u64 = status.iter().map(|s| s.stats.alarms).sum();
    let requarantines: u64 = status.iter().map(|s| s.stats.requarantines).sum();
    let replacements: u64 = status.iter().map(|s| s.stats.replacements).sum();
    let bits = BitString::from_packed(&delivered, delivered.len() * 8);
    let (rct, apt) = health::scan(&bits, config.claimed_min_entropy)
        .map_err(|e| format!("health scan: {e}"))?;
    Ok(FaultSection {
        delivered_bytes: delivered.len() as u64,
        alarms,
        requarantines,
        replacements,
        health_clean: (rct, apt) == (0, 0),
    })
}

struct SmokeSection {
    socket: String,
    clients: usize,
    bytes_served: usize,
    deterministic: bool,
    clean_shutdown: bool,
}

/// Socket smoke: a UDS server in deterministic mode, three concurrent
/// `UdsClient`s, and the served allocation checked byte-for-byte
/// against a fresh in-process pool replay.
fn uds_smoke(options: &Options) -> Result<SmokeSection, String> {
    let clients = 3usize;
    let smoke = Options {
        full: options.full,
        seed: options.seed,
        clients,
        requests: options.requests.min(4),
        bytes: options.bytes.min(24),
        out: String::new(),
        smoke: true,
        socket: None,
    };
    let socket = options.socket.clone().unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("strent-serve-smoke-{}.sock", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    let config = ServeConfig {
        pool: bench_pool(clients, smoke.seed),
        workers: 2,
        mode: SchedulerMode::Deterministic {
            expected_clients: clients,
        },
    };
    let service =
        EntropyService::start(&config).map_err(|e| format!("service start failed: {e}"))?;
    let server = UdsServer::start(service.connector(), &socket)
        .map_err(|e| format!("server start failed: {e}"))?;

    let (tx, rx) = mpsc::channel();
    let mut handles = Vec::new();
    for client_id in 0..clients {
        let path = socket.clone();
        let sizes: Vec<u32> = (0..smoke.requests)
            .map(|round| {
                u32::try_from(request_size(&smoke, client_id, round)).expect("small size")
            })
            .collect();
        let tx = tx.clone();
        handles.push(thread::spawn(move || {
            let run = || -> Result<Vec<u8>, String> {
                let mut client =
                    UdsClient::connect(&path, u32::try_from(client_id).expect("small id"))
                        .map_err(|e| format!("connect: {e}"))?;
                let mut stream = Vec::new();
                for nbytes in sizes {
                    stream.extend(
                        client
                            .request(nbytes)
                            .map_err(|e| format!("request: {e}"))?,
                    );
                }
                client.close().map_err(|e| format!("close: {e}"))?;
                Ok(stream)
            };
            let _ = tx.send((client_id, run()));
        }));
    }
    drop(tx);
    let mut streams = vec![Vec::new(); clients];
    for _ in 0..clients {
        let (client_id, result) = rx
            .recv_timeout(Duration::from_secs(120))
            .map_err(|_| "smoke client timed out".to_owned())?;
        streams[client_id] = result.map_err(|e| format!("client {client_id}: {e}"))?;
    }
    for handle in handles {
        let _ = handle.join();
    }
    let clean_shutdown = server.shutdown().is_ok() && service.shutdown().is_ok();

    let replay = replay_allocation(&smoke, clients)?;
    Ok(SmokeSection {
        socket,
        clients,
        bytes_served: streams.iter().map(Vec::len).sum(),
        deterministic: streams == replay,
        clean_shutdown,
    })
}

fn emit_json(
    options: &Options,
    det: &DeterminismSection,
    load: &LoadSection,
    fault: &FaultSection,
    smoke: Option<&SmokeSection>,
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"strentropy-bench-serve/1\",");
    let _ = writeln!(
        json,
        "  \"effort\": \"{}\",",
        if options.full { "full" } else { "quick" }
    );
    let _ = writeln!(json, "  \"seed\": {},", options.seed);
    let _ = writeln!(
        json,
        "  \"trace\": {{\"clients\": {}, \"requests_per_client\": {}, \
         \"base_bytes\": {}}},",
        options.clients, options.requests, options.bytes
    );
    json.push_str("  \"determinism\": {\n");
    json.push_str("    \"worker_digests\": [");
    for (i, (workers, digest)) in det.digests.iter().enumerate() {
        let _ = write!(
            json,
            "{}{{\"workers\": {workers}, \"fnv1a64\": \"{digest:016x}\"}}",
            if i == 0 { "" } else { ", " }
        );
    }
    json.push_str("],\n");
    let _ = writeln!(json, "    \"bytes_per_run\": {},", det.bytes_per_run);
    let _ = writeln!(json, "    \"bit_identical\": {},", det.bit_identical);
    let _ = writeln!(json, "    \"matches_pool_replay\": {}", det.matches_replay);
    json.push_str("  },\n");
    json.push_str("  \"load\": {\n");
    let _ = writeln!(json, "    \"grants\": {},", load.grants);
    let _ = writeln!(json, "    \"rejections\": {},", load.rejections);
    let _ = writeln!(json, "    \"rejection_rate\": {:.4},", load.rejection_rate());
    let _ = writeln!(json, "    \"total_bytes\": {},", load.total_bytes);
    let _ = writeln!(json, "    \"wall_ns\": {},", load.wall_ns);
    let _ = writeln!(
        json,
        "    \"throughput_bytes_per_sec\": {:.0},",
        load.throughput_bytes_per_sec()
    );
    let _ = writeln!(json, "    \"latency_p50_us\": {:.1},", load.p50_us);
    let _ = writeln!(json, "    \"latency_p99_us\": {:.1}", load.p99_us);
    json.push_str("  },\n");
    json.push_str("  \"fault_drill\": {\n");
    let _ = writeln!(json, "    \"delivered_bytes\": {},", fault.delivered_bytes);
    let _ = writeln!(json, "    \"alarms\": {},", fault.alarms);
    let _ = writeln!(json, "    \"requarantines\": {},", fault.requarantines);
    let _ = writeln!(json, "    \"replacements\": {},", fault.replacements);
    let _ = writeln!(json, "    \"bytes_per_alarm\": {:.1},", fault.bytes_per_alarm());
    let _ = writeln!(json, "    \"health_clean\": {}", fault.health_clean);
    let _ = write!(json, "  }}");
    if let Some(smoke) = smoke {
        json.push_str(",\n  \"uds_smoke\": {\n");
        let _ = writeln!(json, "    \"socket\": \"{}\",", smoke.socket);
        let _ = writeln!(json, "    \"clients\": {},", smoke.clients);
        let _ = writeln!(json, "    \"bytes_served\": {},", smoke.bytes_served);
        let _ = writeln!(json, "    \"deterministic\": {},", smoke.deterministic);
        let _ = writeln!(json, "    \"clean_shutdown\": {}", smoke.clean_shutdown);
        let _ = write!(json, "  }}");
    }
    json.push_str("\n}\n");
    json
}

fn main() -> ExitCode {
    let options = match parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!(
                "{msg}\nusage: serve_load [--quick|--full] [--seed N] [--clients N] \
                 [--requests N] [--bytes N] [--out PATH] [--smoke] [--socket PATH]"
            );
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# serve_load: seed {}, {} clients x {} requests (base {} bytes)",
        options.seed, options.clients, options.requests, options.bytes
    );

    let det = match determinism(&options) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("determinism section failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# determinism: {} bytes/run, digests {} across workers {:?}",
        det.bytes_per_run,
        if det.bit_identical { "identical" } else { "DIVERGED" },
        WORKER_SWEEP
    );
    let load = match load_run(&options) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("load section failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# load: {} grants, {} rejections, {:.0} B/s, p50 {:.0}us p99 {:.0}us",
        load.grants,
        load.rejections,
        load.throughput_bytes_per_sec(),
        load.p50_us,
        load.p99_us
    );
    let fault = match fault_drill(&options) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("fault drill failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# fault drill: {} alarms, {} replacements, {:.0} bytes/alarm, clean={}",
        fault.alarms,
        fault.replacements,
        fault.bytes_per_alarm(),
        fault.health_clean
    );
    let smoke = if options.smoke {
        match uds_smoke(&options) {
            Ok(s) => {
                eprintln!(
                    "# uds smoke: {} clients on {}, {} bytes, deterministic={}, shutdown={}",
                    s.clients, s.socket, s.bytes_served, s.deterministic, s.clean_shutdown
                );
                Some(s)
            }
            Err(e) => {
                eprintln!("uds smoke failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let failed = !det.bit_identical
        || !det.matches_replay
        || fault.alarms == 0
        || fault.replacements == 0
        || !fault.health_clean
        || smoke.as_ref().is_some_and(|s| !s.deterministic || !s.clean_shutdown);

    let json = emit_json(&options, &det, &load, &fault, smoke.as_ref());
    if let Err(e) = std::fs::write(&options.out, &json) {
        eprintln!("cannot write {}: {e}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("# wrote {}", options.out);
    if failed {
        eprintln!("serve_load: an invariant failed (see the JSON report)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
