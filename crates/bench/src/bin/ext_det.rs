//! Regenerates the paper's ext_det result. See `strentropy::experiments::ext_det`.

use std::process::ExitCode;

fn main() -> ExitCode {
    strent_bench::repro_main("ext_det", strentropy::experiments::ext_det::run)
}
