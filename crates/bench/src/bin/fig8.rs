//! Regenerates the paper's fig8 result. See `strentropy::experiments::fig8`.

use std::process::ExitCode;

fn main() -> ExitCode {
    strent_bench::repro_main("fig8", strentropy::experiments::fig8::run)
}
