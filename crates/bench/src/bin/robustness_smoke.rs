//! Robustness smoke test: drives a resilient sweep with injected
//! failures and checks the partial-results contract end to end.
//!
//! Fourteen jobs run through [`SweepRunner::run_resilient`]; jobs 3 and
//! 9 panic on every attempt, job 6 runs a free-running oscillator that
//! exhausts its event budget (a stall), and the remaining eleven finish
//! normally. The binary asserts eleven successes plus a three-entry
//! failure manifest, prints the manifest JSON on stdout, and exits zero
//! only under `--keep-going` (partial results accepted); without the
//! flag the failures make the run exit non-zero — the same gate
//! `repro_all` applies to failing sections.

use std::process::ExitCode;

use strent_bench::ReproOptions;
use strentropy::sim::{
    Bit, Component, Context, Event, JobError, NetId, RetryPolicy, SimError, Simulator,
    SweepRunner, Time,
};

/// Jobs that panic on every attempt.
const PANICKING: [usize; 2] = [3, 9];
/// The job whose simulation never terminates on its own.
const STALLING: usize = 6;
/// Total jobs in the sweep.
const JOBS: usize = 14;

/// An inverting delay stage closed on itself: oscillates forever.
struct LoopedInverter {
    net: NetId,
    delay_ps: f64,
}

impl Component for LoopedInverter {
    fn on_event(&mut self, event: &Event, ctx: &mut Context<'_>) {
        if let Event::NetChanged { net, value } = *event {
            if net == self.net {
                ctx.schedule_net(self.net, !value, self.delay_ps);
            }
        }
    }
}

fn oscillator(seed: u64) -> Result<Simulator, SimError> {
    let mut sim = Simulator::new(seed);
    let net = sim.add_net("osc");
    let inv = sim.add_component(LoopedInverter {
        net,
        delay_ps: 100.0,
    });
    sim.listen(net, inv)?;
    sim.inject(net, Bit::High, 0.0)?;
    Ok(sim)
}

fn main() -> ExitCode {
    let options = match ReproOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}\nusage: robustness_smoke [--seed N] [--keep-going]");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("# robustness_smoke (seed {})", options.seed);

    let configs: Vec<usize> = (0..JOBS).collect();
    let policy = RetryPolicy::default()
        .with_attempts(2)
        .with_max_events(2_000);
    // The injected panics are the point of this smoke; keep the default
    // hook from spraying backtraces over the CI log. The payloads still
    // reach the failure manifest through catch_unwind.
    std::panic::set_hook(Box::new(|_| {}));
    let report = SweepRunner::new(options.seed).run_resilient(
        &configs,
        policy,
        |job, meter| -> Result<u64, JobError<SimError>> {
            if PANICKING.contains(&job.index) {
                panic!("injected panic in job {}", job.index);
            }
            let mut sim = oscillator(job.seed()).map_err(JobError::from_sim)?;
            job.budget.apply_to(&mut sim);
            // The stalling job asks for an endless horizon; everyone
            // else stops well inside the 2000-event budget.
            let horizon = if job.index == STALLING { 1e15 } else { 50_000.0 };
            sim.run_until(Time::from_ps(horizon))
                .map_err(JobError::from_sim)?;
            meter.record_sim(sim.stats());
            Ok(sim.stats().events_processed)
        },
    );

    let _ = std::panic::take_hook();
    let manifest = report.failure_manifest_json();
    println!("{manifest}");

    // The smoke contract: partial results survive, failures are typed.
    let mut problems = Vec::new();
    if report.successes() != JOBS - 3 {
        problems.push(format!("expected 11 successes, got {}", report.successes()));
    }
    let got: Vec<(usize, &str, u32)> = report
        .failures
        .iter()
        .map(|f| (f.index, f.kind.label(), f.attempts))
        .collect();
    let want = vec![(3, "panicked", 2), (6, "stalled", 2), (9, "panicked", 2)];
    if got != want {
        problems.push(format!("manifest mismatch: got {got:?}, want {want:?}"));
    }
    for (index, slot) in report.results.iter().enumerate() {
        let should_fail = PANICKING.contains(&index) || index == STALLING;
        if slot.is_some() == should_fail {
            problems.push(format!("job {index}: wrong slot state"));
        }
    }
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("smoke FAILED: {p}");
        }
        return ExitCode::from(2);
    }

    eprintln!(
        "smoke ok: {}/{} successes, {} manifest entries",
        report.successes(),
        JOBS,
        report.failures.len()
    );
    if options.keep_going {
        eprintln!("--keep-going: partial results accepted");
        ExitCode::SUCCESS
    } else {
        eprintln!("failures present and no --keep-going: exiting non-zero");
        ExitCode::FAILURE
    }
}
