//! # strent-bench — the reproduction harness
//!
//! * `repro_*` binaries — one per table/figure; each prints the same
//!   rows/series the paper reports. Pass `--quick` for a reduced run and
//!   `--seed N` to change the master seed.
//! * Criterion benches (`benches/`) — regeneration benchmarks per
//!   table/figure plus engine and TRNG ablations.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::process::ExitCode;

use strentropy::experiments::Effort;

/// Command-line options shared by all `repro_*` binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReproOptions {
    /// The simulation effort.
    pub effort: Effort,
    /// The master seed.
    pub seed: u64,
    /// Escalate netlist lints (SL0xx) from warnings to hard errors —
    /// the CI setting, so a structurally suspect netlist fails the run
    /// instead of printing to stderr.
    pub deny_lints: bool,
    /// Keep running after a section fails (multi-section binaries like
    /// `repro_all`): remaining sections still execute, failures are
    /// collected into a JSON report on stderr, and the exit code stays
    /// non-zero.
    pub keep_going: bool,
}

impl Default for ReproOptions {
    fn default() -> Self {
        ReproOptions {
            effort: Effort::Full,
            seed: strentropy::calibration::PAPER_SEED,
            deny_lints: false,
            keep_going: false,
        }
    }
}

impl ReproOptions {
    /// Parses `--quick`, `--seed N` and `--deny-lints` from an
    /// argument iterator.
    ///
    /// Unknown arguments are reported on the returned `Err`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown or malformed
    /// arguments.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut options = ReproOptions::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => options.effort = Effort::Quick,
                "--full" => options.effort = Effort::Full,
                "--deny-lints" => options.deny_lints = true,
                "--keep-going" => options.keep_going = true,
                "--seed" => {
                    let value = args
                        .next()
                        .ok_or_else(|| "--seed requires a value".to_owned())?;
                    options.seed = value
                        .parse()
                        .map_err(|_| format!("invalid seed: {value}"))?;
                }
                other => return Err(format!("unknown argument: {other}")),
            }
        }
        Ok(options)
    }
}

/// Renders the failure half of a multi-section run as deterministic
/// JSON: which sections failed and why, alongside the totals — the
/// `repro_all --keep-going` counterpart of the sweep layer's
/// [`failure_manifest_json`](strentropy::sim::SweepReport::failure_manifest_json).
#[must_use]
pub fn section_failure_report(sections: usize, failures: &[(String, String)]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n");
    out.push_str(&format!("  \"sections\": {sections},\n"));
    out.push_str(&format!(
        "  \"completed\": {},\n",
        sections.saturating_sub(failures.len())
    ));
    out.push_str("  \"failures\": [");
    for (i, (section, error)) in failures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"section\": \"{}\", \"error\": \"{}\"}}",
            escape_json(section),
            escape_json(error)
        ));
    }
    if failures.is_empty() {
        out.push_str("]\n}");
    } else {
        out.push_str("\n  ]\n}");
    }
    out
}

/// Escapes a string for embedding in a JSON literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs one experiment and prints its report — the body of every
/// `repro_*` binary.
pub fn repro_main<T: Display, E: Display>(
    name: &str,
    run: impl FnOnce(Effort, u64) -> Result<T, E>,
) -> ExitCode {
    let options = match ReproOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}\nusage: {name} [--quick|--full] [--seed N] [--deny-lints]");
            return ExitCode::FAILURE;
        }
    };
    if options.deny_lints {
        strentropy::rings::lint::set_policy(strentropy::rings::LintPolicy::Deny);
    }
    eprintln!(
        "# {name} ({:?} effort, seed {})",
        options.effort, options.seed
    );
    match run(options.effort, options.seed) {
        Ok(result) => {
            println!("{result}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("{name} failed: {err}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ReproOptions, String> {
        ReproOptions::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults_and_flags() {
        let o = parse(&[]).expect("valid");
        assert_eq!(o.effort, Effort::Full);
        assert_eq!(o.seed, strentropy::calibration::PAPER_SEED);
        let o = parse(&["--quick", "--seed", "7"]).expect("valid");
        assert_eq!(o.effort, Effort::Quick);
        assert_eq!(o.seed, 7);
        let o = parse(&["--full"]).expect("valid");
        assert_eq!(o.effort, Effort::Full);
        assert!(!o.deny_lints);
        let o = parse(&["--deny-lints"]).expect("valid");
        assert!(o.deny_lints);
    }

    #[test]
    fn bad_arguments_are_reported() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seed", "abc"]).is_err());
    }

    #[test]
    fn keep_going_flag_parses() {
        assert!(!parse(&[]).expect("valid").keep_going);
        assert!(parse(&["--keep-going"]).expect("valid").keep_going);
    }

    #[test]
    fn section_failure_report_shape() {
        let clean = section_failure_report(18, &[]);
        assert!(clean.contains("\"sections\": 18"));
        assert!(clean.contains("\"completed\": 18"));
        assert!(clean.contains("\"failures\": []"));
        let failures = vec![
            ("FIG5".to_owned(), "ring \"a\" died\n".to_owned()),
            ("TAB1".to_owned(), "nope".to_owned()),
        ];
        let report = section_failure_report(18, &failures);
        assert!(report.contains("\"completed\": 16"));
        assert!(report.contains("\\\"a\\\""), "quotes escaped: {report}");
        assert!(report.contains("\\n"), "newlines escaped");
        assert!(report.contains("\"section\": \"TAB1\""));
    }
}
