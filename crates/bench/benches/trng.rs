//! TRNG pipeline throughput: phase-model generation, post-processing,
//! entropy estimation and the statistical test battery.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use strent_trng::phase::PhaseModel;
use strent_trng::{battery, entropy, postprocess, BitString};

fn sample_bits(n: usize) -> BitString {
    let mut model = PhaseModel::new(3333.0, 1200.0, 99).expect("valid");
    model.generate(n)
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trng/generate");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("phase_model_100k_bits", |b| {
        let mut model = PhaseModel::new(3333.0, 1200.0, black_box(99)).expect("valid");
        b.iter(|| model.generate(100_000));
    });
    group.finish();
}

fn bench_postprocess(c: &mut Criterion) {
    let bits = sample_bits(100_000);
    let mut group = c.benchmark_group("trng/postprocess");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("von_neumann_100k", |b| {
        b.iter(|| postprocess::von_neumann(black_box(&bits)));
    });
    group.bench_function("xor_decimate_4_100k", |b| {
        b.iter(|| postprocess::xor_decimate(black_box(&bits), 4));
    });
    group.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    let bits = sample_bits(100_000);
    let mut group = c.benchmark_group("trng/evaluate");
    group.sample_size(10);
    group.bench_function("battery_100k", |b| {
        b.iter(|| battery::run_all(black_box(&bits)).expect("long enough"));
    });
    group.bench_function("entropy_estimators_100k", |b| {
        b.iter(|| {
            let h = entropy::shannon_bit_entropy(black_box(&bits)).expect("enough");
            let m = entropy::markov_entropy(&bits).expect("enough");
            let a = entropy::autocorrelation(&bits, 1).expect("enough");
            (h, m, a)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_postprocess, bench_evaluation);
criterion_main!(benches);
