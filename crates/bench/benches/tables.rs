//! Regeneration benchmarks for the paper's tables and the extension
//! experiments.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use strentropy::experiments::{
    ext_charlie, ext_coherent, ext_det, ext_flicker, ext_method, ext_mode, ext_multi,
    ext_restart,
    ext_trng, obs_a,
    table1, table2, Effort,
};

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);

    group.bench_function("table1_excursion", |b| {
        b.iter(|| table1::run(Effort::Quick, black_box(1)).expect("runs"));
    });
    group.bench_function("table2_process", |b| {
        b.iter(|| table2::run(Effort::Quick, black_box(1)).expect("runs"));
    });
    group.bench_function("obs_a_locking_range", |b| {
        b.iter(|| obs_a::run(Effort::Quick, black_box(1)).expect("runs"));
    });
    group.bench_function("ext_det_attenuation", |b| {
        b.iter(|| ext_det::run(Effort::Quick, black_box(1)).expect("runs"));
    });
    group.bench_function("ext_method_divider", |b| {
        b.iter(|| ext_method::run(Effort::Quick, black_box(1)).expect("runs"));
    });
    group.bench_function("ext_trng_attack", |b| {
        b.iter(|| ext_trng::run(Effort::Quick, black_box(1)).expect("runs"));
    });
    group.bench_function("ext_mode_map", |b| {
        b.iter(|| ext_mode::run(Effort::Quick, black_box(1)).expect("runs"));
    });
    group.bench_function("ext_charlie_ablation", |b| {
        b.iter(|| ext_charlie::run(Effort::Quick, black_box(1)).expect("runs"));
    });
    group.bench_function("ext_flicker_allan", |b| {
        b.iter(|| ext_flicker::run(Effort::Quick, black_box(1)).expect("runs"));
    });
    group.bench_function("ext_restart_campaign", |b| {
        b.iter(|| ext_restart::run(Effort::Quick, black_box(1)).expect("runs"));
    });
    group.bench_function("ext_multi_phases", |b| {
        b.iter(|| ext_multi::run(Effort::Quick, black_box(1)).expect("runs"));
    });
    group.bench_function("ext_coherent_beat", |b| {
        b.iter(|| ext_coherent::run(Effort::Quick, black_box(1)).expect("runs"));
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
