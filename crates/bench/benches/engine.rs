//! Simulation-engine ablations:
//!
//! * pending-event set: timing wheel vs binary heap vs calendar queue,
//!   across small/medium/large IRO and STR workloads;
//! * ring family cost: IRO vs STR event processing;
//! * event-driven simulation vs the closed-form analytic model.
//!
//! `docs/engine_perf.md` explains how these workloads relate to the
//! `BENCH_engine.json` numbers emitted by `bench_sweep`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use strent_device::{Board, Technology};
use strent_rings::{analytic, iro, str_ring, IroConfig, StrConfig};
use strent_sim::{BinaryHeapQueue, CalendarQueue, EventQueue, Simulator, Time, WheelQueue};

/// IRO lengths for the size sweep (inverting rings must be odd, so
/// "3/32/96-stage" maps to 3/33/95).
const IRO_STAGES: [usize; 3] = [3, 33, 95];
/// STR stage counts for the size sweep (tokens = stages/2 keeps the
/// ring in the evenly-spaced regime at every size).
const STR_STAGES: [usize; 3] = [8, 32, 96];

fn board() -> Board {
    Board::new(Technology::cyclone_iii(), 0, 7)
}

fn run_iro_on<Q: EventQueue>(mut sim: Simulator<Q>, board: &Board, stages: usize) -> u64 {
    let config = IroConfig::new(stages).expect("valid length");
    let handle = iro::build(&config, board, &mut sim).expect("wires");
    sim.watch(handle.output()).expect("net exists");
    sim.run_until(Time::from_us(1.0)).expect("no limit");
    sim.stats().events_processed
}

fn run_str_on<Q: EventQueue>(mut sim: Simulator<Q>, board: &Board, stages: usize) -> u64 {
    let config = StrConfig::new(stages, stages / 2).expect("valid counts");
    let handle = str_ring::build(&config, board, &mut sim).expect("wires");
    sim.watch(handle.output()).expect("net exists");
    sim.run_until(Time::from_us(1.0)).expect("no limit");
    sim.stats().events_processed
}

fn bench_queues(c: &mut Criterion) {
    let board = board();
    let mut group = c.benchmark_group("engine/queue");
    for stages in IRO_STAGES {
        group.bench_function(&format!("wheel_iro{stages}_1us"), |b| {
            b.iter(|| {
                run_iro_on(
                    Simulator::with_queue(black_box(7), WheelQueue::new()),
                    &board,
                    stages,
                )
            });
        });
        group.bench_function(&format!("binary_heap_iro{stages}_1us"), |b| {
            b.iter(|| {
                run_iro_on(
                    Simulator::with_queue(black_box(7), BinaryHeapQueue::new()),
                    &board,
                    stages,
                )
            });
        });
        group.bench_function(&format!("calendar_iro{stages}_1us"), |b| {
            b.iter(|| {
                run_iro_on(
                    Simulator::with_queue(black_box(7), CalendarQueue::new(200.0)),
                    &board,
                    stages,
                )
            });
        });
    }
    for stages in STR_STAGES {
        group.bench_function(&format!("wheel_str{stages}_1us"), |b| {
            b.iter(|| {
                run_str_on(
                    Simulator::with_queue(black_box(7), WheelQueue::new()),
                    &board,
                    stages,
                )
            });
        });
        group.bench_function(&format!("binary_heap_str{stages}_1us"), |b| {
            b.iter(|| {
                run_str_on(
                    Simulator::with_queue(black_box(7), BinaryHeapQueue::new()),
                    &board,
                    stages,
                )
            });
        });
        group.bench_function(&format!("calendar_str{stages}_1us"), |b| {
            b.iter(|| {
                run_str_on(
                    Simulator::with_queue(black_box(7), CalendarQueue::new(200.0)),
                    &board,
                    stages,
                )
            });
        });
    }
    group.finish();
}

fn bench_ring_families(c: &mut Criterion) {
    let board = board();
    let mut group = c.benchmark_group("engine/rings");
    group.bench_function("iro25_1us", |b| {
        b.iter(|| run_iro_on(Simulator::new(black_box(7)), &board, 25));
    });
    group.bench_function("str24_1us", |b| {
        b.iter(|| run_str_on(Simulator::new(black_box(7)), &board, 24));
    });
    group.finish();
}

fn bench_analytic_vs_event(c: &mut Criterion) {
    let board = board();
    let mut group = c.benchmark_group("engine/analytic");
    let config = StrConfig::new(96, 48).expect("valid counts");
    group.bench_function("analytic_str96_period", |b| {
        b.iter(|| analytic::str_period_ps(black_box(&config), &board));
    });
    group.bench_function("event_driven_str96_100_periods", |b| {
        b.iter(|| {
            strent_rings::measure::run_str(black_box(&config), &board, 7, 100)
                .expect("oscillates")
                .frequency_mhz
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_queues,
    bench_ring_families,
    bench_analytic_vs_event
);
criterion_main!(benches);
