//! Simulation-engine ablations:
//!
//! * pending-event set: binary heap vs calendar queue;
//! * ring family cost: IRO vs STR event processing;
//! * event-driven simulation vs the closed-form analytic model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use strent_device::{Board, Technology};
use strent_rings::{analytic, iro, str_ring, IroConfig, StrConfig};
use strent_sim::{BinaryHeapQueue, CalendarQueue, EventQueue, Simulator, Time};

fn board() -> Board {
    Board::new(Technology::cyclone_iii(), 0, 7)
}

fn run_str_on<Q: EventQueue>(mut sim: Simulator<Q>, board: &Board) -> usize {
    let config = StrConfig::new(32, 16).expect("valid counts");
    let handle = str_ring::build(&config, board, &mut sim).expect("wires");
    sim.watch(handle.output()).expect("net exists");
    sim.run_until(Time::from_us(1.0)).expect("no limit");
    sim.trace(handle.output()).expect("watched").len()
}

fn bench_queues(c: &mut Criterion) {
    let board = board();
    let mut group = c.benchmark_group("engine/queue");
    group.bench_function("binary_heap_str32_1us", |b| {
        b.iter(|| {
            run_str_on(
                Simulator::with_queue(black_box(7), BinaryHeapQueue::new()),
                &board,
            )
        });
    });
    group.bench_function("calendar_str32_1us", |b| {
        b.iter(|| {
            run_str_on(
                Simulator::with_queue(black_box(7), CalendarQueue::new(200.0)),
                &board,
            )
        });
    });
    group.finish();
}

fn bench_ring_families(c: &mut Criterion) {
    let board = board();
    let mut group = c.benchmark_group("engine/rings");
    group.bench_function("iro25_1us", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(black_box(7));
            let config = IroConfig::new(25).expect("valid length");
            let handle = iro::build(&config, &board, &mut sim).expect("wires");
            sim.watch(handle.output()).expect("net exists");
            sim.run_until(Time::from_us(1.0)).expect("no limit");
            sim.stats().events_processed
        });
    });
    group.bench_function("str24_1us", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(black_box(7));
            let config = StrConfig::new(24, 12).expect("valid counts");
            let handle = str_ring::build(&config, &board, &mut sim).expect("wires");
            sim.watch(handle.output()).expect("net exists");
            sim.run_until(Time::from_us(1.0)).expect("no limit");
            sim.stats().events_processed
        });
    });
    group.finish();
}

fn bench_analytic_vs_event(c: &mut Criterion) {
    let board = board();
    let mut group = c.benchmark_group("engine/analytic");
    let config = StrConfig::new(96, 48).expect("valid counts");
    group.bench_function("analytic_str96_period", |b| {
        b.iter(|| analytic::str_period_ps(black_box(&config), &board));
    });
    group.bench_function("event_driven_str96_100_periods", |b| {
        b.iter(|| {
            strent_rings::measure::run_str(black_box(&config), &board, 7, 100)
                .expect("oscillates")
                .frequency_mhz
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_queues,
    bench_ring_families,
    bench_analytic_vs_event
);
criterion_main!(benches);
