//! Regeneration benchmarks for every figure of the paper.
//!
//! Each benchmark regenerates one figure at `Effort::Quick`; the goal is
//! tracking the cost of the full experiment pipeline (build ring ->
//! simulate -> analyze), not micro-performance.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use strentropy::experiments::{fig11, fig12, fig5, fig7, fig8, fig9, Effort};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig5_modes", |b| {
        b.iter(|| fig5::run(Effort::Quick, black_box(1)).expect("runs"));
    });
    group.bench_function("fig7_charlie", |b| {
        b.iter(|| fig7::run(Effort::Quick, black_box(1)).expect("runs"));
    });
    group.bench_function("fig8_voltage", |b| {
        b.iter(|| fig8::run(Effort::Quick, black_box(1)).expect("runs"));
    });
    group.bench_function("fig9_histograms", |b| {
        b.iter(|| fig9::run(Effort::Quick, black_box(1)).expect("runs"));
    });
    group.bench_function("fig11_iro_jitter", |b| {
        b.iter(|| fig11::run(Effort::Quick, black_box(1)).expect("runs"));
    });
    group.bench_function("fig12_str_jitter", |b| {
        b.iter(|| fig12::run(Effort::Quick, black_box(1)).expect("runs"));
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
