//! Analysis-toolkit micro-benchmarks: the statistics that every
//! experiment runs in its inner loop.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use strent_analysis::{
    allan, divider, fit, jitter, normality, special, spectrum, Histogram, Summary,
};

fn periods(n: usize) -> Vec<f64> {
    // Deterministic pseudo-Gaussian periods around 3333 ps.
    (0..n)
        .map(|i| {
            let u = (i as f64 + 0.5) / n as f64;
            3333.0 + 3.0 * special::normal_quantile(u % 0.9999 + 0.00005)
        })
        .collect()
}

fn bench_statistics(c: &mut Criterion) {
    let data = periods(100_000);
    let mut group = c.benchmark_group("analysis/stats");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("summary_100k", |b| {
        b.iter(|| Summary::from_slice(black_box(&data)));
    });
    group.bench_function("histogram_100k_40bins", |b| {
        b.iter(|| Histogram::from_data(black_box(&data), 40).expect("valid"));
    });
    group.bench_function("period_jitter_100k", |b| {
        b.iter(|| jitter::period_jitter(black_box(&data)).expect("valid"));
    });
    group.bench_function("allan_curve_100k", |b| {
        b.iter(|| allan::allan_curve(black_box(&data), 64).expect("valid"));
    });
    group.finish();
}

fn bench_tests_and_fits(c: &mut Criterion) {
    let data = periods(20_000);
    let mut group = c.benchmark_group("analysis/tests");
    group.bench_function("chi_square_gof_20k", |b| {
        b.iter(|| normality::chi_square_gof(black_box(&data), 40).expect("valid"));
    });
    group.bench_function("anderson_darling_20k", |b| {
        b.iter(|| normality::anderson_darling(black_box(&data)).expect("valid"));
    });
    group.bench_function("divider_method_20k_n16", |b| {
        b.iter(|| divider::measure(black_box(&data), 16).expect("valid"));
    });
    let k: Vec<f64> = (1..=200).map(f64::from).collect();
    let y: Vec<f64> = k.iter().map(|&x| 2.0 * x.sqrt()).collect();
    group.bench_function("sqrt_law_fit_200", |b| {
        b.iter(|| fit::sqrt_law(black_box(&k), black_box(&y)).expect("valid"));
    });
    group.bench_function("periodogram_20k_64bins", |b| {
        b.iter(|| spectrum::periodogram(black_box(&data), 64).expect("valid"));
    });
    group.finish();
}

fn bench_special_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/special");
    group.bench_function("erfc_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in -300..=300 {
                acc += special::erfc(black_box(f64::from(i) * 0.01));
            }
            acc
        });
    });
    group.bench_function("gamma_q_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=200 {
                acc += special::gamma_q(black_box(f64::from(i) * 0.25), 10.0);
            }
            acc
        });
    });
    group.bench_function("normal_quantile_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..1000 {
                acc += special::normal_quantile(black_box(f64::from(i) / 1000.0));
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_statistics,
    bench_tests_and_fits,
    bench_special_functions
);
criterion_main!(benches);
