//! Closed-form predictions for both ring families.
//!
//! These are the paper's analytic results (Sec. III/IV), evaluated on our
//! device model. They serve as cross-checks for the event-driven
//! simulations — agreement between the two is itself one of the
//! reproduction's validation criteria.

use strent_device::Board;

use crate::iro::IroConfig;
use crate::str_ring::StrConfig;

/// Predicted IRO period: two laps of the event through all stage static
/// delays at the board's DC operating point (evaluated at `t = 0`).
#[must_use]
pub fn iro_period_ps(config: &IroConfig, board: &Board) -> f64 {
    let supply = board.supply();
    2.0 * config
        .cells(board)
        .iter()
        .map(|c| c.static_delay_ps(supply, 0.0))
        .sum::<f64>()
}

/// Predicted IRO frequency in MHz.
#[must_use]
pub fn iro_frequency_mhz(config: &IroConfig, board: &Board) -> f64 {
    1e6 / iro_period_ps(config, board)
}

/// Eq. 4: predicted IRO period jitter `sigma_period = sqrt(2L) * sigma_g`.
#[must_use]
pub fn iro_sigma_period_ps(config: &IroConfig, board: &Board) -> f64 {
    (2.0 * config.length() as f64).sqrt() * board.technology().sigma_g_ps()
}

/// Predicted STR period in the evenly-spaced mode.
///
/// The output of a stage toggles at every token passage; with `NT` tokens
/// taking `Deff` per stage, passages arrive every `L * Deff / NT`, so the
/// period is `T = 2 * L * Deff / NT`.
///
/// For `NT = NB` (the paper's Eq. 2 setup, `Dff = Drr` in a LUT
/// implementation) the steady-state separation is zero and
/// `Deff = Ds + Dcharlie` — the Charlie diagram bottom. For `NT != NB`
/// this is a lower bound on `Deff` (the separation leaves the bottom),
/// so the prediction is exact for the paper's configurations and
/// approximate otherwise.
#[must_use]
pub fn str_period_ps(config: &StrConfig, board: &Board) -> f64 {
    let supply = board.supply();
    let tech = board.technology();
    let charlie_nominal = config.charlie_ps(board);
    let deff_sum: f64 = config
        .cells(board)
        .iter()
        .map(|cell| {
            let v = supply.voltage_at(0.0);
            let scaling = cell.scaling();
            let temp = scaling.temperature_factor(cell.temp_c());
            let dch = charlie_nominal * cell.process_factor(tech.lut_delay_ps())
                * scaling.transistor_factor(v)
                * temp;
            cell.static_delay_ps(supply, 0.0) + dch
        })
        .sum();
    // Mean effective stage delay times 2L/NT.
    2.0 * deff_sum / config.tokens() as f64
}

/// Predicted STR frequency in MHz (evenly-spaced mode).
#[must_use]
pub fn str_frequency_mhz(config: &StrConfig, board: &Board) -> f64 {
    1e6 / str_period_ps(config, board)
}

/// Predicted STR period for **any** token/bubble ratio, from the
/// timing-closure equation of the Charlie model (the general form of
/// the Hamon time-accurate analysis).
///
/// In the evenly-spaced steady state every stage fires at interval
/// `h = T/2`; adjacent stages fire `delta = NT h / L` apart; and the
/// enabling input separation is `s = h (NB - NT) / L`. Substituting
/// into the Charlie firing rule gives the closure equation
///
/// ```text
/// h/2 = Deff + sqrt(Dch^2 + (h (NB - NT) / (2L))^2)
/// ```
///
/// whose squared form is quadratic in `h`; the physical root (the one
/// with `h >= 2 Deff`, where `Deff` is the voltage/process-scaled
/// static stage delay and `Dch` the scaled Charlie magnitude) yields
/// `T = 2h`. For `NT = NB` it reduces to [`str_period_ps`]'s
/// `T = 2 L (Deff + Dch) / NT` with `s = 0`.
///
/// Uses the board's mean effective stage delay (per-cell process
/// factors averaged), like the specialized prediction.
#[must_use]
pub fn str_period_general_ps(config: &StrConfig, board: &Board) -> f64 {
    let supply = board.supply();
    let tech = board.technology();
    let charlie_nominal = config.charlie_ps(board);
    let cells = config.cells(board);
    let n = cells.len() as f64;
    let v = supply.voltage_at(0.0);
    let (mut ds_sum, mut dch_sum) = (0.0, 0.0);
    for cell in &cells {
        let scaling = cell.scaling();
        let temp = scaling.temperature_factor(cell.temp_c());
        ds_sum += cell.static_delay_ps(supply, 0.0);
        dch_sum += charlie_nominal
            * cell.process_factor(tech.lut_delay_ps())
            * scaling.transistor_factor(v)
            * temp;
    }
    let ds = ds_sum / n;
    let dch = dch_sum / n;
    let l = config.length() as f64;
    let r = (config.bubbles() as f64 - config.tokens() as f64) / (2.0 * l);
    // (h/2 - Ds)^2 = Dch^2 + (h r)^2
    // => h^2 (1/4 - r^2) - h Ds + (Ds^2 - Dch^2) = 0.
    let a = 0.25 - r * r;
    let discriminant = (ds * ds - 4.0 * a * (ds * ds - dch * dch)).max(0.0);
    let h = (ds + discriminant.sqrt()) / (2.0 * a);
    2.0 * h
}

/// Eq. 5: predicted STR period jitter `sigma_period ~ sqrt(2) * sigma_g`,
/// independent of the ring length.
#[must_use]
pub fn str_sigma_period_ps(board: &Board) -> f64 {
    std::f64::consts::SQRT_2 * board.technology().sigma_g_ps()
}

/// Eq. 1, the evenly-spaced design rule: the token/bubble ratio should
/// equal `Dff / Drr`. Returns `(actual ratio, target ratio)`; in the LUT
/// implementation `Dff = Drr`, so the target is 1.
#[must_use]
pub fn design_rule(config: &StrConfig) -> (f64, f64) {
    (
        config.tokens() as f64 / config.bubbles() as f64,
        1.0, // Dff / Drr for a single-LUT stage (the paper's Eq. 2 premise)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_device::{Supply, Technology};

    fn quiet_board() -> Board {
        Board::new(
            Technology::cyclone_iii()
                .with_sigma_g_ps(0.0)
                .with_sigma_intra(0.0)
                .with_sigma_inter(0.0),
            0,
            1,
        )
    }

    #[test]
    fn iro_predictions_match_paper_calibration() {
        let board = quiet_board();
        // IRO 3C with no routing: 2*3*255 = 1530 ps -> 653.6 MHz.
        let c3 = IroConfig::new(3)
            .expect("valid")
            .with_routing_ps(0.0)
            .expect("valid routing");
        assert!((iro_period_ps(&c3, &board) - 1530.0).abs() < 1e-9);
        assert!((iro_frequency_mhz(&c3, &board) - 653.6).abs() < 0.5);
        // IRO 5C with calibrated routing lands near Table I's 376 MHz.
        let c5 = IroConfig::new(5).expect("valid");
        let f5 = iro_frequency_mhz(&c5, &board);
        assert!((f5 - 376.0).abs() < 10.0, "IRO 5C {f5} MHz");
        // IRO 80C near 23 MHz.
        let c80 = IroConfig::new(80).expect("valid");
        let f80 = iro_frequency_mhz(&c80, &board);
        assert!((f80 - 23.0).abs() < 1.0, "IRO 80C {f80} MHz");
    }

    #[test]
    fn str_predictions_match_paper_calibration() {
        let board = quiet_board();
        // STR 4C: ~653 MHz.
        let c4 = StrConfig::new(4, 2).expect("valid");
        let f4 = str_frequency_mhz(&c4, &board);
        assert!((f4 - 653.0).abs() < 15.0, "STR 4C {f4} MHz");
        // STR 96C with calibrated routing: ~320 MHz.
        let c96 = StrConfig::new(96, 48).expect("valid");
        let f96 = str_frequency_mhz(&c96, &board);
        assert!((f96 - 320.0).abs() < 10.0, "STR 96C {f96} MHz");
        // STR 24C: ~433 MHz.
        let c24 = StrConfig::new(24, 12).expect("valid");
        let f24 = str_frequency_mhz(&c24, &board);
        assert!((f24 - 433.0).abs() < 15.0, "STR 24C {f24} MHz");
    }

    #[test]
    fn general_period_reduces_to_the_balanced_case() {
        let board = quiet_board();
        for &l in &[8usize, 24, 96] {
            let config = StrConfig::new(l, l / 2).expect("valid counts");
            let special = str_period_ps(&config, &board);
            let general = str_period_general_ps(&config, &board);
            assert!(
                (general / special - 1.0).abs() < 1e-9,
                "L = {l}: {general} vs {special}"
            );
        }
    }

    #[test]
    fn general_period_matches_simulation_across_token_counts() {
        // The headline validation: the closure formula predicts the
        // simulated frequency of unbalanced rings within 2%.
        let board = quiet_board();
        for tokens in [4usize, 8, 12, 16, 20, 24, 28] {
            let config = StrConfig::new(32, tokens).expect("valid counts");
            let predicted = 1e6 / str_period_general_ps(&config, &board);
            let run = crate::measure::run_str(&config, &board, 3, 200).expect("oscillates");
            assert!(
                (run.frequency_mhz / predicted - 1.0).abs() < 0.02,
                "NT = {tokens}: sim {} vs predicted {predicted}",
                run.frequency_mhz
            );
        }
    }

    #[test]
    fn general_period_is_symmetric_and_peaks_at_balance() {
        let board = quiet_board();
        let period = |tokens: usize| {
            str_period_general_ps(
                &StrConfig::new(32, tokens).expect("valid counts"),
                &board,
            )
        };
        // Token/bubble exchange symmetry: T(NT) = T(NB).
        for tokens in [4usize, 8, 12] {
            let mirrored = 32 - tokens;
            assert!(
                (period(tokens) / period(mirrored) - 1.0).abs() < 1e-12,
                "NT = {tokens}"
            );
        }
        // The balanced ring is the fastest.
        assert!(period(16) < period(12));
        assert!(period(16) < period(20));
    }

    #[test]
    fn jitter_predictions() {
        let board = quiet_board();
        let c5 = IroConfig::new(5).expect("valid");
        // These use the technology sigma_g (zeroed in quiet_board).
        assert_eq!(iro_sigma_period_ps(&c5, &board), 0.0);
        let board = Board::new(Technology::cyclone_iii(), 0, 1);
        let s = iro_sigma_period_ps(&c5, &board);
        assert!((s - (10.0_f64).sqrt() * 2.0).abs() < 1e-12);
        assert!((str_sigma_period_ps(&board) - 2.0 * std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn voltage_moves_predictions() {
        let mut board = quiet_board();
        let c = StrConfig::new(8, 4).expect("valid");
        let f_nom = str_frequency_mhz(&c, &board);
        board.set_supply(Supply::dc(1.0));
        let f_low = str_frequency_mhz(&c, &board);
        assert!(f_low < f_nom);
    }

    #[test]
    fn design_rule_for_balanced_ring() {
        let c = StrConfig::new(16, 8).expect("valid");
        let (actual, target) = design_rule(&c);
        assert_eq!(actual, 1.0);
        assert_eq!(target, 1.0);
        let c = StrConfig::new(32, 10).expect("valid");
        assert!((design_rule(&c).0 - 10.0 / 22.0).abs() < 1e-12);
    }
}
