//! The untimed token/bubble algebra of self-timed rings (Sec. II of the
//! paper).
//!
//! A ring of `L` stages is described by its output vector `C[0..L]`.
//! Stage `i` **contains a token** when `C[i] != C[i-1]` and **a bubble**
//! when `C[i] == C[i-1]` (indices mod `L`). A token in stage `i`
//! propagates to stage `i+1` iff stage `i+1` contains a bubble; the
//! corresponding transition flips `C[i+1]`.
//!
//! This module is purely combinatorial — no delays, no randomness — and
//! underpins both the event-driven simulator's initialization and the
//! property-based tests of the conservation invariants.

use serde::{Deserialize, Serialize};
use strent_sim::Bit;

use crate::error::RingError;

/// The instantaneous logical state of a self-timed ring.
///
/// # Examples
///
/// ```
/// use strent_rings::StrState;
///
/// // A 6-stage ring initialized with 2 evenly spread tokens.
/// let state = StrState::with_spread_tokens(6, 2)?;
/// assert_eq!(state.len(), 6);
/// assert_eq!(state.token_count(), 2);
/// assert_eq!(state.bubble_count(), 4);
/// assert!(state.satisfies_oscillation_conditions());
/// # Ok::<(), strent_rings::RingError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StrState {
    outputs: Vec<Bit>,
}

impl StrState {
    /// Builds a state directly from stage outputs.
    ///
    /// # Errors
    ///
    /// Returns [`RingError::InvalidConfig`] if fewer than 3 stages are
    /// given.
    pub fn from_outputs(outputs: Vec<Bit>) -> Result<Self, RingError> {
        if outputs.len() < 3 {
            return Err(RingError::InvalidConfig(format!(
                "a self-timed ring needs at least 3 stages, got {}",
                outputs.len()
            )));
        }
        Ok(StrState { outputs })
    }

    /// Builds a state of `len` stages whose tokens sit at the given stage
    /// indices (all other stages hold bubbles).
    ///
    /// # Errors
    ///
    /// Returns [`RingError::InvalidConfig`] if `len < 3`, a position is
    /// out of range or duplicated, or the token count is odd (an odd
    /// number of output inversions cannot close around the ring).
    pub fn with_tokens_at(len: usize, positions: &[usize]) -> Result<Self, RingError> {
        if len < 3 {
            return Err(RingError::InvalidConfig(format!(
                "a self-timed ring needs at least 3 stages, got {len}"
            )));
        }
        if !positions.len().is_multiple_of(2) {
            return Err(RingError::InvalidConfig(format!(
                "token count must be even, got {}",
                positions.len()
            )));
        }
        let mut is_token = vec![false; len];
        for &p in positions {
            if p >= len {
                return Err(RingError::InvalidConfig(format!(
                    "token position {p} out of range for {len} stages"
                )));
            }
            if is_token[p] {
                return Err(RingError::InvalidConfig(format!(
                    "duplicate token position {p}"
                )));
            }
            is_token[p] = true;
        }
        // C[i] = C[i-1] XOR token[i]; C[len-1] chosen Low, then walk.
        let mut outputs = vec![Bit::Low; len];
        let mut level = Bit::Low; // C[len-1]
        for (i, out) in outputs.iter_mut().enumerate() {
            if is_token[i] {
                level = !level;
            }
            *out = level;
        }
        Ok(StrState { outputs })
    }

    /// Builds a state with `nt` tokens spread as evenly as possible
    /// around the ring — the initialization the paper uses throughout.
    ///
    /// # Errors
    ///
    /// Returns [`RingError::InvalidConfig`] if `len < 3`, `nt` is odd,
    /// zero, or leaves no bubble.
    pub fn with_spread_tokens(len: usize, nt: usize) -> Result<Self, RingError> {
        validate_str_counts(len, nt)?;
        let positions: Vec<usize> = (0..nt).map(|k| k * len / nt).collect();
        StrState::with_tokens_at(len, &positions)
    }

    /// Builds a state with `nt` tokens clustered contiguously starting at
    /// stage 0 — the initialization that provokes the burst mode.
    ///
    /// # Errors
    ///
    /// Returns [`RingError::InvalidConfig`] under the same conditions as
    /// [`StrState::with_spread_tokens`].
    pub fn with_clustered_tokens(len: usize, nt: usize) -> Result<Self, RingError> {
        validate_str_counts(len, nt)?;
        let positions: Vec<usize> = (0..nt).collect();
        StrState::with_tokens_at(len, &positions)
    }

    /// Number of stages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Whether the ring has no stages (never true for a constructed
    /// state, provided for completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// The stage outputs.
    #[must_use]
    pub fn outputs(&self) -> &[Bit] {
        &self.outputs
    }

    /// The output of stage `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn output(&self, i: usize) -> Bit {
        self.outputs[i]
    }

    /// Whether stage `i` contains a token (`C[i] != C[i-1]`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn has_token(&self, i: usize) -> bool {
        let prev = self.outputs[(i + self.len() - 1) % self.len()];
        self.outputs[i] != prev
    }

    /// Whether stage `i` contains a bubble (`C[i] == C[i-1]`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn has_bubble(&self, i: usize) -> bool {
        !self.has_token(i)
    }

    /// Number of tokens in the ring.
    #[must_use]
    pub fn token_count(&self) -> usize {
        (0..self.len()).filter(|&i| self.has_token(i)).count()
    }

    /// Number of bubbles in the ring.
    #[must_use]
    pub fn bubble_count(&self) -> usize {
        self.len() - self.token_count()
    }

    /// Indices of the stages currently holding tokens.
    #[must_use]
    pub fn token_positions(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.has_token(i)).collect()
    }

    /// Whether stage `i` is enabled to fire: it holds a token and the
    /// next stage holds a bubble (the propagation rule of Sec. II-C.2).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn is_enabled(&self, i: usize) -> bool {
        self.has_token(i) && self.has_bubble((i + 1) % self.len())
    }

    /// All currently enabled stages.
    #[must_use]
    pub fn enabled_stages(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.is_enabled(i)).collect()
    }

    /// Fires stage `i`: its Muller gate copies the forward input, setting
    /// `C[i] := C[i-1]`. The token thereby moves from `i` to `i+1`
    /// (equivalently, the bubble moves from `i+1` to `i`).
    ///
    /// # Errors
    ///
    /// Returns [`RingError::InvalidConfig`] if the stage is not enabled.
    pub fn fire(&mut self, i: usize) -> Result<(), RingError> {
        if i >= self.len() || !self.is_enabled(i) {
            return Err(RingError::InvalidConfig(format!(
                "stage {i} is not enabled to fire"
            )));
        }
        let prev = self.outputs[(i + self.len() - 1) % self.len()];
        self.outputs[i] = prev;
        Ok(())
    }

    /// Whether this state satisfies the paper's oscillation conditions:
    /// `L >= 3`, at least one bubble, and a positive even token count.
    #[must_use]
    pub fn satisfies_oscillation_conditions(&self) -> bool {
        let nt = self.token_count();
        self.len() >= 3 && self.bubble_count() >= 1 && nt >= 2 && nt.is_multiple_of(2)
    }

    /// A compact text rendering: `T` for token stages, `.` for bubbles —
    /// the visual language of the paper's Fig. 4/5.
    #[must_use]
    pub fn occupancy_string(&self) -> String {
        (0..self.len())
            .map(|i| if self.has_token(i) { 'T' } else { '.' })
            .collect()
    }
}

/// Shared validation for the token/bubble constructors.
fn validate_str_counts(len: usize, nt: usize) -> Result<(), RingError> {
    if len < 3 {
        return Err(RingError::InvalidConfig(format!(
            "a self-timed ring needs at least 3 stages, got {len}"
        )));
    }
    if nt == 0 || !nt.is_multiple_of(2) {
        return Err(RingError::InvalidConfig(format!(
            "token count must be positive and even, got {nt}"
        )));
    }
    if nt >= len {
        return Err(RingError::InvalidConfig(format!(
            "need at least one bubble: NT={nt} >= L={len}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_tokens_land_where_requested() {
        let s = StrState::with_spread_tokens(8, 4).expect("valid");
        assert_eq!(s.token_count(), 4);
        assert_eq!(s.bubble_count(), 4);
        assert_eq!(s.token_positions(), vec![0, 2, 4, 6]);
        assert!(s.satisfies_oscillation_conditions());
        assert_eq!(s.occupancy_string(), "T.T.T.T.");
    }

    #[test]
    fn clustered_tokens_are_contiguous() {
        let s = StrState::with_clustered_tokens(8, 4).expect("valid");
        assert_eq!(s.token_positions(), vec![0, 1, 2, 3]);
        assert_eq!(s.occupancy_string(), "TTTT....");
    }

    #[test]
    fn token_definition_matches_paper() {
        // Tokens are where C[i] != C[i-1].
        let s = StrState::with_spread_tokens(6, 2).expect("valid");
        for i in 0..6 {
            let prev = s.output((i + 5) % 6);
            assert_eq!(s.has_token(i), s.output(i) != prev);
            assert_eq!(s.has_bubble(i), !s.has_token(i));
        }
    }

    #[test]
    fn firing_moves_a_token_forward() {
        let mut s = StrState::with_clustered_tokens(8, 2).expect("valid");
        assert_eq!(s.token_positions(), vec![0, 1]);
        // Stage 1 has the leading token (stage 2 holds a bubble).
        assert!(s.is_enabled(1));
        assert!(!s.is_enabled(0), "stage 0's successor holds a token");
        s.fire(1).expect("enabled");
        assert_eq!(s.token_positions(), vec![0, 2]);
        assert_eq!(s.token_count(), 2, "tokens are conserved");
    }

    #[test]
    fn firing_conserves_tokens_under_any_schedule() {
        let mut s = StrState::with_spread_tokens(12, 4).expect("valid");
        for step in 0..200 {
            let enabled = s.enabled_stages();
            assert!(!enabled.is_empty(), "live ring cannot deadlock");
            let pick = enabled[step % enabled.len()];
            s.fire(pick).expect("enabled");
            assert_eq!(s.token_count(), 4, "token conservation violated");
        }
    }

    #[test]
    fn disabled_fire_is_rejected() {
        let mut s = StrState::with_spread_tokens(6, 2).expect("valid");
        let disabled = (0..6).find(|&i| !s.is_enabled(i)).expect("exists");
        assert!(s.fire(disabled).is_err());
        assert!(s.fire(99).is_err());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(StrState::with_spread_tokens(2, 2).is_err()); // too short
        assert!(StrState::with_spread_tokens(8, 3).is_err()); // odd NT
        assert!(StrState::with_spread_tokens(8, 0).is_err()); // no tokens
        assert!(StrState::with_spread_tokens(8, 8).is_err()); // no bubble
        assert!(StrState::with_tokens_at(8, &[0, 0]).is_err()); // duplicate
        assert!(StrState::with_tokens_at(8, &[0, 9]).is_err()); // range
        assert!(StrState::with_tokens_at(8, &[0]).is_err()); // odd
        assert!(StrState::from_outputs(vec![Bit::Low; 2]).is_err());
    }

    #[test]
    fn paper_oscillation_conditions() {
        // 32-stage rings with NT in {10..20} (Sec. V-A) are all valid.
        for nt in [10, 12, 14, 16, 18, 20] {
            let s = StrState::with_spread_tokens(32, nt).expect("valid");
            assert!(s.satisfies_oscillation_conditions(), "NT={nt}");
        }
    }

    #[test]
    fn from_outputs_roundtrip() {
        let s = StrState::with_spread_tokens(10, 4).expect("valid");
        let rebuilt = StrState::from_outputs(s.outputs().to_vec()).expect("valid");
        assert_eq!(s, rebuilt);
    }
}
