//! Differential measurement of paired rings: common-mode rejection.
//!
//! The classic counter to global deterministic jitter (supply ripple,
//! substrate coupling — everything an attacker can modulate from the
//! outside) is to measure *two* matched rings on the same die and
//! subtract: what is common to both cancels, what is private (the
//! thermal jitter entropy actually comes from) survives. This module
//! runs that scenario on the simulated fabric:
//!
//! 1. a shared [`GlobalJitterProcess`] (from `strent_device::noise`)
//!    modulates one board — the common mode both rings see;
//! 2. two identically-configured rings run on that board with
//!    *different* thermal seeds — the private noise;
//! 3. the tone is lock-in detected in a single ring's period series
//!    (the single-ended, undefended measurement) and in the
//!    **difference** of the two series evaluated against the same
//!    clock (the differential measurement);
//! 4. the ratio of the two tone amplitudes is the common-mode
//!    rejection ratio (CMRR).
//!
//! Both families carry a similar *relative* tone (a global delay
//! modulation scales every stage, hence every period, by the same
//! factor). What separates them is the tone measured against the
//! thermal noise the sampler actually harvests: the STR's period — and
//! with it the absolute tone — stays put as stages are added, so its
//! deterministic-to-thermal ratio is flat in `L`, while the IRO's
//! period grows linearly and its thermal jitter only as `sqrt(L)`, so
//! the ratio climbs with ring size (the EXT-DET experiment's figure of
//! merit, seen here from the differential side).

use strent_analysis::{jitter, spectrum};
use strent_device::noise::GlobalJitterProcess;
use strent_device::Board;

use crate::error::RingError;
use crate::measure::{run_iro, run_str, RingRun};
use crate::{IroConfig, StrConfig};

/// Fewest periods per ring for a meaningful lock-in and jitter floor.
pub const MIN_PERIODS: usize = 64;

/// The outcome of one differential-pair run.
#[derive(Debug, Clone, PartialEq)]
pub struct DifferentialOutcome {
    /// Display label of the pair (e.g. `STR 32C pair`).
    pub label: String,
    /// Mean period of the reference ring, ps.
    pub mean_period_ps: f64,
    /// Lock-in tone amplitude in the single-ended series, ps — the
    /// common-mode deterministic jitter an undefended measurement
    /// delivers to the sampler.
    pub single_tone_ps: f64,
    /// Lock-in tone amplitude in the differential series, ps — the
    /// common-mode residue after pairing.
    pub differential_tone_ps: f64,
    /// Random period jitter of the single-ended series, ps (includes
    /// the tone's contribution to the spread).
    pub single_sigma_ps: f64,
    /// Random period jitter of the differential series, ps (private
    /// noise of both rings, `sqrt(2)` of one ring's).
    pub differential_sigma_ps: f64,
}

impl DifferentialOutcome {
    /// The common-mode rejection ratio as a plain amplitude ratio.
    #[must_use]
    pub fn cmrr(&self) -> f64 {
        if self.differential_tone_ps == 0.0 {
            f64::INFINITY
        } else {
            self.single_tone_ps / self.differential_tone_ps
        }
    }

    /// The common-mode rejection ratio in decibels,
    /// `20 log10(single / differential)`.
    #[must_use]
    pub fn cmrr_db(&self) -> f64 {
        20.0 * self.cmrr().log10()
    }

    /// The single-ended deterministic tone as a fraction of the ring
    /// period — the relative common-mode sensitivity. Similar across
    /// families (a global delay modulation is multiplicative), which is
    /// exactly why [`det_to_thermal`](Self::det_to_thermal) is the
    /// discriminating axis.
    #[must_use]
    pub fn intrinsic_sensitivity(&self) -> f64 {
        self.single_tone_ps / self.mean_period_ps
    }

    /// One ring's private thermal jitter, ps, recovered from the
    /// differential series (where the tone has cancelled): the two
    /// rings' independent noises add in quadrature, so one ring's share
    /// is `differential_sigma / sqrt(2)`.
    #[must_use]
    pub fn thermal_sigma_ps(&self) -> f64 {
        self.differential_sigma_ps / std::f64::consts::SQRT_2
    }

    /// The deterministic tone measured against the thermal noise the
    /// sampler harvests — the differential-side analogue of EXT-DET's
    /// det-to-random figure of merit. Flat in `L` for STRs, growing
    /// with `L` for IROs.
    #[must_use]
    pub fn det_to_thermal(&self) -> f64 {
        let thermal = self.thermal_sigma_ps();
        if thermal == 0.0 {
            f64::INFINITY
        } else {
            self.single_tone_ps / thermal
        }
    }
}

/// Shared post-processing: lock-in both series against the reference
/// ring's edge instants and package the outcome.
fn analyze(
    label: String,
    a: &RingRun,
    b: &RingRun,
    process: &GlobalJitterProcess,
) -> Result<DifferentialOutcome, RingError> {
    let n = a.periods_ps.len().min(b.periods_ps.len());
    // Start instants of the reference ring's periods: the one clock
    // both lock-ins correlate against, so single-ended and
    // differential tone estimates come from the identical detector.
    let mut t = 0.0;
    let times: Vec<f64> = a.periods_ps[..n]
        .iter()
        .map(|&p| {
            let start = t;
            t += p;
            start
        })
        .collect();
    let diff: Vec<f64> = a.periods_ps[..n]
        .iter()
        .zip(&b.periods_ps[..n])
        .map(|(&pa, &pb)| pa - pb)
        .collect();
    let tone = process.tone_per_ps();
    let single_tone_ps = spectrum::lockin_amplitude_at(&times, &a.periods_ps[..n], tone)?;
    let differential_tone_ps = spectrum::lockin_amplitude_at(&times, &diff, tone)?;
    let mean_period_ps = a.periods_ps[..n].iter().sum::<f64>() / n as f64;
    Ok(DifferentialOutcome {
        label,
        mean_period_ps,
        single_tone_ps,
        differential_tone_ps,
        single_sigma_ps: jitter::period_jitter(&a.periods_ps[..n])?,
        differential_sigma_ps: jitter::period_jitter(&diff)?,
    })
}

fn check_periods(periods: usize) -> Result<(), RingError> {
    if periods < MIN_PERIODS {
        return Err(RingError::InvalidConfig(format!(
            "differential run needs at least {MIN_PERIODS} periods, got {periods}"
        )));
    }
    Ok(())
}

/// Runs a differential STR pair: two rings of the same configuration
/// on the same globally-modulated board, thermal seeds `seeds.0` and
/// `seeds.1`.
///
/// # Errors
///
/// Propagates ring simulation errors, and rejects `periods` below
/// [`MIN_PERIODS`] or equal seeds (identical thermal noise would make
/// the differential rejection trivially perfect).
pub fn run_differential_str(
    config: &StrConfig,
    board: &Board,
    process: &GlobalJitterProcess,
    seeds: (u64, u64),
    periods: usize,
) -> Result<DifferentialOutcome, RingError> {
    check_periods(periods)?;
    check_seeds(seeds)?;
    let modulated = process.modulated(board);
    let a = run_str(config, &modulated, seeds.0, periods)?;
    let b = run_str(config, &modulated, seeds.1, periods)?;
    analyze(format!("STR {}C pair", config.length()), &a, &b, process)
}

/// Runs a differential IRO pair — the control the STR is compared
/// against.
///
/// # Errors
///
/// Propagates ring simulation errors, and rejects `periods` below
/// [`MIN_PERIODS`] or equal seeds.
pub fn run_differential_iro(
    config: &IroConfig,
    board: &Board,
    process: &GlobalJitterProcess,
    seeds: (u64, u64),
    periods: usize,
) -> Result<DifferentialOutcome, RingError> {
    check_periods(periods)?;
    check_seeds(seeds)?;
    let modulated = process.modulated(board);
    let a = run_iro(config, &modulated, seeds.0, periods)?;
    let b = run_iro(config, &modulated, seeds.1, periods)?;
    analyze(format!("IRO {}C pair", config.length()), &a, &b, process)
}

fn check_seeds(seeds: (u64, u64)) -> Result<(), RingError> {
    if seeds.0 == seeds.1 {
        return Err(RingError::InvalidConfig(
            "differential pair seeds must differ (equal seeds share thermal noise)".to_owned(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_device::Technology;

    fn board() -> Board {
        Board::new(Technology::cyclone_iii(), 0, 0xD1FF)
    }

    #[test]
    fn rejects_thin_runs_and_shared_seeds() {
        let process = GlobalJitterProcess::new(0.012, 5.0);
        let config = IroConfig::new(5).expect("valid");
        assert!(matches!(
            run_differential_iro(&config, &board(), &process, (1, 2), 8),
            Err(RingError::InvalidConfig(_))
        ));
        assert!(matches!(
            run_differential_iro(&config, &board(), &process, (3, 3), 256),
            Err(RingError::InvalidConfig(_))
        ));
    }

    #[test]
    fn iro_pair_rejects_the_common_mode() {
        let process = GlobalJitterProcess::new(0.012, 5.0);
        let config = IroConfig::new(25).expect("valid");
        let out =
            run_differential_iro(&config, &board(), &process, (11, 12), 1_200).expect("runs");
        // The undefended series carries the tone well above the
        // differential residue: measurable rejection.
        assert!(
            out.single_tone_ps > 10.0 * out.differential_tone_ps,
            "single {} vs differential {}",
            out.single_tone_ps,
            out.differential_tone_ps
        );
        assert!(out.cmrr_db() > 20.0, "CMRR {} dB", out.cmrr_db());
        // The single-ended spread is tone-dominated; once the tone
        // cancels, only the two rings' thermal noise (in quadrature)
        // remains, so the differential sigma drops but stays finite.
        assert!(out.differential_sigma_ps > 0.0);
        assert!(
            out.differential_sigma_ps < out.single_sigma_ps,
            "differential {} vs single {}",
            out.differential_sigma_ps,
            out.single_sigma_ps
        );
        assert!(out.thermal_sigma_ps() > 0.0 && out.det_to_thermal().is_finite());
    }

    #[test]
    fn str_intrinsic_sensitivity_beats_the_iro() {
        let process = GlobalJitterProcess::new(0.012, 5.0);
        let str_out = run_differential_str(
            &StrConfig::new(32, 16).expect("valid"),
            &board(),
            &process,
            (21, 22),
            1_200,
        )
        .expect("runs");
        let iro_out = run_differential_iro(
            &IroConfig::new(25).expect("valid"),
            &board(),
            &process,
            (21, 22),
            1_200,
        )
        .expect("runs");
        // Both families see a similar ~1.3-1.5% relative tone (global
        // delay modulation is multiplicative) ...
        assert!(str_out.intrinsic_sensitivity() > 0.005);
        assert!(iro_out.intrinsic_sensitivity() > 0.005);
        // ... but measured against the thermal noise the sampler
        // harvests, the STR's deterministic contamination sits well
        // below the IRO's — the paper's robustness claim, quantified
        // from the differential side.
        assert!(
            str_out.det_to_thermal() < 0.75 * iro_out.det_to_thermal(),
            "STR {} vs IRO {}",
            str_out.det_to_thermal(),
            iro_out.det_to_thermal()
        );
        // And pairing still rejects the STR's common mode strongly.
        assert!(
            str_out.cmrr_db() > 20.0,
            "STR CMRR {} dB",
            str_out.cmrr_db()
        );
    }
}
