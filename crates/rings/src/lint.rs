//! Ring-aware static verification (the `SL01x` half of `simlint`).
//!
//! [`strent_sim::lint`] covers netlist-generic checks (orphan nets,
//! unreachable components, fan-out spills); this module adds the checks
//! that need the ring builders' vocabulary: oscillation conditions and
//! token conservation (Sec. II-C.2 of the paper), the Eq. 1
//! evenly-spaced vs. burst-mode prediction, ring connectivity of a
//! *built* netlist, measurement-divider reachability and the
//! uncancellable-fast-path fan-out budget.
//!
//! The measurement runners ([`crate::measure`]) run these checks on
//! every netlist they build, honoring the process-wide [`LintPolicy`]:
//! warn-by-default (diagnostics on stderr, simulation proceeds), deny
//! in CI (`--deny-lints` / `STRENT_LINT=deny`, any finding aborts the
//! run as [`RingError::Lint`]), or silent.

use std::sync::atomic::{AtomicU8, Ordering};

use strent_device::Board;
use strent_sim::{Diagnostic, EventQueue, LintCode, LintReport, NetId, Simulator, INLINE_FANOUT};

use crate::analytic;
use crate::divider::DividerHandle;
use crate::error::RingError;
use crate::iro::{IroConfig, IroHandle};
use crate::mode::OscillationMode;
use crate::state::StrState;
use crate::str_ring::{StrConfig, StrHandle, TokenLayout};

/// What happens to diagnostics the pre-simulation verifier collects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintPolicy {
    /// Print each finding to stderr and proceed (the default). Stdout
    /// is untouched, so `repro_all` output stays bit-identical.
    Warn,
    /// Abort the run with [`RingError::Lint`] on any finding — the CI
    /// mode.
    Deny,
    /// Discard findings (for callers that inspect reports themselves).
    Silent,
}

/// Sentinel: the policy atomic has not been initialized from the
/// environment yet.
const POLICY_UNSET: u8 = u8::MAX;

static POLICY: AtomicU8 = AtomicU8::new(POLICY_UNSET);

fn policy_from_env() -> LintPolicy {
    match std::env::var("STRENT_LINT").as_deref() {
        Ok("deny") => LintPolicy::Deny,
        Ok("silent") | Ok("off") => LintPolicy::Silent,
        _ => LintPolicy::Warn,
    }
}

/// The process-wide policy, initialized from `STRENT_LINT`
/// (`deny`/`silent`/`warn`) on first use.
#[must_use]
pub fn policy() -> LintPolicy {
    match POLICY.load(Ordering::Relaxed) {
        0 => LintPolicy::Warn,
        1 => LintPolicy::Deny,
        2 => LintPolicy::Silent,
        _ => {
            let resolved = policy_from_env();
            set_policy(resolved);
            resolved
        }
    }
}

/// Overrides the process-wide policy (e.g. `repro_all --deny-lints`).
pub fn set_policy(policy: LintPolicy) {
    let raw = match policy {
        LintPolicy::Warn => 0,
        LintPolicy::Deny => 1,
        LintPolicy::Silent => 2,
    };
    POLICY.store(raw, Ordering::Relaxed);
}

/// Applies the current [`LintPolicy`] to a report: warn prints to
/// stderr, deny turns any finding into [`RingError::Lint`], silent
/// drops everything.
///
/// # Errors
///
/// Returns [`RingError::Lint`] under [`LintPolicy::Deny`] when the
/// report is not clean.
pub fn enforce(report: &LintReport) -> Result<(), RingError> {
    if report.is_clean() {
        return Ok(());
    }
    match policy() {
        LintPolicy::Silent => Ok(()),
        LintPolicy::Warn => {
            for d in report.diagnostics() {
                eprintln!("simlint: {d}");
            }
            Ok(())
        }
        LintPolicy::Deny => Err(RingError::Lint(report.diagnostics().to_vec())),
    }
}

/// Eq. 1 mode prediction: does this configuration oscillate
/// evenly-spaced, or is a burst regime expected?
///
/// The Charlie effect spaces events apart (the analog servo of
/// Sec. III); the drafting effect attracts them. A burst regime needs
/// drafting to win: it is only *possible* when the technology has a
/// drafting term at all and the Charlie magnitude does not dominate it.
/// Within that regime, a clustered token layout starts the ring inside
/// a burst, and a token/bubble ratio far from the `Dff/Drr` target of
/// Eq. 1 keeps events bunched even from a spread start.
#[must_use]
pub fn predicted_mode(config: &StrConfig, board: &Board) -> OscillationMode {
    let charlie_ps = config.charlie_ps(board);
    let drafting_ps = board.technology().drafting_delay_ps();
    if drafting_ps <= 0.0 || charlie_ps > drafting_ps {
        return OscillationMode::EvenlySpaced;
    }
    if config.layout() == TokenLayout::Clustered {
        return OscillationMode::Burst;
    }
    let (actual, target) = analytic::design_rule(config);
    let deviation = (actual / target).max(target / actual);
    if deviation > 1.5 {
        OscillationMode::Burst
    } else {
        OscillationMode::EvenlySpaced
    }
}

/// Verifies an STR state against the oscillation conditions (`SL010`)
/// and token/bubble accounting (`SL011`): the token count must match
/// `expected_tokens` when given, the ring must not deadlock, and the
/// count must be conserved under a deterministic propagation closure of
/// `2L` firings (always taking the lowest enabled stage — no RNG, so
/// the check never perturbs reproducibility).
#[must_use]
pub fn verify_state(state: &StrState, expected_tokens: Option<usize>, subject: &str) -> LintReport {
    let mut report = LintReport::new();
    if !state.satisfies_oscillation_conditions() {
        report.push(Diagnostic::new(
            LintCode::InvalidRingConfig,
            subject,
            format!(
                "oscillation conditions violated: L={}, NT={}, NB={} \
                 (need L >= 3, NT positive and even, NB >= 1)",
                state.len(),
                state.token_count(),
                state.bubble_count()
            ),
        ));
    }
    let expected = state.token_count();
    if let Some(want) = expected_tokens {
        if expected != want {
            report.push(Diagnostic::new(
                LintCode::TokenConservation,
                subject,
                format!("state holds {expected} tokens, configuration promised {want}"),
            ));
        }
    }
    let mut probe = state.clone();
    for step in 0..2 * probe.len() {
        let enabled = probe.enabled_stages();
        let Some(&stage) = enabled.first() else {
            report.push(Diagnostic::new(
                LintCode::TokenConservation,
                subject,
                format!("ring deadlocks after {step} firings: no stage is enabled"),
            ));
            break;
        };
        if probe.fire(stage).is_err() {
            report.push(Diagnostic::new(
                LintCode::TokenConservation,
                subject,
                format!("enabled stage {stage} refused to fire at step {step}"),
            ));
            break;
        }
        let now = probe.token_count();
        if now != expected {
            report.push(Diagnostic::new(
                LintCode::TokenConservation,
                subject,
                format!(
                    "token conservation violated at step {step}: {expected} -> {now}"
                ),
            ));
            break;
        }
    }
    report
}

/// Verifies an STR configuration before simulation: state checks
/// (`SL010`/`SL011`) plus the Eq. 1 burst-mode prediction (`SL012`).
#[must_use]
pub fn verify_str_config(config: &StrConfig, board: &Board) -> LintReport {
    let subject = format!(
        "StrConfig(L={}, NT={}, {:?})",
        config.length(),
        config.tokens(),
        config.layout()
    );
    let mut report = verify_state(&config.initial_state(), Some(config.tokens()), &subject);
    if predicted_mode(config, board) == OscillationMode::Burst {
        let (actual, target) = analytic::design_rule(config);
        report.push(Diagnostic::new(
            LintCode::BurstModePredicted,
            subject,
            format!(
                "Eq. 1 predicts burst-mode propagation: NT/NB = {actual:.3} vs \
                 Dff/Drr target {target:.3}, layout {:?}, Charlie {:.1} ps vs \
                 drafting {:.1} ps",
                config.layout(),
                config.charlie_ps(board),
                board.technology().drafting_delay_ps()
            ),
        ));
    }
    report
}

/// Checks one expected listener edge of a built ring, recording `SL013`
/// if it is missing.
fn expect_listener<Q: EventQueue>(
    sim: &Simulator<Q>,
    net: NetId,
    component: strent_sim::ComponentId,
    role: &str,
    subject: &str,
    report: &mut LintReport,
) {
    match sim.listeners(net) {
        Ok(listeners) if listeners.contains(&component) => {}
        Ok(_) => report.push(Diagnostic::new(
            LintCode::RingConnectivity,
            subject,
            format!("stage is not subscribed to its {role} net"),
        )),
        Err(_) => report.push(Diagnostic::new(
            LintCode::RingConnectivity,
            subject,
            format!("{role} net does not exist in the simulator"),
        )),
    }
}

/// Records `SL015` for ring nets whose fan-out spilled the inline
/// listener storage, costing the uncancellable fast path its
/// zero-allocation property.
fn check_fast_path<Q: EventQueue>(
    sim: &Simulator<Q>,
    nets: &[NetId],
    family: &str,
    report: &mut LintReport,
) {
    for (i, &net) in nets.iter().enumerate() {
        if let Ok(listeners) = sim.listeners(net) {
            if listeners.len() > INLINE_FANOUT {
                report.push(Diagnostic::new(
                    LintCode::FastPathIneligible,
                    format!("{family} stage {i} output"),
                    format!(
                        "fan-out {} exceeds the inline capacity {INLINE_FANOUT}; \
                         dispatch leaves the zero-allocation fast path",
                        listeners.len()
                    ),
                ));
            }
        }
    }
}

/// Verifies the listener graph of a built STR (`SL013`): stage `i` must
/// subscribe to its forward net `C[i-1]`, reverse net `C[i+1]` and its
/// own output `C[i]` — the closed ring of Fig. 2. Also audits the
/// fast-path fan-out budget (`SL015`).
#[must_use]
pub fn verify_built_str<Q: EventQueue>(sim: &Simulator<Q>, handle: &StrHandle) -> LintReport {
    let mut report = LintReport::new();
    let nets = handle.nets();
    let components = handle.components();
    let l = nets.len();
    if components.len() != l || l < 3 {
        report.push(Diagnostic::new(
            LintCode::RingConnectivity,
            "STR handle",
            format!("{l} nets vs {} stage components", components.len()),
        ));
        return report;
    }
    for (i, &component) in components.iter().enumerate() {
        let subject = format!("STR stage {i}");
        expect_listener(sim, nets[(i + l - 1) % l], component, "forward", &subject, &mut report);
        expect_listener(sim, nets[(i + 1) % l], component, "reverse", &subject, &mut report);
        expect_listener(sim, nets[i], component, "output", &subject, &mut report);
    }
    check_fast_path(sim, nets, "STR", &mut report);
    report
}

/// Verifies the listener graph of a built IRO (`SL013`): stage `i` must
/// subscribe to the previous stage's output — the single loop of
/// Fig. 1. Also audits the fast-path fan-out budget (`SL015`).
#[must_use]
pub fn verify_built_iro<Q: EventQueue>(
    sim: &Simulator<Q>,
    handle: &IroHandle,
    config: &IroConfig,
) -> LintReport {
    let mut report = LintReport::new();
    let nets = handle.nets();
    let components = handle.components();
    let l = config.length();
    if nets.len() != l || components.len() != l {
        report.push(Diagnostic::new(
            LintCode::RingConnectivity,
            "IRO handle",
            format!(
                "config length {l} vs {} nets / {} components",
                nets.len(),
                components.len()
            ),
        ));
        return report;
    }
    for (i, &component) in components.iter().enumerate() {
        let subject = format!("IRO stage {i}");
        expect_listener(sim, nets[(i + l - 1) % l], component, "input", &subject, &mut report);
    }
    check_fast_path(sim, nets, "IRO", &mut report);
    report
}

/// Verifies a measurement divider (`SL014`): its input must be one of
/// the ring's nets, the counter must be subscribed to it, and the
/// `osc_mes` output must be watched — otherwise Eq. 6 measures nothing.
#[must_use]
pub fn verify_divider<Q: EventQueue>(
    sim: &Simulator<Q>,
    divider: &DividerHandle,
    ring_nets: &[NetId],
) -> LintReport {
    let mut report = LintReport::new();
    let subject = format!("divider(n={})", divider.n());
    if !ring_nets.contains(&divider.input()) {
        report.push(Diagnostic::new(
            LintCode::DividerUnreachable,
            subject.clone(),
            "divider input is not a ring net".to_owned(),
        ));
    }
    match sim.listeners(divider.input()) {
        Ok(listeners) if listeners.contains(&divider.component()) => {}
        _ => report.push(Diagnostic::new(
            LintCode::DividerUnreachable,
            subject.clone(),
            "counter is not subscribed to its input net".to_owned(),
        )),
    }
    if sim.trace(divider.output()).is_none() {
        report.push(Diagnostic::new(
            LintCode::DividerUnreachable,
            subject,
            "osc_mes output net is not watched".to_owned(),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{divider, iro, str_ring};
    use strent_device::Technology;
    use strent_sim::Bit;

    fn fpga_board() -> Board {
        Board::new(Technology::cyclone_iii(), 0, 7)
    }

    fn asic_board() -> Board {
        Board::new(Technology::asic_like(), 0, 7)
    }

    #[test]
    fn clean_config_produces_clean_report() {
        let config = StrConfig::new(16, 8).expect("valid");
        let report = verify_str_config(&config, &fpga_board());
        assert!(report.is_clean(), "unexpected findings:\n{report}");
    }

    #[test]
    fn deadlocked_state_fires_token_conservation() {
        // Alternating outputs: every stage holds a token, no bubble —
        // nothing can ever fire.
        let outputs: Vec<Bit> = (0..6)
            .map(|i| if i % 2 == 0 { Bit::Low } else { Bit::High })
            .collect();
        let state = StrState::from_outputs(outputs).expect("length ok");
        let report = verify_state(&state, None, "fixture");
        assert!(report.has_code(LintCode::InvalidRingConfig), "{report}");
        assert!(report.has_code(LintCode::TokenConservation), "{report}");
    }

    #[test]
    fn token_count_mismatch_fires_sl011() {
        let state = StrState::with_spread_tokens(12, 4).expect("valid");
        let report = verify_state(&state, Some(6), "fixture");
        assert!(report.has_code(LintCode::TokenConservation), "{report}");
        assert!(
            report.diagnostics()[0].message.contains("4 tokens"),
            "{report}"
        );
    }

    #[test]
    fn burst_prediction_fires_for_clustered_asic_ring() {
        // The ext_mode setup: weak Charlie, strong drafting, clustered
        // tokens — the canonical burst provocation (paper Fig. 5 right).
        let config = StrConfig::new(16, 6)
            .expect("valid")
            .with_layout(TokenLayout::Clustered);
        let report = verify_str_config(&config, &asic_board());
        assert!(report.has_code(LintCode::BurstModePredicted), "{report}");
        let diag = report
            .diagnostics()
            .iter()
            .find(|d| d.code == LintCode::BurstModePredicted)
            .expect("present");
        assert!(diag.message.contains("Eq. 1"), "{}", diag.message);
    }

    #[test]
    fn burst_prediction_spares_fpga_rings() {
        // Cyclone III has no drafting term: the Charlie servo always
        // wins, whatever the layout (the paper never saw burst on the
        // FPGA with NT=NB).
        let clustered = StrConfig::new(16, 6)
            .expect("valid")
            .with_layout(TokenLayout::Clustered);
        assert_eq!(
            predicted_mode(&clustered, &fpga_board()),
            OscillationMode::EvenlySpaced
        );
        // And a balanced spread ring is evenly spaced even on the ASIC
        // profile.
        let balanced = StrConfig::new(16, 8).expect("valid");
        assert_eq!(
            predicted_mode(&balanced, &asic_board()),
            OscillationMode::EvenlySpaced
        );
    }

    #[test]
    fn unbalanced_spread_ring_predicts_burst_under_drafting() {
        // Spread layout but NT/NB far from the Eq. 1 target: still
        // burst-prone when drafting dominates.
        let config = StrConfig::new(16, 4).expect("valid");
        assert_eq!(
            predicted_mode(&config, &asic_board()),
            OscillationMode::Burst
        );
    }

    #[test]
    fn built_str_passes_wiring_check() {
        let mut sim = Simulator::new(5);
        let config = StrConfig::new(8, 4).expect("valid");
        let handle = str_ring::build(&config, &fpga_board(), &mut sim).expect("wires");
        let report = verify_built_str(&sim, &handle);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn broken_wiring_fires_ring_connectivity() {
        // Hand-build a "ring" that misses the reverse subscriptions:
        // the verifier must notice even though each net has listeners.
        let mut sim = Simulator::new(5);
        let config = StrConfig::new(8, 4).expect("valid");
        let good = str_ring::build(&config, &fpga_board(), &mut sim).expect("wires");
        // Forge a handle claiming stage order is rotated by one: every
        // stage then appears subscribed to the wrong nets.
        let mut rotated = good.components().to_vec();
        rotated.rotate_left(1);
        let forged = StrHandle::from_parts(good.nets().to_vec(), rotated);
        let report = verify_built_str(&sim, &forged);
        assert!(report.has_code(LintCode::RingConnectivity), "{report}");
        assert!(report.has_errors());
    }

    #[test]
    fn oversubscribed_ring_net_fires_fast_path_warning() {
        // A well-formed ring keeps every net at fan-out 3 (forward,
        // reverse, own stage) — inside the inline budget. Attaching two
        // dividers to one ring net pushes it to 5 > INLINE_FANOUT and
        // the uncancellable fast path degrades to spill storage there.
        let mut sim = Simulator::new(5);
        let config = StrConfig::new(8, 4).expect("valid");
        let handle = str_ring::build(&config, &fpga_board(), &mut sim).expect("wires");
        let tap = handle.nets()[0];
        divider::build(&mut sim, tap, 4).expect("valid");
        divider::build(&mut sim, tap, 16).expect("valid");
        let report = verify_built_str(&sim, &handle);
        assert!(report.has_code(LintCode::FastPathIneligible), "{report}");
        let diag = report
            .diagnostics()
            .iter()
            .find(|d| d.code == LintCode::FastPathIneligible)
            .expect("present");
        assert_eq!(diag.severity, strent_sim::Severity::Warning);
        assert!(!report.has_errors(), "SL015 alone must not be fatal");
    }

    #[test]
    fn built_iro_passes_wiring_check() {
        let mut sim = Simulator::new(5);
        let config = IroConfig::new(5).expect("valid");
        let handle = iro::build(&config, &fpga_board(), &mut sim).expect("wires");
        let report = verify_built_iro(&sim, &handle, &config);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn divider_on_ring_output_is_reachable() {
        let mut sim = Simulator::new(5);
        let config = IroConfig::new(5).expect("valid");
        let ring = iro::build(&config, &fpga_board(), &mut sim).expect("wires");
        let div = divider::build(&mut sim, ring.output(), 4).expect("valid");
        let report = verify_divider(&sim, &div, ring.nets());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn divider_on_foreign_net_fires_sl014() {
        let mut sim = Simulator::new(5);
        let config = IroConfig::new(5).expect("valid");
        let ring = iro::build(&config, &fpga_board(), &mut sim).expect("wires");
        let stray = sim.add_net("not_a_ring_net");
        let div = divider::build(&mut sim, stray, 4).expect("valid");
        let report = verify_divider(&sim, &div, ring.nets());
        assert!(report.has_code(LintCode::DividerUnreachable), "{report}");
    }

    #[test]
    fn enforce_deny_surfaces_ring_error() {
        let saved = policy();
        set_policy(LintPolicy::Deny);
        let mut report = LintReport::new();
        assert!(enforce(&report).is_ok(), "clean report passes deny");
        report.push(Diagnostic::new(
            LintCode::OrphanNet,
            "net 0",
            "dangling",
        ));
        let err = enforce(&report).expect_err("deny rejects findings");
        match &err {
            RingError::Lint(diags) => assert_eq!(diags.len(), 1),
            other => panic!("expected Lint error, got {other:?}"),
        }
        assert!(err.to_string().contains("SL001"), "{err}");
        set_policy(LintPolicy::Silent);
        assert!(enforce(&report).is_ok(), "silent swallows findings");
        set_policy(saved);
    }
}
