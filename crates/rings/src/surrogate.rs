//! Calibrated surrogate source tier: O(1)-per-sample ring models.
//!
//! The paper's locked evenly-spaced regime is *statistically* simple:
//! Eq. 5 gives the STR period jitter in closed form
//! (`sigma_period ~ sqrt(2)*sigma_g`, independent of `L`) and Eq. 4 the
//! IRO accumulation law. Simulating every Muller-gate event to
//! reproduce a distribution we can write down is the dominant serving
//! cost (see `docs/engine_perf.md`), so this module provides the fast
//! path: a [`SurrogateModel`] — mean period, white thermal jitter,
//! AR(1) flicker wander and duty cycle — fitted by a [`Calibrator`]
//! from one *short full discrete-event run* per (geometry, board,
//! supply) configuration, then replayed by a [`SurrogateStream`] at a
//! couple of trace pushes per period instead of ~1.5 events per stage
//! per half-period.
//!
//! The surrogate claims **statistical** equivalence, not bit
//! equivalence: the golden moments (period mean/σ, Allan deviation,
//! lag-k autocorrelation), the SP 800-90B health verdicts and the
//! entropy estimates must match the event-driven simulation within the
//! tolerances of `tests/surrogate_equivalence.rs` — see
//! `docs/surrogate.md`.
//!
//! [`EntropySource`] is the selector the serving layer builds through
//! (simlint SL109 forbids bypassing it): a [`SourceBackend`] request is
//! honored only when [`surrogate_eligible`] says the configuration sits
//! safely inside the locked regime. Near the Eq. 1 mode boundary
//! (burst-prone layouts or token/bubble ratios, the SL012 territory)
//! and whenever a [`FaultPlan`] is armed, the full simulation is used
//! no matter what was asked — the surrogate models a *healthy locked*
//! ring and nothing else.

use strent_device::Board;
use strent_sim::{Ar1Process, Bit, Edge, FaultPlan, RngTree, SimRng, SimStats, Time, Trace};

use crate::analytic;
use crate::error::RingError;
use crate::lint;
use crate::measure::WARMUP_PERIODS;
use crate::mode::OscillationMode;
use crate::stream::{RingStream, StreamConfig};

/// RNG stream key for surrogate period draws — distinct from every
/// component key the event-driven simulator derives from the same seed,
/// so a surrogate and a full sim of one seed never share a stream.
const SURROGATE_RNG_KEY: u64 = 0x5089_7061_7E50_F7CE;

/// Eq. 1 design-rule deviation beyond which a configuration counts as
/// *near* the burst boundary and stays on the full simulator. The burst
/// prediction itself fires at 1.5 (see [`lint::predicted_mode`]); the
/// surrogate backs off earlier because its calibration run cannot
/// distinguish "locked today" from "about to burst".
pub const BOUNDARY_DEVIATION: f64 = 1.25;

/// Which engine produces a source's waveform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceBackend {
    /// The event-driven simulation — always valid, the default.
    FullSim,
    /// The calibrated O(1)-per-sample surrogate — valid only in the
    /// locked evenly-spaced regime, with automatic fallback.
    Surrogate,
}

impl SourceBackend {
    /// A short stable label (used in reports and JSON).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SourceBackend::FullSim => "full_sim",
            SourceBackend::Surrogate => "surrogate",
        }
    }
}

/// The fitted stochastic model of one locked ring on one board:
///
/// ```text
/// rising[k]  = nominal[k] + edge[k]               (edge[k] ~ N(0, sigma_edge^2), i.i.d.)
/// nominal[k+1] = nominal[k] + period_mean_ps + flicker[k] + white[k]
/// flicker[k+1] = rho * flicker[k] + drive[k]      (stationary sigma_flicker)
/// white[k] ~ N(0, sigma_white^2)                  (i.i.d.)
/// ```
///
/// The measured period series `rising[k+1] - rising[k]` then has
/// variance `sigma_white^2 + sigma_flicker^2 + 2*sigma_edge^2`,
/// lag-1 autocovariance `rho*sigma_flicker^2 - sigma_edge^2` and
/// lag-k (k >= 2) autocovariance `rho^k * sigma_flicker^2`. The edge
/// term is what gives event-driven rings their *negative* lag-1 period
/// autocorrelation — consecutive periods share one jittered edge — and
/// the three components separate from the lag-0..3 autocovariances of
/// a short calibration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurrogateModel {
    /// Mean oscillation period, ps.
    pub period_mean_ps: f64,
    /// White (thermal) per-lap jitter standard deviation, ps.
    pub sigma_white_ps: f64,
    /// Per-edge placement jitter standard deviation, ps (shared by
    /// adjacent periods, hence the MA(1) anticorrelation).
    pub sigma_edge_ps: f64,
    /// Stationary standard deviation of the AR(1) flicker wander, ps.
    pub sigma_flicker_ps: f64,
    /// Lag-1 autocorrelation of the flicker component, in `[0, 1)`.
    pub flicker_rho: f64,
    /// Fraction of each period the output spends high, in `(0, 1)`.
    pub duty: f64,
}

impl SurrogateModel {
    /// Total per-period jitter standard deviation, ps — the quantity
    /// Eq. 5 predicts as `sqrt(2)*sigma_g` for a locked STR.
    #[must_use]
    pub fn sigma_period_ps(&self) -> f64 {
        (self.sigma_white_ps.powi(2)
            + self.sigma_flicker_ps.powi(2)
            + 2.0 * self.sigma_edge_ps.powi(2))
        .sqrt()
    }

    /// The model's lag-1 period autocorrelation,
    /// `(rho*sigma_flicker^2 - sigma_edge^2) / sigma_period^2` —
    /// negative for an edge-noise-dominated ring, 0 for pure white.
    #[must_use]
    pub fn lag1_autocorrelation(&self) -> f64 {
        let var = self.sigma_period_ps().powi(2);
        if var <= 0.0 {
            return 0.0;
        }
        (self.flicker_rho * self.sigma_flicker_ps.powi(2) - self.sigma_edge_ps.powi(2)) / var
    }
}

/// Fits a [`SurrogateModel`] from a short full discrete-event run.
///
/// The calibration protocol (documented in `docs/surrogate.md`): build
/// the ring exactly as [`RingStream`] would, discard the standard
/// warm-up transient, collect `periods` steady-state periods, then fit
/// the mean, the white/flicker variance split (from the lag-1 and
/// lag-2 autocovariances) and the duty cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Calibrator {
    periods: usize,
}

impl Default for Calibrator {
    fn default() -> Self {
        Calibrator { periods: 512 }
    }
}

impl Calibrator {
    /// Minimum calibration run length — below this the autocovariance
    /// estimates are too noisy to split white from flicker.
    pub const MIN_PERIODS: usize = 64;

    /// A calibrator collecting the default 512 steady-state periods.
    #[must_use]
    pub fn new() -> Self {
        Calibrator::default()
    }

    /// Overrides the calibration run length (clamped up to
    /// [`Calibrator::MIN_PERIODS`]).
    #[must_use]
    pub fn with_periods(mut self, periods: usize) -> Self {
        self.periods = periods.max(Self::MIN_PERIODS);
        self
    }

    /// The calibration run length, steady-state periods.
    #[must_use]
    pub fn periods(&self) -> usize {
        self.periods
    }

    /// Runs the full event-driven simulation once and fits the model.
    ///
    /// # Errors
    ///
    /// Returns an error if the ring fails construction, static
    /// verification, or does not oscillate long enough to calibrate.
    pub fn fit(
        &self,
        config: &StreamConfig,
        board: &Board,
        seed: u64,
    ) -> Result<SurrogateModel, RingError> {
        let mut stream = RingStream::build(config, board, seed, None)?;
        let expected = stream.expected_period_ps();
        let total = WARMUP_PERIODS + self.periods + 2;
        // Geometric horizon extension, as in `measure::run_to_periods`.
        let mut horizon = expected * total as f64 * 1.3;
        let mut slack = horizon - stream.now().as_ps();
        for _ in 0..=8 {
            stream.advance_by(slack)?;
            if stream.trace().edge_count(Edge::Rising) > total {
                break;
            }
            horizon *= 2.0;
            slack = horizon - stream.now().as_ps();
        }
        let trace = stream.trace();
        let rising = trace.edges(Edge::Rising);
        if rising.len() <= total {
            return Err(RingError::NotOscillating {
                observed_transitions: rising.len().saturating_sub(WARMUP_PERIODS),
            });
        }
        let window = &rising[WARMUP_PERIODS..=WARMUP_PERIODS + self.periods];
        let periods_ps: Vec<f64> = window
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .collect();
        let falling = trace.edges(Edge::Falling);
        let duty = duty_cycle(window, &falling);
        Ok(Self::fit_series(&periods_ps, duty))
    }

    /// Fits the model to an already-measured period series (the moment
    /// half of [`fit`](Calibrator::fit), exposed for testing and for
    /// calibrating against externally produced series).
    ///
    /// The three-way variance split solves the edge+flicker+white
    /// moment system from the population autocovariances `c0..c3`:
    /// for lags `k >= 2` only the flicker survives (`ck = rho^k *
    /// var_f`), so `rho = c3/c2` and `var_f = c2/rho^2`; the lag-1
    /// shortfall `rho*var_f - c1` is the shared-edge variance; the
    /// remainder of `c0` is the per-lap white term. Components whose
    /// autocovariance evidence sits inside the `~c0/sqrt(n)` sampling
    /// noise collapse to zero, and the flicker share is capped at 95%
    /// of the total variance so the white component never vanishes.
    ///
    /// # Panics
    ///
    /// Panics if `periods_ps` is empty or `duty` is outside `(0, 1)` —
    /// calibration inputs are produced by this module's own runner.
    #[must_use]
    pub fn fit_series(periods_ps: &[f64], duty: f64) -> SurrogateModel {
        assert!(!periods_ps.is_empty(), "calibration needs periods");
        assert!(
            duty > 0.0 && duty < 1.0,
            "duty must be in (0, 1), got {duty}"
        );
        let n = periods_ps.len() as f64;
        let mean = periods_ps.iter().sum::<f64>() / n;
        let cov = |lag: usize| -> f64 {
            if periods_ps.len() <= lag {
                return 0.0;
            }
            periods_ps
                .windows(lag + 1)
                .map(|w| (w[0] - mean) * (w[lag] - mean))
                .sum::<f64>()
                / (periods_ps.len() - lag) as f64
        };
        let c0 = cov(0).max(0.0);
        let c1 = cov(1);
        let c2 = cov(2);
        let c3 = cov(3);
        // Autocovariances of a structureless series scatter with a
        // standard error of ~c0/sqrt(n); anything below two standard
        // errors is indistinguishable from zero.
        let noise_floor = c0 * 2.0 / n.sqrt();
        // Flicker needs consistent positive structure at lags 2 and 3
        // (lag 1 is contaminated by the edge term).
        let (rho, var_flicker) = if c0 <= 0.0 || c2 <= noise_floor || c3 <= 0.0 {
            (0.0, 0.0)
        } else {
            let rho = (c3 / c2).clamp(0.05, 0.98);
            let var_f = (c2 / rho.powi(2)).min(0.95 * c0);
            (rho, var_f)
        };
        // The edge variance is whatever the flicker's lag-1 prediction
        // overshoots the measurement by; for a flicker-free ring that
        // is simply -c1. Bounded so the white variance stays >= 0.
        let edge_evidence = rho * var_flicker - c1;
        let var_edge = if edge_evidence > noise_floor {
            edge_evidence.min((c0 - var_flicker) / 2.0).max(0.0)
        } else {
            0.0
        };
        let var_white = (c0 - var_flicker - 2.0 * var_edge).max(0.0);
        SurrogateModel {
            period_mean_ps: mean,
            sigma_white_ps: var_white.sqrt(),
            sigma_edge_ps: var_edge.sqrt(),
            sigma_flicker_ps: var_flicker.sqrt(),
            flicker_rho: rho,
            duty,
        }
    }
}

/// Mean high fraction over the calibration window: for each rising edge
/// the high segment runs to the next falling edge.
fn duty_cycle(rising_window: &[Time], falling: &[Time]) -> f64 {
    let mut high = 0.0;
    let mut total = 0.0;
    for pair in rising_window.windows(2) {
        let (rise, next_rise) = (pair[0], pair[1]);
        let idx = falling.partition_point(|&f| f <= rise);
        if let Some(&fall) = falling.get(idx) {
            if fall < next_rise {
                high += fall - rise;
                total += next_rise - rise;
            }
        }
    }
    if total <= 0.0 {
        return 0.5;
    }
    (high / total).clamp(0.05, 0.95)
}

/// An O(1)-per-sample replacement for a locked [`RingStream`]: replays
/// a [`SurrogateModel`] into a [`Trace`], two transitions per period,
/// with the same incremental `advance_by` / `trace` / `prune_before`
/// surface the sampling and serving layers consume.
///
/// Determinism matches the event-driven engine's contract: the emitted
/// waveform is a pure function of `(model, seed)` and is independent of
/// the `advance_by` call granularity.
#[derive(Debug, Clone)]
pub struct SurrogateStream {
    model: SurrogateModel,
    flicker: Ar1Process,
    rng: SimRng,
    trace: Trace,
    now: Time,
    consumed_until: Time,
    /// Nominal (edge-noise-free) instant of the next rising edge, ps.
    next_rising_ps: f64,
    /// Where the previous rising edge was actually emitted, ps.
    prev_rise_ps: f64,
    /// Last instant recorded into the trace (monotonicity clamp), ps.
    last_record_ps: f64,
    periods_emitted: u64,
    transitions_emitted: u64,
}

impl SurrogateStream {
    /// Creates the stream at `t = 0`, output low, first rising edge one
    /// drawn period in.
    #[must_use]
    pub fn new(model: SurrogateModel, seed: u64) -> Self {
        let mut stream = SurrogateStream {
            flicker: Ar1Process::new(model.flicker_rho, model.sigma_flicker_ps),
            rng: RngTree::new(seed).stream(SURROGATE_RNG_KEY),
            trace: Trace::new(Bit::Low),
            now: Time::ZERO,
            consumed_until: Time::ZERO,
            next_rising_ps: 0.0,
            prev_rise_ps: 0.0,
            last_record_ps: 0.0,
            periods_emitted: 0,
            transitions_emitted: 0,
            model,
        };
        stream.next_rising_ps = stream.draw_period_ps();
        stream
    }

    /// The fitted model this stream replays.
    #[must_use]
    pub fn model(&self) -> &SurrogateModel {
        &self.model
    }

    /// The model's mean period, ps (the analogue of
    /// [`RingStream::expected_period_ps`]).
    #[must_use]
    pub fn expected_period_ps(&self) -> f64 {
        self.model.period_mean_ps
    }

    /// The generation horizon reached so far.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Periods emitted so far.
    #[must_use]
    pub fn periods_emitted(&self) -> u64 {
        self.periods_emitted
    }

    /// Surrogate statistics in kernel vocabulary: each emitted trace
    /// transition counts as one processed event (nothing is ever
    /// cancelled or suppressed — there is no event queue). This is what
    /// makes surrogate and full-sim workloads comparable in the perf
    /// reports.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        SimStats {
            events_processed: self.transitions_emitted,
            ..SimStats::default()
        }
    }

    /// One nominal-lap draw: mean + AR(1) flicker + white jitter,
    /// clamped to a positive floor so the waveform stays monotone even
    /// under a (deliberately corrupted) model whose jitter dwarfs its
    /// mean.
    fn draw_period_ps(&mut self) -> f64 {
        let flicker = self.flicker.step(&mut self.rng);
        let white = self.rng.normal(0.0, self.model.sigma_white_ps);
        let period = self.model.period_mean_ps + flicker + white;
        period.max(0.05 * self.model.period_mean_ps)
    }

    /// Extends the waveform by `delta_ps` past the later of the current
    /// horizon and the prune cursor, emitting every period that starts
    /// inside the new window. Mirrors [`RingStream::advance_by`].
    pub fn advance_by(&mut self, delta_ps: f64) -> Time {
        let horizon_ps = self.now.as_ps().max(self.consumed_until.as_ps()) + delta_ps;
        while self.next_rising_ps <= horizon_ps {
            self.emit_period();
        }
        self.now = Time::from_ps(horizon_ps);
        self.now
    }

    /// Emits one full period (rising + falling edge) and returns the
    /// measured duration — the gap between this rising edge and the
    /// previous one as *emitted* (edge noise included), matching what
    /// an observer of the trace would measure.
    fn emit_period(&mut self) -> f64 {
        let period = self.draw_period_ps();
        let edge = self.rng.normal(0.0, self.model.sigma_edge_ps);
        // The monotonicity clamp never binds for a calibrated model
        // (edge noise is orders of magnitude below the period); it only
        // guards deliberately corrupted models.
        let min_step = 0.01 * self.model.period_mean_ps;
        let rise = (self.next_rising_ps + edge).max(self.last_record_ps + min_step);
        let fall = rise + (self.model.duty * period).max(min_step);
        self.trace.record(Time::from_ps(rise), Bit::High);
        self.trace.record(Time::from_ps(fall), Bit::Low);
        let measured = rise - self.prev_rise_ps;
        self.prev_rise_ps = rise;
        self.last_record_ps = fall;
        self.next_rising_ps += period;
        self.periods_emitted += 1;
        self.transitions_emitted += 2;
        measured
    }

    /// Generates the next `n` periods eagerly and returns their
    /// durations — the moment-extraction path of the equivalence
    /// harness and benches. The trace advances identically to the
    /// `advance_by` path (the sequence depends only on the draw count).
    pub fn next_periods(&mut self, n: usize) -> Vec<f64> {
        let periods: Vec<f64> = (0..n).map(|_| self.emit_period()).collect();
        self.now = Time::from_ps(self.next_rising_ps).max(self.now);
        periods
    }

    /// The waveform produced so far (everything at or after the last
    /// prune cut).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Discards trace history strictly before `until`; the cursor is
    /// monotone exactly as in [`RingStream::prune_before`].
    pub fn prune_before(&mut self, until: Time) -> usize {
        if until <= self.consumed_until {
            return 0;
        }
        self.consumed_until = until;
        self.trace.discard_before(until)
    }

    /// Everything before this instant has been pruned away.
    #[must_use]
    pub fn consumed_until(&self) -> Time {
        self.consumed_until
    }
}

/// Whether a configuration may run on the surrogate tier.
///
/// The fallback rules (see `docs/surrogate.md`):
///
/// 1. an armed [`FaultPlan`] always forces the full simulation — the
///    surrogate models a healthy locked ring only;
/// 2. an STR whose Eq. 1 prediction ([`lint::predicted_mode`], the
///    SL012 rule) is not evenly-spaced is ineligible;
/// 3. an STR in a drafting-capable technology whose design-rule
///    deviation exceeds [`BOUNDARY_DEVIATION`] is *near* the mode
///    boundary and ineligible even though SL012 has not fired yet;
/// 4. IROs have no burst mode and are always eligible when healthy.
#[must_use]
pub fn surrogate_eligible(config: &StreamConfig, board: &Board, fault_armed: bool) -> bool {
    if fault_armed {
        return false;
    }
    match config {
        StreamConfig::Iro(_) => true,
        StreamConfig::Str(c) => {
            if lint::predicted_mode(c, board) != OscillationMode::EvenlySpaced {
                return false;
            }
            let drafting_ps = board.technology().drafting_delay_ps();
            if drafting_ps > 0.0 && c.charlie_ps(board) <= drafting_ps {
                let (actual, target) = analytic::design_rule(c);
                let deviation = (actual / target).max(target / actual);
                if deviation > BOUNDARY_DEVIATION {
                    return false;
                }
            }
            true
        }
    }
}

/// The backend selector the serving layer builds sources through: a
/// [`SourceBackend`] *request* resolved against [`surrogate_eligible`],
/// wrapping whichever stream the rules picked behind one API.
///
/// simlint rule SL109 forbids `crates/serve` and `crates/core` source
/// code from constructing a [`RingStream`] directly — routing every
/// build through here is what makes the fallback rules unbypassable.
#[derive(Debug)]
pub enum EntropySource {
    /// The event-driven simulation (requested, or selected by
    /// fallback).
    Full(RingStream),
    /// The calibrated surrogate fast path.
    Surrogate(SurrogateStream),
}

impl EntropySource {
    /// Builds the source, resolving `backend` against the fallback
    /// rules: a [`SourceBackend::Surrogate`] request silently degrades
    /// to the full simulation when [`surrogate_eligible`] rejects the
    /// configuration. When the surrogate is selected, the calibration
    /// run uses the same `(config, board, seed)` triple, so the whole
    /// source stays a pure function of its spec.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid configuration, a
    /// static-verification rejection, or a calibration run that fails
    /// to oscillate.
    pub fn build(
        config: &StreamConfig,
        board: &Board,
        seed: u64,
        fault: Option<&FaultPlan>,
        backend: SourceBackend,
    ) -> Result<Self, RingError> {
        if backend == SourceBackend::Surrogate
            && surrogate_eligible(config, board, fault.is_some())
        {
            let model = Calibrator::default().fit(config, board, seed)?;
            return Ok(EntropySource::Surrogate(SurrogateStream::new(model, seed)));
        }
        Ok(EntropySource::Full(RingStream::build(
            config, board, seed, fault,
        )?))
    }

    /// Which backend the fallback rules actually selected.
    #[must_use]
    pub fn selected_backend(&self) -> SourceBackend {
        match self {
            EntropySource::Full(_) => SourceBackend::FullSim,
            EntropySource::Surrogate(_) => SourceBackend::Surrogate,
        }
    }

    /// The expected (full sim: analytic; surrogate: calibrated mean)
    /// period, ps.
    #[must_use]
    pub fn expected_period_ps(&self) -> f64 {
        match self {
            EntropySource::Full(s) => s.expected_period_ps(),
            EntropySource::Surrogate(s) => s.expected_period_ps(),
        }
    }

    /// The current waveform horizon.
    #[must_use]
    pub fn now(&self) -> Time {
        match self {
            EntropySource::Full(s) => s.now(),
            EntropySource::Surrogate(s) => s.now(),
        }
    }

    /// Workload statistics (surrogate transitions count as events; see
    /// [`SurrogateStream::stats`]).
    #[must_use]
    pub fn stats(&self) -> SimStats {
        match self {
            EntropySource::Full(s) => s.stats(),
            EntropySource::Surrogate(s) => s.stats(),
        }
    }

    /// Advances the waveform by `delta_ps` past the later of the
    /// current horizon and the prune cursor.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from the full backend; the surrogate
    /// never fails.
    pub fn advance_by(&mut self, delta_ps: f64) -> Result<Time, RingError> {
        match self {
            EntropySource::Full(s) => s.advance_by(delta_ps),
            EntropySource::Surrogate(s) => Ok(s.advance_by(delta_ps)),
        }
    }

    /// The waveform produced so far.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        match self {
            EntropySource::Full(s) => s.trace(),
            EntropySource::Surrogate(s) => s.trace(),
        }
    }

    /// Discards trace history strictly before `until` (monotone
    /// cursor).
    pub fn prune_before(&mut self, until: Time) -> usize {
        match self {
            EntropySource::Full(s) => s.prune_before(until),
            EntropySource::Surrogate(s) => s.prune_before(until),
        }
    }

    /// Everything before this instant has been pruned away.
    #[must_use]
    pub fn consumed_until(&self) -> Time {
        match self {
            EntropySource::Full(s) => s.consumed_until(),
            EntropySource::Surrogate(s) => s.consumed_until(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::str_ring::{StrConfig, TokenLayout};
    use crate::IroConfig;
    use strent_device::Technology;

    fn fpga_board() -> Board {
        Board::new(Technology::cyclone_iii(), 0, 7)
    }

    fn asic_board() -> Board {
        Board::new(Technology::asic_like(), 0, 7)
    }

    fn str32() -> StreamConfig {
        StreamConfig::Str(StrConfig::new(32, 16).expect("valid"))
    }

    #[test]
    fn fit_series_recovers_a_known_mixture() {
        // Synthesize 60k periods from a known AR(1)+white mixture and
        // check the fit lands on the generating parameters.
        let truth = SurrogateModel {
            period_mean_ps: 1_000.0,
            sigma_white_ps: 4.0,
            sigma_edge_ps: 0.0,
            sigma_flicker_ps: 2.0,
            flicker_rho: 0.8,
            duty: 0.5,
        };
        let mut flicker = Ar1Process::new(truth.flicker_rho, truth.sigma_flicker_ps);
        let mut rng = RngTree::new(3).stream(1);
        let periods: Vec<f64> = (0..60_000)
            .map(|_| truth.period_mean_ps + flicker.step(&mut rng) + rng.normal(0.0, 4.0))
            .collect();
        let fitted = Calibrator::fit_series(&periods, 0.5);
        assert!((fitted.period_mean_ps - 1_000.0).abs() < 0.2, "{fitted:?}");
        assert!((fitted.flicker_rho - 0.8).abs() < 0.08, "{fitted:?}");
        assert!((fitted.sigma_white_ps - 4.0).abs() < 0.3, "{fitted:?}");
        assert!((fitted.sigma_flicker_ps - 2.0).abs() < 0.4, "{fitted:?}");
        assert!(fitted.sigma_edge_ps < 0.8, "{fitted:?}");
        assert!(
            (fitted.sigma_period_ps() - truth.sigma_period_ps()).abs() < 0.15,
            "{fitted:?}"
        );
    }

    #[test]
    fn fit_series_recovers_shared_edge_noise() {
        // Periods measured between independently jittered timestamps:
        // p[k] = mean + e[k+1] - e[k] + v[k], the structure event-driven
        // rings actually exhibit (lag-1 anticorrelation).
        let (sigma_e, sigma_v) = (3.0, 2.0);
        let mut rng = RngTree::new(11).stream(2);
        let mut prev_e = rng.normal(0.0, sigma_e);
        let periods: Vec<f64> = (0..60_000)
            .map(|_| {
                let e = rng.normal(0.0, sigma_e);
                let p = 1_000.0 + e - prev_e + rng.normal(0.0, sigma_v);
                prev_e = e;
                p
            })
            .collect();
        let fitted = Calibrator::fit_series(&periods, 0.5);
        assert!((fitted.sigma_edge_ps - sigma_e).abs() < 0.3, "{fitted:?}");
        assert!((fitted.sigma_white_ps - sigma_v).abs() < 0.5, "{fitted:?}");
        assert_eq!(fitted.sigma_flicker_ps, 0.0, "{fitted:?}");
        // Model rho1 = -var_e / (var_v + 2 var_e).
        let expected_rho1 = -(sigma_e * sigma_e) / sigma_v.mul_add(sigma_v, 2.0 * sigma_e * sigma_e);
        assert!(
            (fitted.lag1_autocorrelation() - expected_rho1).abs() < 0.05,
            "rho1 {} vs {expected_rho1}",
            fitted.lag1_autocorrelation()
        );
    }

    #[test]
    fn fit_series_degenerates_to_white_noise_cleanly() {
        let mut rng = RngTree::new(5).stream(0);
        let periods: Vec<f64> = (0..20_000).map(|_| rng.normal(500.0, 3.0)).collect();
        let fitted = Calibrator::fit_series(&periods, 0.4);
        assert_eq!(fitted.flicker_rho * fitted.sigma_flicker_ps, 0.0, "{fitted:?}");
        assert_eq!(fitted.sigma_edge_ps, 0.0, "{fitted:?}");
        assert!((fitted.sigma_white_ps - 3.0).abs() < 0.2, "{fitted:?}");
        assert!(fitted.lag1_autocorrelation().abs() < 1e-12);
        // Constant periods: zero jitter, still a valid model.
        let flat = Calibrator::fit_series(&[100.0; 512], 0.5);
        assert_eq!(flat.sigma_period_ps(), 0.0);
    }

    #[test]
    fn calibrated_str_matches_the_eq5_prediction() {
        let board = fpga_board();
        let model = Calibrator::new()
            .fit(&str32(), &board, 2012)
            .expect("calibrates");
        // The event-driven STR tracks Eq. 5 within a factor 1.6 (see
        // tests/equations.rs); the fitted sigma must land in the same
        // band.
        let predicted = analytic::str_sigma_period_ps(&board);
        let ratio = model.sigma_period_ps() / predicted;
        assert!(
            (1.0 / 1.6..1.6).contains(&ratio),
            "fitted sigma {} vs Eq. 5 {predicted}",
            model.sigma_period_ps()
        );
        let expected_period = str32().predicted_period_ps(&board);
        assert!(
            (model.period_mean_ps / expected_period - 1.0).abs() < 0.02,
            "fitted mean {} vs analytic {expected_period}",
            model.period_mean_ps
        );
        assert!((0.2..=0.8).contains(&model.duty), "duty {}", model.duty);
    }

    #[test]
    fn surrogate_stream_reproduces_the_model_moments() {
        let model = SurrogateModel {
            period_mean_ps: 800.0,
            sigma_white_ps: 3.0,
            sigma_edge_ps: 2.0,
            sigma_flicker_ps: 1.5,
            flicker_rho: 0.7,
            duty: 0.5,
        };
        let mut stream = SurrogateStream::new(model, 9);
        let periods = stream.next_periods(40_000);
        let refit = Calibrator::fit_series(&periods, 0.5);
        assert!((refit.period_mean_ps - 800.0).abs() < 0.2, "{refit:?}");
        assert!(
            (refit.sigma_period_ps() - model.sigma_period_ps()).abs() < 0.15,
            "{refit:?}"
        );
        assert!(
            (refit.lag1_autocorrelation() - model.lag1_autocorrelation()).abs() < 0.05,
            "{refit:?}"
        );
        assert_eq!(stream.periods_emitted(), 40_000);
        assert_eq!(stream.stats().events_processed, 80_000);
    }

    #[test]
    fn advance_granularity_does_not_change_the_waveform() {
        let model = Calibrator::new()
            .with_periods(Calibrator::MIN_PERIODS)
            .fit(&str32(), &fpga_board(), 4)
            .expect("calibrates");
        let mut incremental = SurrogateStream::new(model, 11);
        for _ in 0..10 {
            incremental.advance_by(20_000.0);
        }
        let mut one_shot = SurrogateStream::new(model, 11);
        one_shot.advance_by(200_000.0);
        assert_eq!(incremental.trace(), one_shot.trace());
        assert_eq!(incremental.now(), one_shot.now());
        // Different seeds diverge.
        let mut other = SurrogateStream::new(model, 12);
        other.advance_by(200_000.0);
        assert_ne!(other.trace(), one_shot.trace());
    }

    #[test]
    fn pruning_is_monotone_and_bounds_memory() {
        let model = SurrogateModel {
            period_mean_ps: 1_000.0,
            sigma_white_ps: 2.0,
            sigma_edge_ps: 1.0,
            sigma_flicker_ps: 0.0,
            flicker_rho: 0.0,
            duty: 0.5,
        };
        let mut stream = SurrogateStream::new(model, 1);
        let mut max_len = 0;
        for step in 1..=50 {
            stream.advance_by(10_000.0);
            stream.prune_before(Time::from_ps(f64::from(step) * 10_000.0 - 5_000.0));
            max_len = max_len.max(stream.trace().len());
        }
        assert!(max_len < 40, "pruned trace stays near one slice: {max_len}");
        assert_eq!(stream.prune_before(Time::from_ps(0.0)), 0, "no rewind");
        assert!(stream.consumed_until() > Time::ZERO);
    }

    #[test]
    fn eligibility_follows_the_fallback_rules() {
        let board = fpga_board();
        // Healthy FPGA rings: both families eligible.
        assert!(surrogate_eligible(&str32(), &board, false));
        let iro = StreamConfig::Iro(IroConfig::new(32).expect("valid"));
        assert!(surrogate_eligible(&iro, &board, false));
        // Rule 1: an armed fault forces the full sim.
        assert!(!surrogate_eligible(&str32(), &board, true));
        assert!(!surrogate_eligible(&iro, &board, true));
        // Rule 2: predicted burst (clustered tokens under drafting).
        let clustered = StreamConfig::Str(
            StrConfig::new(16, 6)
                .expect("valid")
                .with_layout(TokenLayout::Clustered),
        );
        assert!(!surrogate_eligible(&clustered, &asic_board(), false));
        // Rule 3: near-boundary deviation under drafting, even though
        // SL012 itself has not fired.
        let near = StrConfig::new(14, 8).expect("valid");
        let (actual, target) = analytic::design_rule(&near);
        let deviation = (actual / target).max(target / actual);
        assert!(
            deviation > BOUNDARY_DEVIATION && deviation <= 1.5,
            "fixture sits between the margins: {deviation}"
        );
        assert!(!surrogate_eligible(
            &StreamConfig::Str(near.clone()),
            &asic_board(),
            false
        ));
        // The same ratio on the FPGA (no drafting) stays eligible.
        assert!(surrogate_eligible(&StreamConfig::Str(near), &board, false));
    }

    #[test]
    fn entropy_source_resolves_backends() {
        let board = fpga_board();
        // FullSim request is honored verbatim.
        let full = EntropySource::build(&str32(), &board, 1, None, SourceBackend::FullSim)
            .expect("builds");
        assert_eq!(full.selected_backend(), SourceBackend::FullSim);
        // Surrogate request on a healthy config selects the surrogate.
        let sur = EntropySource::build(&str32(), &board, 1, None, SourceBackend::Surrogate)
            .expect("builds");
        assert_eq!(sur.selected_backend(), SourceBackend::Surrogate);
        // Surrogate request with a fault armed falls back to full sim.
        let plan = FaultPlan::new(3);
        let fallen =
            EntropySource::build(&str32(), &board, 1, Some(&plan), SourceBackend::Surrogate)
                .expect("builds");
        assert_eq!(fallen.selected_backend(), SourceBackend::FullSim);
        assert_eq!(SourceBackend::Surrogate.label(), "surrogate");
        assert_eq!(SourceBackend::FullSim.label(), "full_sim");
    }

    #[test]
    fn entropy_source_serves_both_backends_through_one_surface() {
        let board = fpga_board();
        for backend in [SourceBackend::FullSim, SourceBackend::Surrogate] {
            let mut source = EntropySource::build(&str32(), &board, 6, None, backend)
                .expect("builds");
            let period = source.expected_period_ps();
            assert!(period > 0.0);
            source.advance_by(200.0 * period).expect("advances");
            assert!(source.now() >= Time::from_ps(200.0 * period));
            assert!(
                source.trace().edge_count(Edge::Rising) > 150,
                "{} oscillates",
                backend.label()
            );
            assert!(source.stats().events_processed > 0);
            let dropped = source.prune_before(Time::from_ps(50.0 * period));
            assert!(dropped > 0);
            assert_eq!(source.consumed_until(), Time::from_ps(50.0 * period));
        }
    }
}
