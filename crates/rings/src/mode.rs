//! Oscillation-mode detection: evenly-spaced vs burst (Fig. 5).
//!
//! In the evenly-spaced mode the tokens pass any given stage at uniform
//! intervals, so the stage output's half-periods are all equal. In the
//! burst mode the token cluster produces a train of short half-periods
//! followed by a long silence while the cluster travels around the rest
//! of the ring. The coefficient of variation (CV) of the half-periods
//! separates the two regimes cleanly.

use serde::{Deserialize, Serialize};
use strent_sim::{Time, Trace};

use crate::state::StrState;

/// The detected propagation regime of a self-timed ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OscillationMode {
    /// Tokens spread evenly and propagate with constant spacing.
    EvenlySpaced,
    /// Tokens travel as a cluster (undesirable for entropy generation).
    Burst,
    /// The ring produced too few transitions to classify.
    Dead,
}

impl std::fmt::Display for OscillationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OscillationMode::EvenlySpaced => "evenly-spaced",
            OscillationMode::Burst => "burst",
            OscillationMode::Dead => "dead",
        })
    }
}

/// CV threshold between the evenly-spaced and burst regimes.
///
/// Evenly-spaced rings show CV well below 0.1 (jitter only); bursts show
/// CV near or above 1 (a long gap dominates). 0.3 splits the regimes
/// with a wide margin on both sides.
pub const BURST_CV_THRESHOLD: f64 = 0.3;

/// Minimum number of half-periods needed for a classification.
pub const MIN_HALF_PERIODS: usize = 16;

/// The spacing uniformity metric: coefficient of variation of the
/// half-periods (0 = perfectly even).
///
/// Returns `None` for fewer than two half-periods or a zero mean.
#[must_use]
pub fn spacing_cv(half_periods: &[f64]) -> Option<f64> {
    if half_periods.len() < 2 {
        return None;
    }
    let n = half_periods.len() as f64;
    let mean = half_periods.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return None;
    }
    let var = half_periods
        .iter()
        .map(|h| (h - mean) * (h - mean))
        .sum::<f64>()
        / (n - 1.0);
    Some(var.sqrt() / mean)
}

/// Classifies the oscillation mode from the half-periods observed at one
/// stage output (skip the transient before calling).
#[must_use]
pub fn classify_half_periods(half_periods: &[f64]) -> OscillationMode {
    if half_periods.len() < MIN_HALF_PERIODS {
        return OscillationMode::Dead;
    }
    match spacing_cv(half_periods) {
        Some(cv) if cv <= BURST_CV_THRESHOLD => OscillationMode::EvenlySpaced,
        Some(_) => OscillationMode::Burst,
        None => OscillationMode::Dead,
    }
}

/// Classifies the mode from a recorded stage-output trace, discarding
/// the first `warmup` transitions as transient.
#[must_use]
pub fn classify_trace(trace: &Trace, warmup: usize) -> OscillationMode {
    let halves = trace.half_periods();
    if halves.len() <= warmup {
        return OscillationMode::Dead;
    }
    classify_half_periods(&halves[warmup..])
}

/// Estimates the burst cluster size from a half-period series: in the
/// burst mode, `NT` tokens pass a stage back-to-back (short gaps) and
/// then nothing passes while the cluster circulates (one long gap per
/// revolution), so the cluster size is the typical number of short
/// gaps between consecutive long ones.
///
/// Returns `None` for fewer than [`MIN_HALF_PERIODS`] samples or when
/// the series has no long-gap structure (evenly-spaced mode).
#[must_use]
pub fn burst_cluster_size(half_periods: &[f64]) -> Option<usize> {
    if half_periods.len() < MIN_HALF_PERIODS {
        return None;
    }
    let mean = half_periods.iter().sum::<f64>() / half_periods.len() as f64;
    // A gap counts as "long" when it exceeds twice the mean spacing;
    // the evenly-spaced mode has none.
    let threshold = 2.0 * mean;
    let mut cluster_lengths = Vec::new();
    let mut current = 0usize;
    for &h in half_periods {
        if h > threshold {
            if current > 0 {
                cluster_lengths.push(current);
            }
            current = 0;
        } else {
            current += 1;
        }
    }
    if cluster_lengths.len() < 2 {
        return None;
    }
    // The median cluster length is robust against partial clusters at
    // the series edges.
    cluster_lengths.sort_unstable();
    Some(cluster_lengths[cluster_lengths.len() / 2])
}

/// Reconstructs the logical ring state at instant `t` from the recorded
/// stage-output traces (one per stage, in stage order).
///
/// Returns `None` if fewer than 3 traces are supplied.
#[must_use]
pub fn state_at(stage_traces: &[Trace], t: Time) -> Option<StrState> {
    if stage_traces.len() < 3 {
        return None;
    }
    let outputs = stage_traces.iter().map(|tr| tr.value_at(t)).collect();
    StrState::from_outputs(outputs).ok()
}

/// Samples the token occupancy over `[start, end]` at `frames` uniform
/// instants, rendering each frame with [`StrState::occupancy_string`] —
/// the textual equivalent of the paper's Fig. 5 traces.
///
/// Returns an empty vector if the input is degenerate (fewer than 3
/// stages, no frames, or a non-positive window).
#[must_use]
pub fn occupancy_film(
    stage_traces: &[Trace],
    start: Time,
    end: Time,
    frames: usize,
) -> Vec<String> {
    if stage_traces.len() < 3 || frames == 0 || end <= start {
        return Vec::new();
    }
    let span = end - start;
    (0..frames)
        .filter_map(|k| {
            let t = start + span * k as f64 / frames as f64;
            state_at(stage_traces, t).map(|s| s.occupancy_string())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_sim::Bit;

    #[test]
    fn uniform_halves_classify_evenly_spaced() {
        let halves = vec![500.0; 64];
        assert_eq!(classify_half_periods(&halves), OscillationMode::EvenlySpaced);
        assert!(spacing_cv(&halves).expect("enough data") < 1e-12);
    }

    #[test]
    fn jittered_halves_still_evenly_spaced() {
        let halves: Vec<f64> = (0..64)
            .map(|i| 500.0 + if i % 2 == 0 { 3.0 } else { -3.0 })
            .collect();
        assert_eq!(classify_half_periods(&halves), OscillationMode::EvenlySpaced);
    }

    #[test]
    fn burst_pattern_detected() {
        // 7 fast passages then a long gap, repeated.
        let mut halves = Vec::new();
        for _ in 0..8 {
            halves.extend(std::iter::repeat_n(100.0, 7));
            halves.push(3_000.0);
        }
        assert_eq!(classify_half_periods(&halves), OscillationMode::Burst);
        assert!(spacing_cv(&halves).expect("enough data") > BURST_CV_THRESHOLD);
    }

    #[test]
    fn burst_cluster_size_counts_the_train() {
        // 7 fast passages then a long gap: cluster size 7.
        let mut halves = Vec::new();
        for _ in 0..8 {
            halves.extend(std::iter::repeat_n(100.0, 7));
            halves.push(3_000.0);
        }
        assert_eq!(burst_cluster_size(&halves), Some(7));
        // Evenly-spaced series: no long gaps, no cluster.
        assert_eq!(burst_cluster_size(&[500.0; 64]), None);
        // Too short.
        assert_eq!(burst_cluster_size(&[100.0; 4]), None);
    }

    #[test]
    fn short_series_is_dead() {
        assert_eq!(classify_half_periods(&[100.0; 4]), OscillationMode::Dead);
        assert_eq!(classify_half_periods(&[]), OscillationMode::Dead);
        assert_eq!(spacing_cv(&[1.0]), None);
    }

    #[test]
    fn classify_trace_discards_warmup() {
        let mut trace = Trace::new(Bit::Low);
        let mut t = 0.0;
        // Irregular transient...
        for i in 0..10 {
            t += 50.0 + f64::from(i) * 37.0;
            trace.record(Time::from_ps(t), if i % 2 == 0 { Bit::High } else { Bit::Low });
        }
        // ...then a clean steady regime.
        for i in 0..40 {
            t += 500.0;
            trace.record(Time::from_ps(t), if i % 2 == 0 { Bit::High } else { Bit::Low });
        }
        assert_eq!(classify_trace(&trace, 10), OscillationMode::EvenlySpaced);
        assert_eq!(classify_trace(&trace, 1000), OscillationMode::Dead);
    }

    #[test]
    fn state_reconstruction_from_traces() {
        // Three stages: C0 flips at t=100, C1 at t=200, C2 stays low.
        let mut t0 = Trace::new(Bit::Low);
        t0.record(Time::from_ps(100.0), Bit::High);
        let mut t1 = Trace::new(Bit::Low);
        t1.record(Time::from_ps(200.0), Bit::High);
        let t2 = Trace::new(Bit::Low);
        let traces = vec![t0, t1, t2];
        let s = state_at(&traces, Time::from_ps(150.0)).expect("3 stages");
        assert_eq!(s.outputs(), &[Bit::High, Bit::Low, Bit::Low]);
        assert_eq!(s.token_count(), 2);
        assert!(state_at(&traces[..2], Time::ZERO).is_none());
    }

    #[test]
    fn occupancy_film_produces_frames() {
        let mut t0 = Trace::new(Bit::Low);
        t0.record(Time::from_ps(100.0), Bit::High);
        let t1 = Trace::new(Bit::Low);
        let t2 = Trace::new(Bit::Low);
        let traces = vec![t0, t1, t2];
        let film = occupancy_film(&traces, Time::ZERO, Time::from_ps(200.0), 4);
        assert_eq!(film.len(), 4);
        assert_eq!(film[0], "...");
        // After C0 flips, stages 0 and 1 both border the inversion:
        // C0 != C2 (token) and C1 != C0 (token).
        assert_eq!(film[3], "TT.");
        assert!(occupancy_film(&traces, Time::ZERO, Time::ZERO, 4).is_empty());
    }
}
