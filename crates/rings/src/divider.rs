//! The on-chip measurement divider (Fig. 10 of the paper), as real
//! simulated hardware.
//!
//! The paper measures low jitter values indirectly: a counter inside the
//! chip toggles `osc_mes` every `n` rising edges of the ring output, so
//! one full `osc_mes` period spans `2n` ring periods, accumulating
//! enough jitter for the scope to resolve. `strent-analysis::divider`
//! implements the *math* of the method on period series; this module
//! implements the *circuit*, so the whole measurement chain — ring,
//! counter, scope statistics — runs inside the simulator exactly as it
//! ran on the authors' bench.

use strent_sim::{Bit, Component, ComponentId, Context, Event, EventQueue, NetId, Simulator};

use crate::error::RingError;

/// The counter component: toggles its output every `n` rising edges of
/// its input.
struct EdgeCounter {
    input: NetId,
    output: NetId,
    toggle_every: u64,
    seen: u64,
}

impl Component for EdgeCounter {
    fn on_event(&mut self, event: &Event, ctx: &mut Context<'_>) {
        if let Event::NetChanged { net, value } = *event {
            if net == self.input && value == Bit::High {
                self.seen += 1;
                if self.seen >= self.toggle_every {
                    self.seen = 0;
                    let current = ctx.net(self.output);
                    // An ideal counter: the flip-flop delay is constant,
                    // so it cancels out of every period difference; use
                    // zero for clarity.
                    ctx.schedule_net_uncancellable(self.output, !current, 0.0);
                }
            }
        }
    }
}

/// Handle to an instantiated divider.
#[derive(Debug, Clone, Copy)]
pub struct DividerHandle {
    input: NetId,
    output: NetId,
    component: ComponentId,
    n: u64,
}

impl DividerHandle {
    /// The ring net the counter listens on.
    #[must_use]
    pub fn input(&self) -> NetId {
        self.input
    }

    /// The `osc_mes` net (one full period = `2n` input periods).
    #[must_use]
    pub fn output(&self) -> NetId {
        self.output
    }

    /// The counter component id.
    #[must_use]
    pub fn component(&self) -> ComponentId {
        self.component
    }

    /// The divider setting `n` of Eq. 6.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }
}

/// Attaches a divide-by-`2n` counter to `input` (a ring output net) and
/// returns the `osc_mes` handle. The output net is watched
/// automatically.
///
/// # Errors
///
/// Returns [`RingError::InvalidConfig`] if `n == 0`, or propagates
/// simulator wiring errors.
pub fn build<Q: EventQueue>(
    sim: &mut Simulator<Q>,
    input: NetId,
    n: u64,
) -> Result<DividerHandle, RingError> {
    if n == 0 {
        return Err(RingError::InvalidConfig(
            "divider setting n must be at least 1".to_owned(),
        ));
    }
    let output = sim.add_net_with(format!("osc_mes_div{n}"), Bit::Low);
    let component = sim.add_component(EdgeCounter {
        input,
        output,
        toggle_every: n,
        seen: 0,
    });
    sim.listen(input, component)?;
    sim.watch(output)?;
    Ok(DividerHandle {
        input,
        output,
        component,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iro::{self, IroConfig};
    use strent_device::{Board, Technology};
    use strent_sim::{Edge, Time};

    fn run_with_divider(n: u64, horizon_ns: f64) -> (Vec<f64>, Vec<f64>) {
        let board = Board::new(Technology::cyclone_iii(), 0, 3);
        let mut sim = Simulator::new(17);
        let config = IroConfig::new(5).expect("valid length");
        let ring = iro::build(&config, &board, &mut sim).expect("wires");
        sim.watch(ring.output()).expect("net exists");
        let divider = build(&mut sim, ring.output(), n).expect("valid n");
        sim.run_until(Time::from_ns(horizon_ns)).expect("no limit");
        let osc = sim
            .trace(ring.output())
            .expect("watched")
            .periods(Edge::Rising);
        let mes = sim
            .trace(divider.output())
            .expect("watched")
            .periods(Edge::Rising);
        (osc, mes)
    }

    #[test]
    fn mes_period_is_sum_of_2n_osc_periods() {
        let n = 4;
        let (osc, mes) = run_with_divider(n, 2_000.0);
        assert!(mes.len() >= 10, "got {} mes periods", mes.len());
        // Each osc_mes period spans 2n osc rising edges. Align to the
        // divider's phase: the first toggle happens at osc edge n, the
        // first mes rising edge at edge 2n, the next at 4n...
        // Compare the MEAN periods instead of per-edge bookkeeping:
        // mean(T_mes) = 2n * mean(T_osc) exactly.
        let mean_osc = osc.iter().sum::<f64>() / osc.len() as f64;
        let mean_mes = mes.iter().sum::<f64>() / mes.len() as f64;
        assert!(
            (mean_mes / (2.0 * n as f64 * mean_osc) - 1.0).abs() < 1e-3,
            "mes {mean_mes} vs 2n*osc {}",
            2.0 * n as f64 * mean_osc
        );
    }

    #[test]
    fn hardware_divider_matches_offline_method() {
        let n = 8;
        let (osc, mes) = run_with_divider(n, 40_000.0);
        // Offline: Eq. 6 applied to the osc period series.
        let offline = strent_analysis::divider::measure(&osc, n as usize).expect("measures");
        // Hardware: Eq. 6 applied to the traced osc_mes periods.
        let diffs: Vec<f64> = mes.windows(2).map(|w| w[1] - w[0]).collect();
        let sigma_cc = strent_analysis::stats::std_dev(&diffs).expect("enough");
        let hardware_sigma_p = sigma_cc / (2.0 * (n as f64).sqrt());
        assert!(
            (hardware_sigma_p / offline.sigma_p_ps - 1.0).abs() < 0.15,
            "hardware {hardware_sigma_p} vs offline {}",
            offline.sigma_p_ps
        );
        // And both agree with the direct jitter (IRO periods are iid).
        let direct = strent_analysis::jitter::period_jitter(&osc).expect("enough");
        assert!(
            (hardware_sigma_p / direct - 1.0).abs() < 0.15,
            "hardware {hardware_sigma_p} vs direct {direct}"
        );
    }

    #[test]
    fn zero_n_is_rejected() {
        let mut sim = Simulator::new(1);
        let net = sim.add_net("osc");
        assert!(build(&mut sim, net, 0).is_err());
        let handle = build(&mut sim, net, 3).expect("valid");
        assert_eq!(handle.n(), 3);
    }
}
