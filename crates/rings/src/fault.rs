//! Fault-armed ring runners for degradation studies.
//!
//! [`measure::run_str`](crate::measure::run_str) and friends demand an
//! oscillating ring — exactly the property a fault campaign destroys.
//! The runners here build the same netlists, split a
//! [`FaultPlan`] into its device half (supply droops, applied to a
//! cloned [`Board`]) and its engine half (net/stage faults, armed on
//! the [`Simulator`](strent_sim::Simulator)), then run to a **fixed
//! horizon** and hand back whatever trace the ring produced — a stuck
//! ring is a result, not an error.
//!
//! See `docs/robustness.md` for the fault taxonomy and
//! `run_degradation` in `strent-core` for the experiment built on top.

use strent_device::{Board, Supply};
use strent_sim::{Edge, FaultKind, FaultPlan, SimError, SimStats, Simulator, Time, Trace};

use crate::analytic;
use crate::error::RingError;
use crate::iro::{self, IroConfig};
use crate::lint;
use crate::str_ring::{self, StrConfig};

/// The outcome of a fixed-horizon fault-armed run.
///
/// Unlike [`RingRun`](crate::measure::RingRun) there is no period
/// series: a degraded ring may stall, glitch or drift, so consumers
/// work from the raw output trace (e.g. via [`rising_interval_cv`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedRun {
    /// The output-net waveform over the whole horizon.
    pub trace: Trace,
    /// The simulation end time (the requested horizon).
    pub end_time: Time,
    /// Kernel statistics of the run.
    pub stats: SimStats,
}

/// Applies the plan's supply-droop specs to a copy of the board.
///
/// At most one droop is supported per plan — the [`Supply`] waveform
/// model holds a single sag window. The drooped rail must stay above
/// the technology threshold voltage, where the delay model loses
/// meaning (the device layer would panic).
pub(crate) fn apply_supply_faults(board: &Board, plan: &FaultPlan) -> Result<Board, RingError> {
    let droops = plan.supply_faults();
    let Some(spec) = droops.first() else {
        return Ok(board.clone());
    };
    if droops.len() > 1 {
        return Err(RingError::Sim(SimError::InvalidFault(format!(
            "at most one supply droop per plan, got {}",
            droops.len()
        ))));
    }
    let FaultKind::SupplyDroop { delta_v, until_ps } = spec.kind else {
        unreachable!("supply_faults() only returns SupplyDroop specs");
    };
    let nominal = board.supply().dc_level();
    let sagged = nominal - delta_v;
    let vth = board.technology().threshold_voltage();
    if sagged <= vth {
        return Err(RingError::Sim(SimError::InvalidFault(format!(
            "supply droop to {sagged:.3} V falls below the {vth:.3} V \
             threshold where the delay model is undefined"
        ))));
    }
    let mut drooped = board.clone();
    drooped.set_supply(Supply::droop(nominal, sagged, spec.at_ps, until_ps));
    Ok(drooped)
}

/// Trace capacity for `horizon_ps` of oscillation at `period_ps`.
fn degraded_capacity(horizon_ps: f64, period_ps: f64) -> usize {
    // Two transitions per period, 25% slack for glitch edges and the
    // pre-lock transient, plus fixed headroom for short horizons.
    ((horizon_ps / period_ps) * 2.5) as usize + 32
}

fn check_horizon(horizon_ps: f64) -> Result<(), RingError> {
    if !horizon_ps.is_finite() || horizon_ps <= 0.0 {
        return Err(RingError::Sim(SimError::InvalidFault(format!(
            "degraded-run horizon must be positive and finite, got {horizon_ps}"
        ))));
    }
    Ok(())
}

/// Builds an STR, arms `plan` and runs to `horizon_ps`.
///
/// Supply-droop specs are applied to a cloned board before
/// construction; everything else is armed on the engine. The run makes
/// no oscillation demand — use [`rising_interval_cv`] or the health
/// tests in `strent-trng` to judge what came back.
///
/// # Errors
///
/// Returns an error for an invalid configuration or horizon, a plan
/// naming an unknown net or out-of-range stage, an unsupportable
/// supply droop, or a static-verification rejection.
pub fn run_str_degraded(
    config: &StrConfig,
    board: &Board,
    seed: u64,
    horizon_ps: f64,
    plan: &FaultPlan,
) -> Result<DegradedRun, RingError> {
    check_horizon(horizon_ps)?;
    let board = apply_supply_faults(board, plan)?;
    let mut sim = Simulator::new(seed);
    let handle = str_ring::build(config, &board, &mut sim)?;
    let expected = analytic::str_period_general_ps(config, &board);
    sim.watch_with_capacity(handle.output(), degraded_capacity(horizon_ps, expected))?;
    // Structural verification still applies to a fault campaign, but
    // the Eq. 1 burst prediction does not: degraded operation is the
    // experiment, not a finding.
    let mut report = sim.lint_netlist();
    report.extend(lint::verify_built_str(&sim, &handle));
    lint::enforce(&report)?;
    sim.arm_faults(&plan.without_supply_faults(), handle.components())?;
    sim.run_until(Time::from_ps(horizon_ps))?;
    let trace = sim.trace(handle.output()).expect("watched").clone();
    Ok(DegradedRun {
        trace,
        end_time: sim.now(),
        stats: sim.stats(),
    })
}

/// Builds an IRO, arms `plan` and runs to `horizon_ps`.
///
/// The IRO counterpart of [`run_str_degraded`]; see there for the
/// split between device-level and engine-level faults.
///
/// # Errors
///
/// Same conditions as [`run_str_degraded`].
pub fn run_iro_degraded(
    config: &IroConfig,
    board: &Board,
    seed: u64,
    horizon_ps: f64,
    plan: &FaultPlan,
) -> Result<DegradedRun, RingError> {
    check_horizon(horizon_ps)?;
    let board = apply_supply_faults(board, plan)?;
    let mut sim = Simulator::new(seed);
    let handle = iro::build(config, &board, &mut sim)?;
    let expected = analytic::iro_period_ps(config, &board);
    sim.watch_with_capacity(handle.output(), degraded_capacity(horizon_ps, expected))?;
    let mut report = sim.lint_netlist();
    report.extend(lint::verify_built_iro(&sim, &handle, config));
    lint::enforce(&report)?;
    sim.arm_faults(&plan.without_supply_faults(), handle.components())?;
    sim.run_until(Time::from_ps(horizon_ps))?;
    let trace = sim.trace(handle.output()).expect("watched").clone();
    Ok(DegradedRun {
        trace,
        end_time: sim.now(),
        stats: sim.stats(),
    })
}

/// Coefficient of variation of the rising-edge intervals inside
/// `[from_ps, until_ps)` — the re-lock figure of merit.
///
/// A phase-locked STR shows CV well below 0.05 (jitter only); a ring
/// mid-recovery or in burst mode shows CV an order of magnitude
/// larger. Returns `None` when the window holds fewer than three
/// rising edges (no interval statistics to speak of).
#[must_use]
pub fn rising_interval_cv(trace: &Trace, from_ps: f64, until_ps: f64) -> Option<f64> {
    let edges: Vec<f64> = trace
        .edges(Edge::Rising)
        .iter()
        .map(|t| t.as_ps())
        .filter(|&t| t >= from_ps && t < until_ps)
        .collect();
    if edges.len() < 3 {
        return None;
    }
    let intervals: Vec<f64> = edges.windows(2).map(|w| w[1] - w[0]).collect();
    let n = intervals.len() as f64;
    let mean = intervals.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return None;
    }
    let var = intervals.iter().map(|i| (i - mean).powi(2)).sum::<f64>() / n;
    Some(var.sqrt() / mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_device::Technology;
    use strent_sim::Bit;

    fn board() -> Board {
        Board::new(Technology::cyclone_iii(), 0, 7)
    }

    #[test]
    fn clean_plan_matches_healthy_oscillation() {
        let config = StrConfig::new(8, 4).expect("valid");
        let run = run_str_degraded(&config, &board(), 3, 200_000.0, &FaultPlan::new(3))
            .expect("runs");
        let cv = rising_interval_cv(&run.trace, 50_000.0, 200_000.0).expect("edges");
        assert!(cv < 0.05, "healthy STR locks tightly, cv={cv}");
        assert_eq!(run.end_time, Time::from_ps(200_000.0));
        assert!(run.stats.events_processed > 0);
    }

    #[test]
    fn stuck_at_stalls_then_ring_relocks() {
        let config = StrConfig::new(8, 4).expect("valid");
        let plan = FaultPlan::new(9)
            .with_stuck_at("str0", Bit::Low, 60_000.0, 120_000.0)
            .expect("valid");
        let run =
            run_str_degraded(&config, &board(), 3, 260_000.0, &plan).expect("runs");
        // The clamp window contains (almost) no rising edges on the
        // clamped output net.
        let clamped: Vec<f64> = run
            .trace
            .edges(Edge::Rising)
            .iter()
            .map(|t| t.as_ps())
            .filter(|&t| (62_000.0..120_000.0).contains(&t))
            .collect();
        assert!(clamped.is_empty(), "clamp held, but saw edges {clamped:?}");
        // After release the ring oscillates and re-locks.
        let cv = rising_interval_cv(&run.trace, 180_000.0, 260_000.0)
            .expect("post-recovery edges");
        assert!(cv < 0.05, "STR re-locks after the clamp clears, cv={cv}");
    }

    #[test]
    fn supply_droop_slows_the_iro() {
        let config = IroConfig::new(5).expect("valid");
        let healthy = run_iro_degraded(&config, &board(), 4, 150_000.0, &FaultPlan::new(4))
            .expect("runs");
        let plan = FaultPlan::new(4)
            .with_supply_droop(40_000.0, 0.65, 150_000.0)
            .expect("valid");
        let drooped =
            run_iro_degraded(&config, &board(), 4, 150_000.0, &plan).expect("runs");
        let healthy_edges = healthy.trace.edge_count(Edge::Rising);
        let droop_edges = drooped.trace.edge_count(Edge::Rising);
        assert!(
            (droop_edges as f64) < 0.7 * healthy_edges as f64,
            "droop to 0.55 V slows the ring: {droop_edges} vs {healthy_edges} edges"
        );
    }

    #[test]
    fn droop_below_threshold_is_rejected() {
        let config = IroConfig::new(5).expect("valid");
        let plan = FaultPlan::new(0)
            .with_supply_droop(1_000.0, 0.8, 2_000.0)
            .expect("valid spec");
        let err = run_iro_degraded(&config, &board(), 1, 10_000.0, &plan)
            .expect_err("0.4 V rail rejected");
        assert!(err.to_string().contains("threshold"), "{err}");
    }

    #[test]
    fn unknown_net_in_plan_is_reported() {
        let config = StrConfig::new(8, 4).expect("valid");
        let plan = FaultPlan::new(0)
            .with_stuck_at("nosuchnet", Bit::High, 10.0, 20.0)
            .expect("valid spec");
        let err = run_str_degraded(&config, &board(), 1, 10_000.0, &plan)
            .expect_err("unknown net rejected");
        assert!(matches!(
            err,
            RingError::Sim(SimError::UnknownNetName(_))
        ));
    }

    #[test]
    fn degraded_runs_are_deterministic() {
        let config = StrConfig::new(12, 6).expect("valid");
        let plan = FaultPlan::new(11)
            .with_glitch_burst("str3", Bit::High, 30_000.0, 6, 2_000.0, 400.0)
            .expect("valid");
        let a = run_str_degraded(&config, &board(), 5, 120_000.0, &plan).expect("runs");
        let b = run_str_degraded(&config, &board(), 5, 120_000.0, &plan).expect("runs");
        assert_eq!(a, b, "same seed + plan is bit-identical");
    }
}
