//! The Charlie-effect temporal model of a Muller-gate stage.
//!
//! Following Ebergen/Winstanley/Hamon (the model the paper adopts in
//! Sec. III), the output event time of a C-element whose two enabling
//! input events arrive at `t1` (forward) and `t2` (reverse) is
//!
//! ```text
//! t_out = m + sqrt(Dcharlie^2 + delta^2) + Ds - drafting(t_enable - t_last_out)
//! ```
//!
//! with `m = (t1 + t2)/2` and `delta = (t1 - t2)/2`. Expressed as a delay
//! from the *mean* arrival, this is exactly the paper's Eq. 3:
//! `charlie(s) = Ds + sqrt(Dcharlie^2 + s^2)` with `s = delta`. For
//! `|delta| -> inf` the output tends to `max(t1, t2) + Ds` (pure causality
//! on the later input); for simultaneous inputs the delay is maximal at
//! `Ds + Dcharlie` — the smoothing bottom of the Charlie diagram.
//!
//! The **drafting effect** (shorter delay shortly after the previous
//! output event) is modelled as an exponentially decaying delay
//! reduction; the paper finds it negligible in FPGAs, so the Cyclone III
//! profile sets its magnitude to zero, while the ASIC-like profile uses
//! it to reproduce burst-mode behaviour.

use serde::{Deserialize, Serialize};

use crate::error::RingError;

/// Parameters of the stage temporal model.
///
/// # Examples
///
/// ```
/// use strent_rings::CharlieModel;
///
/// let model = CharlieModel::new(255.0, 128.0)?;
/// // Simultaneous inputs: maximal delay Ds + Dcharlie.
/// assert_eq!(model.charlie_delay(0.0), 383.0);
/// // Far-apart inputs: the delay from the mean tends to Ds + |s|.
/// assert!((model.charlie_delay(5_000.0) - (255.0 + 5_000.0)).abs() < 2.0);
/// # Ok::<(), strent_rings::RingError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CharlieModel {
    ds_ps: f64,
    dcharlie_ps: f64,
    drafting_ps: f64,
    drafting_tau_ps: f64,
}

impl CharlieModel {
    /// Creates a model with the given static delay and Charlie magnitude
    /// (drafting disabled).
    ///
    /// # Errors
    ///
    /// Returns [`RingError::InvalidConfig`] if `ds_ps` is not positive or
    /// `dcharlie_ps` is negative.
    pub fn new(ds_ps: f64, dcharlie_ps: f64) -> Result<Self, RingError> {
        if !(ds_ps.is_finite() && ds_ps > 0.0) {
            return Err(RingError::InvalidConfig(format!(
                "static delay must be positive, got {ds_ps}"
            )));
        }
        if !(dcharlie_ps.is_finite() && dcharlie_ps >= 0.0) {
            return Err(RingError::InvalidConfig(format!(
                "Charlie magnitude must be non-negative, got {dcharlie_ps}"
            )));
        }
        Ok(CharlieModel {
            ds_ps,
            dcharlie_ps,
            drafting_ps: 0.0,
            drafting_tau_ps: 1.0,
        })
    }

    /// Adds a drafting effect: the stage delay is reduced by
    /// `magnitude * exp(-(elapsed since last output)/tau)`.
    ///
    /// # Errors
    ///
    /// Returns [`RingError::InvalidConfig`] if the magnitude is negative,
    /// `tau` is not positive, or the magnitude is not smaller than the
    /// static delay (the stage delay must stay positive).
    pub fn with_drafting(mut self, magnitude_ps: f64, tau_ps: f64) -> Result<Self, RingError> {
        if !(magnitude_ps.is_finite() && magnitude_ps >= 0.0) {
            return Err(RingError::InvalidConfig(format!(
                "drafting magnitude must be non-negative, got {magnitude_ps}"
            )));
        }
        if magnitude_ps >= self.ds_ps {
            return Err(RingError::InvalidConfig(format!(
                "drafting magnitude {magnitude_ps} must be below the static delay {}",
                self.ds_ps
            )));
        }
        if !(tau_ps.is_finite() && tau_ps > 0.0) {
            return Err(RingError::InvalidConfig(format!(
                "drafting tau must be positive, got {tau_ps}"
            )));
        }
        self.drafting_ps = magnitude_ps;
        self.drafting_tau_ps = tau_ps;
        Ok(self)
    }

    /// Static propagation delay `Ds`, picoseconds.
    #[must_use]
    pub fn static_delay_ps(&self) -> f64 {
        self.ds_ps
    }

    /// Charlie magnitude `Dcharlie`, picoseconds.
    #[must_use]
    pub fn charlie_magnitude_ps(&self) -> f64 {
        self.dcharlie_ps
    }

    /// Drafting magnitude, picoseconds (0 when disabled).
    #[must_use]
    pub fn drafting_magnitude_ps(&self) -> f64 {
        self.drafting_ps
    }

    /// Drafting decay constant, picoseconds.
    #[must_use]
    pub fn drafting_tau_ps(&self) -> f64 {
        self.drafting_tau_ps
    }

    /// The paper's Eq. 3: stage delay (from the mean input arrival) as a
    /// function of the input separation `s` (ps).
    #[must_use]
    pub fn charlie_delay(&self, s_ps: f64) -> f64 {
        self.ds_ps + (self.dcharlie_ps * self.dcharlie_ps + s_ps * s_ps).sqrt()
    }

    /// The output event time for enabling input events at `t_forward`
    /// and `t_reverse` (absolute ps), *without* drafting or noise.
    ///
    /// Guaranteed to be at least `max(t_forward, t_reverse) + Ds`.
    #[must_use]
    pub fn output_time(&self, t_forward_ps: f64, t_reverse_ps: f64) -> f64 {
        let m = 0.5 * (t_forward_ps + t_reverse_ps);
        let delta = 0.5 * (t_forward_ps - t_reverse_ps);
        m + (self.dcharlie_ps * self.dcharlie_ps + delta * delta).sqrt() + self.ds_ps
    }

    /// The drafting delay reduction when the stage last produced an
    /// output `elapsed_ps` ago.
    #[must_use]
    pub fn drafting_reduction(&self, elapsed_ps: f64) -> f64 {
        if self.drafting_ps == 0.0 || elapsed_ps < 0.0 {
            return 0.0;
        }
        self.drafting_ps * (-elapsed_ps / self.drafting_tau_ps).exp()
    }

    /// Samples the Charlie diagram over `[-span, span]` ps with `points`
    /// samples per side — the data series of the paper's Fig. 7.
    ///
    /// # Panics
    ///
    /// Panics if `span_ps` is not positive or `points == 0`.
    #[must_use]
    pub fn diagram(&self, span_ps: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(span_ps > 0.0, "span must be positive");
        assert!(points > 0, "need at least one point");
        let n = points as i64;
        (-n..=n)
            .map(|i| {
                let s = span_ps * i as f64 / n as f64;
                (s, self.charlie_delay(s))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CharlieModel {
        CharlieModel::new(255.0, 128.0).expect("valid")
    }

    #[test]
    fn eq3_shape() {
        let m = model();
        // Maximum smoothing at s = 0.
        assert_eq!(m.charlie_delay(0.0), 255.0 + 128.0);
        // Even function.
        assert_eq!(m.charlie_delay(100.0), m.charlie_delay(-100.0));
        // Monotone in |s|.
        assert!(m.charlie_delay(50.0) < m.charlie_delay(100.0));
        // Asymptote: Ds + |s|.
        let far = m.charlie_delay(1e5);
        assert!((far - (255.0 + 1e5)).abs() < 0.1);
    }

    #[test]
    fn output_time_reduces_to_causality_for_far_inputs() {
        let m = model();
        // Reverse input arrived long ago; forward arrives at t = 10_000.
        // Residual Charlie correction: Dch^2 / (2*|t1-t2|) ~ 1.6 ps here.
        let t = m.output_time(10_000.0, 0.0);
        assert!((t - (10_000.0 + 255.0)).abs() < 2.0, "t = {t}");
        // Symmetric case.
        let t2 = m.output_time(0.0, 10_000.0);
        assert!((t - t2).abs() < 1e-9);
        // Simultaneous inputs: full Charlie penalty.
        let t3 = m.output_time(500.0, 500.0);
        assert_eq!(t3, 500.0 + 255.0 + 128.0);
    }

    #[test]
    fn output_time_is_causal() {
        let m = model();
        for i in 0..100 {
            let tf = f64::from(i) * 13.7;
            let tr = f64::from(100 - i) * 7.3;
            let t = m.output_time(tf, tr);
            assert!(t >= tf.max(tr) + 255.0 - 1e-9, "causality violated");
        }
    }

    #[test]
    fn drafting_reduces_delay_and_decays() {
        let m = CharlieModel::new(100.0, 20.0)
            .expect("valid")
            .with_drafting(30.0, 50.0)
            .expect("valid");
        assert_eq!(m.drafting_reduction(0.0), 30.0);
        assert!(m.drafting_reduction(50.0) < 30.0 * 0.4);
        assert!(m.drafting_reduction(1e6) < 1e-6);
        assert_eq!(m.drafting_reduction(-5.0), 0.0);
        // Disabled drafting contributes nothing.
        assert_eq!(model().drafting_reduction(0.0), 0.0);
    }

    #[test]
    fn diagram_is_symmetric_with_minimum_at_zero() {
        let m = model();
        let d = m.diagram(600.0, 60);
        assert_eq!(d.len(), 121);
        let min = d
            .iter()
            .cloned()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty");
        assert_eq!(min.0, 0.0);
        assert_eq!(min.1, m.charlie_delay(0.0));
        // Endpoints mirror each other.
        assert!((d[0].1 - d[120].1).abs() < 1e-9);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(CharlieModel::new(0.0, 10.0).is_err());
        assert!(CharlieModel::new(100.0, -1.0).is_err());
        assert!(CharlieModel::new(100.0, 10.0)
            .expect("valid")
            .with_drafting(100.0, 10.0)
            .is_err()); // magnitude >= Ds
        assert!(CharlieModel::new(100.0, 10.0)
            .expect("valid")
            .with_drafting(10.0, 0.0)
            .is_err()); // tau
    }
}
