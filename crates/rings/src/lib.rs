//! # strent-rings — STR and IRO oscillator models
//!
//! The heart of the reproduction: structural, analytic and event-driven
//! models of the two oscillator families the paper compares.
//!
//! * [`state`] — the untimed token/bubble algebra of self-timed rings:
//!   initialization patterns, the propagation rule, conservation
//!   invariants (Sec. II of the paper);
//! * [`charlie`] — the Charlie-effect temporal model of a Muller-gate
//!   stage (Eq. 3), including the drafting effect and Charlie-diagram
//!   generation (Fig. 7);
//! * [`iro`] — inverter ring oscillators: event-driven simulation on
//!   [`strent_sim`] plus closed-form predictions (Eq. 4);
//! * [`str_ring`] — self-timed rings: event-driven simulation with the
//!   Charlie model (the paper's Sec. III), initialization from any token
//!   pattern;
//! * [`analytic`] — closed-form period/jitter predictions for both
//!   families (Eqs. 4 and 5, the `NT = NB` period formula);
//! * [`mode`] — oscillation-mode detection: evenly-spaced vs burst
//!   (Fig. 5) from simulated traces;
//! * [`measure`] — convenience runners that build a ring, simulate it and
//!   return period series ready for `strent-analysis`;
//! * [`differential`] — paired-ring differential measurement: two
//!   matched rings share a global-jitter process (common-mode supply
//!   tone) while keeping private thermal seeds; subtracting their
//!   period series quantifies the common-mode rejection ratio;
//! * [`stream`] — long-running incremental sources for the serving
//!   layer: one ring kept alive indefinitely, advanced in batches, with
//!   trace pruning so memory stays bounded over uptime;
//! * [`surrogate`] — the calibrated O(1)-per-sample fast path for
//!   locked rings: a stochastic period model fitted from a short full
//!   run, plus the `FullSim`/`Surrogate` backend selector with
//!   automatic fallback near mode boundaries (see `docs/surrogate.md`);
//! * [`fault`] — fault-armed runners for degradation studies: fixed
//!   horizon, no oscillation requirement, supply droops applied at the
//!   device layer and everything else on the engine;
//! * [`lint`] — the ring-aware half of the `simlint` static verifier:
//!   oscillation conditions, token conservation, Eq. 1 burst-mode
//!   prediction and wiring checks, run on every netlist the measurement
//!   runners build (see `docs/static_analysis.md`).
//!
//! ## Example: measure a 16-stage STR
//!
//! ```
//! use strent_device::{Board, Technology};
//! use strent_rings::str_ring::StrConfig;
//! use strent_rings::measure;
//!
//! let board = Board::new(Technology::cyclone_iii(), 0, 42);
//! let config = StrConfig::new(16, 8)?; // L = 16, NT = NB = 8
//! let run = measure::run_str(&config, &board, 42, 200)?;
//! // The evenly-spaced STR oscillates near its analytic frequency.
//! let predicted = strent_rings::analytic::str_frequency_mhz(&config, &board);
//! assert!((run.frequency_mhz / predicted - 1.0).abs() < 0.05);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod charlie;
pub mod counter;
pub mod differential;
pub mod divider;
pub mod error;
pub mod fault;
pub mod iro;
pub mod lint;
pub mod measure;
pub mod mode;
pub mod state;
pub mod str_ring;
pub mod stream;
pub mod surrogate;

pub use charlie::CharlieModel;
pub use error::RingError;
pub use iro::IroConfig;
pub use lint::LintPolicy;
pub use mode::OscillationMode;
pub use state::StrState;
pub use str_ring::StrConfig;
pub use stream::{RingStream, StreamConfig};
pub use surrogate::{Calibrator, EntropySource, SourceBackend, SurrogateModel, SurrogateStream};
