//! Self-timed rings (Fig. 2 of the paper): event-driven simulation with
//! the Charlie-effect temporal model.
//!
//! Each stage is a Muller C-element plus inverter implemented in one LUT.
//! Stage `i` fires (copies its forward input) when it holds a token and
//! stage `i+1` holds a bubble; the firing instant follows the Charlie
//! model of [`crate::charlie`], scaled by the board's supply voltage,
//! temperature and per-cell process variation, plus a fresh local
//! Gaussian jitter sample per firing — the entropy source under study.

use strent_device::noise::FlickerProcess;
use strent_device::{Board, LutCell, Supply};
use strent_sim::{Bit, Component, ComponentId, Context, Event, EventQueue, NetId, Simulator};

use crate::error::RingError;
use crate::iro::INIT_TAG;
use crate::state::StrState;

/// How the tokens are distributed at initialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TokenLayout {
    /// Tokens spread as evenly as possible (the paper's setup).
    #[default]
    Spread,
    /// Tokens clustered contiguously (provokes the burst mode).
    Clustered,
}

/// Configuration of a self-timed ring.
///
/// # Examples
///
/// ```
/// use strent_rings::StrConfig;
///
/// // The paper's workhorse: NT = NB (Eq. 2).
/// let config = StrConfig::new(32, 16)?;
/// assert_eq!(config.length(), 32);
/// assert_eq!(config.tokens(), 16);
/// assert_eq!(config.bubbles(), 16);
/// # Ok::<(), strent_rings::RingError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StrConfig {
    length: usize,
    tokens: usize,
    layout: TokenLayout,
    placement_base: u64,
    routing_override_ps: Option<f64>,
    charlie_override_ps: Option<f64>,
}

impl StrConfig {
    /// Creates a configuration for an `length`-stage STR initialized
    /// with `tokens` tokens (and `length - tokens` bubbles).
    ///
    /// # Errors
    ///
    /// Returns [`RingError::InvalidConfig`] unless the oscillation
    /// conditions hold: `length >= 3`, `tokens` positive and even,
    /// at least one bubble.
    pub fn new(length: usize, tokens: usize) -> Result<Self, RingError> {
        // Reuse the state constructor's validation.
        let _ = StrState::with_spread_tokens(length, tokens)?;
        Ok(StrConfig {
            length,
            tokens,
            layout: TokenLayout::Spread,
            placement_base: 0,
            routing_override_ps: None,
            charlie_override_ps: None,
        })
    }

    /// Number of ring stages `L`.
    #[must_use]
    pub fn length(&self) -> usize {
        self.length
    }

    /// Number of tokens `NT`.
    #[must_use]
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Number of bubbles `NB = L - NT`.
    #[must_use]
    pub fn bubbles(&self) -> usize {
        self.length - self.tokens
    }

    /// The initial token layout.
    #[must_use]
    pub fn layout(&self) -> TokenLayout {
        self.layout
    }

    /// Selects the initial token layout.
    #[must_use]
    pub fn with_layout(mut self, layout: TokenLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Places the ring starting at a different cell index.
    #[must_use]
    pub fn with_placement_base(mut self, base: u64) -> Self {
        self.placement_base = base;
        self
    }

    /// Overrides the per-stage routing overhead (ps).
    ///
    /// # Errors
    ///
    /// Returns [`RingError::InvalidConfig`] (surfaced as an `SL010`
    /// diagnostic) if the value is negative or non-finite.
    pub fn with_routing_ps(mut self, routing_ps: f64) -> Result<Self, RingError> {
        if !(routing_ps.is_finite() && routing_ps >= 0.0) {
            return Err(RingError::InvalidConfig(format!(
                "routing override must be non-negative, got {routing_ps}"
            )));
        }
        self.routing_override_ps = Some(routing_ps);
        Ok(self)
    }

    /// Overrides the nominal Charlie magnitude (ps) — used by ablation
    /// studies; the default comes from the board's technology.
    ///
    /// # Errors
    ///
    /// Returns [`RingError::InvalidConfig`] (surfaced as an `SL010`
    /// diagnostic) if the value is negative or non-finite.
    pub fn with_charlie_ps(mut self, charlie_ps: f64) -> Result<Self, RingError> {
        if !(charlie_ps.is_finite() && charlie_ps >= 0.0) {
            return Err(RingError::InvalidConfig(format!(
                "Charlie override must be non-negative, got {charlie_ps}"
            )));
        }
        self.charlie_override_ps = Some(charlie_ps);
        Ok(self)
    }

    /// The initial logical state this configuration produces.
    ///
    /// # Panics
    ///
    /// Never in practice: the constructor validated the counts.
    #[must_use]
    pub fn initial_state(&self) -> StrState {
        match self.layout {
            TokenLayout::Spread => StrState::with_spread_tokens(self.length, self.tokens),
            TokenLayout::Clustered => StrState::with_clustered_tokens(self.length, self.tokens),
        }
        .expect("validated at construction")
    }

    /// The per-stage routing overhead this configuration resolves to.
    #[must_use]
    pub fn routing_ps(&self, board: &Board) -> f64 {
        self.routing_override_ps.unwrap_or_else(|| {
            board
                .technology()
                .str_routing()
                .overhead_ps(u32::try_from(self.length).unwrap_or(u32::MAX))
        })
    }

    /// The nominal Charlie magnitude this configuration resolves to.
    #[must_use]
    pub fn charlie_ps(&self, board: &Board) -> f64 {
        self.charlie_override_ps
            .unwrap_or_else(|| board.technology().charlie_delay_ps())
    }

    /// The placed LUT cells this ring uses on `board`, in stage order.
    #[must_use]
    pub fn cells(&self, board: &Board) -> Vec<LutCell> {
        let routing = self.routing_ps(board);
        (0..self.length)
            .map(|i| board.lut_with_routing(self.placement_base + i as u64, routing))
            .collect()
    }
}

/// One STR stage (Muller gate + inverter in a LUT).
struct StrStage {
    forward: NetId,
    reverse: NetId,
    output: NetId,
    /// Mirrors of the three net levels, updated from the `NetChanged`
    /// events themselves. The stage listens on all three nets and a net
    /// only changes by dispatching to its listeners, so the mirrors
    /// track the simulator's net state exactly — and the per-firing
    /// guard needs no net reads at all.
    val_forward: Bit,
    val_reverse: Bit,
    val_output: Bit,
    cell: LutCell,
    /// Process-adjusted nominal Charlie magnitude, ps.
    charlie_nominal_ps: f64,
    drafting_nominal_ps: f64,
    drafting_tau_ps: f64,
    supply: Supply,
    /// Slow flicker modulation of this stage's static delays.
    flicker: FlickerProcess,
    /// Supply voltage the cached delays below were computed at (NaN
    /// until the first firing). The supply is piecewise-constant in
    /// almost every experiment, so successive firings resolve the same
    /// voltage and skip the alpha-power law entirely.
    cached_v: f64,
    /// Static (process/voltage/temperature-scaled, flicker-free) stage
    /// delay at `cached_v`, ps.
    cached_ds_ps: f64,
    /// Scaled Charlie magnitude at `cached_v`, ps.
    cached_dch_ps: f64,
    /// Timestamps (ps) of the most recent change on each input.
    t_forward: f64,
    t_reverse: f64,
    /// Timestamp (ps) of our most recent output event.
    t_output: f64,
    /// Whether a firing is currently scheduled.
    pending: bool,
}

impl StrStage {
    /// Evaluates the Muller-gate enabling condition and schedules the
    /// firing if enabled. Inputs cannot change while a firing is pending
    /// (a structural property of valid STR states), so `pending` is a
    /// simple flag.
    fn evaluate(&mut self, ctx: &mut Context<'_>) {
        if self.pending {
            return;
        }
        let f = self.val_forward;
        if f == self.val_reverse || self.val_output == f {
            return;
        }
        let now = ctx.now().as_ps();
        // Effective (process + voltage + temperature scaled) parameters,
        // memoized against the supply voltage. Equal inputs produce
        // equal outputs, so the memo is bit-identical to recomputing.
        let v = self.supply.voltage_at(now);
        if v != self.cached_v {
            let scaling = self.cell.scaling();
            let temp = scaling.temperature_factor(self.cell.temp_c());
            let (tf, inf) = scaling.voltage_factors(v);
            self.cached_ds_ps = self.cell.static_delay_from_factors(tf, inf);
            self.cached_dch_ps = self.charlie_nominal_ps * tf * temp;
            self.cached_v = v;
        }
        let flicker = self.flicker.factor_at(now, ctx.rng());
        let ds = self.cached_ds_ps * flicker;
        let dch = self.cached_dch_ps * flicker;
        // Charlie timing from the two enabling input event times.
        let m = 0.5 * (self.t_forward + self.t_reverse);
        let delta = 0.5 * (self.t_forward - self.t_reverse);
        let mut t_fire = m + (dch * dch + delta * delta).sqrt() + ds;
        // Drafting: delay reduction shortly after our last output event.
        if self.drafting_nominal_ps > 0.0 && self.t_output >= 0.0 {
            let elapsed = now - self.t_output;
            t_fire -= self.drafting_nominal_ps * (-elapsed / self.drafting_tau_ps).exp();
        }
        // Local Gaussian jitter: the entropy source.
        t_fire += ctx.rng().normal(0.0, self.cell.sigma_g_ps());
        // Causality clamp (noise or drafting cannot fire in the past).
        let delay = (t_fire - now).max(0.01);
        ctx.schedule_net_uncancellable(self.output, f, delay);
        self.pending = true;
    }
}

impl Component for StrStage {
    fn on_event(&mut self, event: &Event, ctx: &mut Context<'_>) {
        match *event {
            Event::NetChanged { net, value } => {
                let now = ctx.now().as_ps();
                if net == self.output {
                    self.val_output = value;
                    self.t_output = now;
                    self.pending = false;
                    // After our own output fires, C == F by
                    // construction: the fired value was F at scheduling
                    // time, and inputs cannot change while a firing is
                    // pending. The Muller guard in `evaluate` cannot
                    // pass, so the call would be a no-op (it returns
                    // before any RNG draw) — skip it.
                } else {
                    if net == self.forward {
                        self.val_forward = value;
                        self.t_forward = now;
                    }
                    if net == self.reverse {
                        self.val_reverse = value;
                        self.t_reverse = now;
                    }
                    self.evaluate(ctx);
                }
            }
            Event::Timer { tag } if tag == INIT_TAG => {
                self.evaluate(ctx);
            }
            _ => {}
        }
    }
}

/// Handle to an STR instantiated in a simulator.
#[derive(Debug, Clone)]
pub struct StrHandle {
    nets: Vec<NetId>,
    components: Vec<ComponentId>,
}

impl StrHandle {
    /// Assembles a handle from raw parts — only for the lint tests,
    /// which forge mis-wired handles to prove `SL013` fires.
    #[cfg(test)]
    pub(crate) fn from_parts(nets: Vec<NetId>, components: Vec<ComponentId>) -> Self {
        StrHandle { nets, components }
    }

    /// The stage output nets `C[0..L]`.
    #[must_use]
    pub fn nets(&self) -> &[NetId] {
        &self.nets
    }

    /// The net observed by measurements (stage 0's output — the paper
    /// taps a single stage as the oscillator output).
    #[must_use]
    pub fn output(&self) -> NetId {
        self.nets[0]
    }

    /// The stage component ids.
    #[must_use]
    pub fn components(&self) -> &[ComponentId] {
        &self.components
    }
}

/// Instantiates the STR on a board inside a simulator, sets the initial
/// token pattern and arms the bootstrap events.
///
/// # Errors
///
/// Propagates simulator wiring errors.
pub fn build<Q: EventQueue>(
    config: &StrConfig,
    board: &Board,
    sim: &mut Simulator<Q>,
) -> Result<StrHandle, RingError> {
    let state = config.initial_state();
    let cells = config.cells(board);
    let tech = board.technology();
    let charlie_nominal = config.charlie_ps(board);
    let lut_nominal = tech.lut_delay_ps();

    let nets: Vec<NetId> = (0..config.length)
        .map(|i| sim.add_net_with(format!("str{i}"), state.output(i)))
        .collect();
    let mut components = Vec::with_capacity(config.length);
    for (i, cell) in cells.into_iter().enumerate() {
        let forward = nets[(i + config.length - 1) % config.length];
        let reverse = nets[(i + 1) % config.length];
        // Scale the Charlie and drafting terms by the same frozen process
        // factor as the cell's transistor delay.
        let process = cell.process_factor(lut_nominal);
        let stage = StrStage {
            forward,
            reverse,
            output: nets[i],
            val_forward: state.output((i + config.length - 1) % config.length),
            val_reverse: state.output((i + 1) % config.length),
            val_output: state.output(i),
            charlie_nominal_ps: charlie_nominal * process,
            drafting_nominal_ps: tech.drafting_delay_ps() * process,
            drafting_tau_ps: tech.drafting_tau_ps(),
            cell,
            supply: *board.supply(),
            flicker: FlickerProcess::new(tech.flicker_rel_sigma(), tech.flicker_tau_ps()),
            cached_v: f64::NAN,
            cached_ds_ps: 0.0,
            cached_dch_ps: 0.0,
            t_forward: 0.0,
            t_reverse: 0.0,
            t_output: -1.0,
            pending: false,
        };
        let id = sim.add_component(stage);
        sim.listen(forward, id)?;
        sim.listen(reverse, id)?;
        sim.listen(nets[i], id)?;
        components.push(id);
    }
    for &id in &components {
        sim.arm_timer(id, 0.0, INIT_TAG)?;
    }
    Ok(StrHandle { nets, components })
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_device::Technology;
    use strent_sim::Time;

    fn quiet_board() -> Board {
        let tech = Technology::cyclone_iii()
            .with_sigma_g_ps(0.0)
            .with_sigma_intra(0.0)
            .with_sigma_inter(0.0);
        Board::new(tech, 0, 1)
    }

    fn run_periods(config: &StrConfig, board: &Board, horizon_ns: f64) -> Vec<f64> {
        let mut sim = Simulator::new(11);
        let handle = build(config, board, &mut sim).expect("valid");
        sim.watch(handle.output()).expect("net exists");
        sim.run_until(Time::from_ns(horizon_ns)).expect("no limit");
        sim.trace(handle.output())
            .expect("watched")
            .periods(strent_sim::Edge::Rising)
    }

    #[test]
    fn config_accessors_and_validation() {
        let c = StrConfig::new(16, 8).expect("valid");
        assert_eq!(c.bubbles(), 8);
        assert!(StrConfig::new(2, 2).is_err());
        assert!(StrConfig::new(16, 3).is_err());
        assert!(StrConfig::new(16, 16).is_err());
        assert_eq!(
            c.initial_state().token_count(),
            8,
            "initial state matches config"
        );
        let clustered = c.clone().with_layout(TokenLayout::Clustered);
        assert_eq!(clustered.layout(), TokenLayout::Clustered);
        assert_eq!(
            clustered.initial_state().token_positions(),
            (0..8).collect::<Vec<_>>()
        );
        // The former panics are now typed SL010-backed rejections.
        assert!(c.clone().with_routing_ps(-1.0).is_err());
        assert!(c.clone().with_routing_ps(f64::INFINITY).is_err());
        assert!(c.clone().with_charlie_ps(-0.5).is_err());
        assert!(c.clone().with_charlie_ps(f64::NAN).is_err());
        match c.clone().with_charlie_ps(-0.5) {
            Err(e) => assert_eq!(e.diagnostics()[0].code.code(), "SL010"),
            Ok(_) => panic!("negative Charlie accepted"),
        }
    }

    #[test]
    fn ideal_str_period_matches_analytic() {
        // NT = NB, no noise, no routing: T = 2*L*(Ds + Dch)/NT = 4*(Ds+Dch).
        let board = quiet_board();
        let config = StrConfig::new(8, 4)
            .expect("valid")
            .with_routing_ps(0.0)
            .expect("valid routing");
        let periods = run_periods(&config, &board, 60.0);
        assert!(periods.len() > 10, "got {} periods", periods.len());
        let expected = 4.0 * (255.0 + 128.0);
        for p in periods.iter().skip(5) {
            assert!((p / expected - 1.0).abs() < 0.01, "period {p} vs {expected}");
        }
    }

    #[test]
    fn four_stage_ring_matches_paper_frequency() {
        // STR 4C: the paper reports ~653-669 MHz.
        let board = quiet_board();
        let config = StrConfig::new(4, 2)
            .expect("valid")
            .with_routing_ps(0.0)
            .expect("valid routing");
        let periods = run_periods(&config, &board, 60.0);
        assert!(periods.len() > 10);
        let mean = periods.iter().skip(5).sum::<f64>() / (periods.len() - 5) as f64;
        let f_mhz = 1e6 / mean;
        assert!((600.0..700.0).contains(&f_mhz), "F = {f_mhz} MHz");
    }

    #[test]
    fn str_oscillates_for_all_paper_lengths() {
        // Sec. V-A: NT = NB rings oscillate for L in 4..=96.
        let board = quiet_board();
        for &l in &[4usize, 8, 16, 24, 48] {
            let config = StrConfig::new(l, l / 2)
                .expect("valid")
                .with_routing_ps(0.0)
                .expect("valid routing");
            let periods = run_periods(&config, &board, 80.0);
            assert!(periods.len() > 5, "L={l}: only {} periods", periods.len());
        }
    }

    #[test]
    fn jitter_is_length_independent() {
        // The signature STR property (Eq. 5): sigma_p does not grow with L.
        let tech = Technology::cyclone_iii()
            .with_sigma_intra(0.0)
            .with_sigma_inter(0.0);
        let board = Board::new(tech, 0, 1);
        let mut sigmas = Vec::new();
        for &l in &[8usize, 32] {
            let config = StrConfig::new(l, l / 2)
                .expect("valid")
                .with_routing_ps(0.0)
                .expect("valid routing");
            let periods = run_periods(&config, &board, 3_000.0);
            assert!(periods.len() > 400, "L={l}");
            let skip = 50;
            let n = (periods.len() - skip) as f64;
            let mean = periods[skip..].iter().sum::<f64>() / n;
            let sd =
                (periods[skip..].iter().map(|p| (p - mean).powi(2)).sum::<f64>() / (n - 1.0))
                    .sqrt();
            sigmas.push(sd);
        }
        // Both in the paper's 2..4 ps band, and not growing 2x with 4x
        // the stages.
        for &s in &sigmas {
            assert!((1.0..6.0).contains(&s), "sigma {s}");
        }
        assert!(
            sigmas[1] / sigmas[0] < 1.6,
            "sigma grew with L: {sigmas:?}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let board = quiet_board();
        let config = StrConfig::new(12, 6).expect("valid");
        let a = run_periods(&config, &board, 100.0);
        let b = run_periods(&config, &board, 100.0);
        assert_eq!(a, b);
    }
}
