//! An on-chip frequency counter.
//!
//! The paper measured frequencies with an external scope; production
//! FPGA TRNG designs measure them on-chip with a gated edge counter
//! (also the usual online-health-test primitive). The component counts
//! rising edges of its input within consecutive fixed gate windows; the
//! count history converts directly to frequency estimates with a
//! ±1-count quantization.

use strent_sim::{Bit, Component, ComponentId, Context, Event, EventQueue, NetId, Simulator};

use crate::error::RingError;

/// Timer tag used for the gate window.
const GATE_TAG: u64 = 0xC0;

/// The gated-counter component. Public so callers can downcast via
/// [`Simulator::component`] to read the captured counts.
///
/// [`Simulator::component`]: strent_sim::Simulator::component
#[derive(Debug)]
pub struct FrequencyCounter {
    input: NetId,
    gate_ps: f64,
    current: u64,
    windows: Vec<u64>,
}

impl FrequencyCounter {
    /// The completed gate-window counts, oldest first.
    #[must_use]
    pub fn windows(&self) -> &[u64] {
        &self.windows
    }

    /// The gate window length, ps.
    #[must_use]
    pub fn gate_ps(&self) -> f64 {
        self.gate_ps
    }

    /// Frequency estimates in MHz, one per completed window.
    #[must_use]
    pub fn frequencies_mhz(&self) -> Vec<f64> {
        self.windows
            .iter()
            .map(|&c| c as f64 / self.gate_ps * 1e6)
            .collect()
    }
}

impl Component for FrequencyCounter {
    fn on_event(&mut self, event: &Event, ctx: &mut Context<'_>) {
        match *event {
            Event::NetChanged { net, value } if net == self.input && value == Bit::High => {
                self.current += 1;
            }
            Event::Timer { tag } if tag == GATE_TAG => {
                self.windows.push(self.current);
                self.current = 0;
                ctx.schedule_timer(self.gate_ps, GATE_TAG);
            }
            _ => {}
        }
    }
}

/// Handle to an instantiated counter.
#[derive(Debug, Clone, Copy)]
pub struct CounterHandle {
    component: ComponentId,
}

impl CounterHandle {
    /// The counter component id (downcast with
    /// `sim.component::<FrequencyCounter>(handle.component())`).
    #[must_use]
    pub fn component(&self) -> ComponentId {
        self.component
    }

    /// Reads the completed-window frequency estimates from a simulator.
    ///
    /// Returns an empty vector if the handle does not belong to `sim`.
    #[must_use]
    pub fn frequencies_mhz<Q: EventQueue>(&self, sim: &Simulator<Q>) -> Vec<f64> {
        sim.component::<FrequencyCounter>(self.component)
            .map(FrequencyCounter::frequencies_mhz)
            .unwrap_or_default()
    }
}

/// Attaches a gated frequency counter to `input`. The first gate window
/// opens at the current simulation time.
///
/// # Errors
///
/// Returns [`RingError::InvalidConfig`] for a non-positive gate length,
/// or propagates simulator wiring errors.
pub fn build<Q: EventQueue>(
    sim: &mut Simulator<Q>,
    input: NetId,
    gate_ps: f64,
) -> Result<CounterHandle, RingError> {
    if !(gate_ps.is_finite() && gate_ps > 0.0) {
        return Err(RingError::InvalidConfig(format!(
            "gate window must be positive, got {gate_ps}"
        )));
    }
    let component = sim.add_component(FrequencyCounter {
        input,
        gate_ps,
        current: 0,
        windows: Vec::new(),
    });
    sim.listen(input, component)?;
    sim.arm_timer(component, gate_ps, GATE_TAG)?;
    Ok(CounterHandle { component })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iro::{self, IroConfig};
    use strent_device::{Board, Technology};
    use strent_sim::Time;

    #[test]
    fn counter_matches_trace_frequency() {
        let board = Board::new(Technology::cyclone_iii(), 0, 3);
        let mut sim = strent_sim::Simulator::new(9);
        let config = IroConfig::new(5).expect("valid length");
        let ring = iro::build(&config, &board, &mut sim).expect("wires");
        sim.watch(ring.output()).expect("net exists");
        let gate_ps = 100_000.0; // 100 ns windows (~37 edges each)
        let counter = build(&mut sim, ring.output(), gate_ps).expect("valid gate");
        sim.run_until(Time::from_us(2.0)).expect("no limit");

        let freqs = counter.frequencies_mhz(&sim);
        assert!(freqs.len() >= 19, "windows completed: {}", freqs.len());
        let mean = freqs.iter().sum::<f64>() / freqs.len() as f64;
        let reference = sim
            .trace(ring.output())
            .expect("watched")
            .mean_frequency_mhz()
            .expect("oscillates");
        // The counter quantizes to ±1 count per window (~±10 MHz here);
        // the mean over 19+ windows is much tighter.
        assert!(
            (mean / reference - 1.0).abs() < 0.02,
            "counter {mean} vs trace {reference}"
        );
        // Each individual window is within the quantization bound.
        let quantum = 1e6 / gate_ps; // MHz per count
        for f in &freqs {
            assert!((f - reference).abs() <= 2.0 * quantum, "window {f}");
        }
    }

    #[test]
    fn invalid_gate_rejected() {
        let mut sim = strent_sim::Simulator::new(1);
        let net = sim.add_net("osc");
        assert!(build(&mut sim, net, 0.0).is_err());
        assert!(build(&mut sim, net, f64::NAN).is_err());
        let handle = build(&mut sim, net, 100.0).expect("valid");
        assert!(handle.frequencies_mhz(&sim).is_empty());
    }

    #[test]
    fn idle_input_counts_zero() {
        let mut sim = strent_sim::Simulator::new(1);
        let net = sim.add_net("quiet");
        let counter = build(&mut sim, net, 500.0).expect("valid");
        sim.run_until(Time::from_ps(2_600.0)).expect("no limit");
        let c = sim
            .component::<FrequencyCounter>(counter.component())
            .expect("typed");
        assert_eq!(c.windows(), &[0, 0, 0, 0, 0]);
        assert_eq!(c.gate_ps(), 500.0);
    }
}
