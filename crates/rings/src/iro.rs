//! Inverter ring oscillators (Fig. 1 of the paper).
//!
//! The first stage is an inverter; all other stages are delay elements.
//! One event circulates; the period is two laps, so local Gaussian jitter
//! accumulates as `sigma_period = sqrt(2L) * sigma_g` (Eq. 4) and global
//! deterministic delay modulation accumulates linearly over the lap.

use strent_device::noise::FlickerProcess;
use strent_device::{Board, LutCell, Supply};
use strent_sim::{Bit, Component, ComponentId, Context, Event, EventQueue, NetId, Simulator};

use crate::error::RingError;

/// Timer tag used to bootstrap ring components at `t = 0`.
pub(crate) const INIT_TAG: u64 = 0;

/// Configuration of an inverter ring oscillator.
///
/// # Examples
///
/// ```
/// use strent_rings::IroConfig;
///
/// let config = IroConfig::new(5)?;
/// assert_eq!(config.length(), 5);
/// # Ok::<(), strent_rings::RingError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IroConfig {
    length: usize,
    placement_base: u64,
    routing_override_ps: Option<f64>,
}

impl IroConfig {
    /// Creates a configuration for an `length`-stage IRO.
    ///
    /// # Errors
    ///
    /// Returns [`RingError::InvalidConfig`] if `length == 0`.
    pub fn new(length: usize) -> Result<Self, RingError> {
        if length == 0 {
            return Err(RingError::InvalidConfig(
                "an IRO needs at least one stage".to_owned(),
            ));
        }
        Ok(IroConfig {
            length,
            placement_base: 0,
            routing_override_ps: None,
        })
    }

    /// Number of ring stages.
    #[must_use]
    pub fn length(&self) -> usize {
        self.length
    }

    /// Places the ring starting at a different cell index (so several
    /// rings on one board use distinct silicon).
    #[must_use]
    pub fn with_placement_base(mut self, base: u64) -> Self {
        self.placement_base = base;
        self
    }

    /// Overrides the per-stage routing overhead (ps) instead of the
    /// technology's calibrated [`RoutingModel`].
    ///
    /// [`RoutingModel`]: strent_device::RoutingModel
    ///
    /// # Errors
    ///
    /// Returns [`RingError::InvalidConfig`] (surfaced as an `SL010`
    /// diagnostic) if the value is negative or non-finite.
    pub fn with_routing_ps(mut self, routing_ps: f64) -> Result<Self, RingError> {
        if !(routing_ps.is_finite() && routing_ps >= 0.0) {
            return Err(RingError::InvalidConfig(format!(
                "routing override must be non-negative, got {routing_ps}"
            )));
        }
        self.routing_override_ps = Some(routing_ps);
        Ok(self)
    }

    /// The per-stage routing overhead this configuration resolves to on
    /// the given board.
    #[must_use]
    pub fn routing_ps(&self, board: &Board) -> f64 {
        self.routing_override_ps.unwrap_or_else(|| {
            board
                .technology()
                .iro_routing()
                .overhead_ps(u32::try_from(self.length).unwrap_or(u32::MAX))
        })
    }

    /// The placed LUT cells this ring uses on `board`, in stage order.
    #[must_use]
    pub fn cells(&self, board: &Board) -> Vec<LutCell> {
        let routing = self.routing_ps(board);
        (0..self.length)
            .map(|i| board.lut_with_routing(self.placement_base + i as u64, routing))
            .collect()
    }
}

/// One IRO stage: an inverter (stage 0) or delay element, driven by the
/// previous stage's output.
struct IroStage {
    input: NetId,
    output: NetId,
    invert: bool,
    cell: LutCell,
    supply: Supply,
    flicker: FlickerProcess,
    /// Supply voltage the cached static delay was computed at (NaN
    /// until the first crossing). The supply is piecewise-constant in
    /// almost every experiment, so successive crossings resolve the
    /// same voltage and skip the alpha-power law entirely.
    cached_v: f64,
    /// Static (process/voltage/temperature-scaled, flicker-free) stage
    /// delay at `cached_v`, ps.
    cached_ds_ps: f64,
}

impl IroStage {
    fn propagate(&mut self, value: Bit, ctx: &mut Context<'_>) {
        let now = ctx.now().as_ps();
        let out = if self.invert { !value } else { value };
        // Slow flicker modulates the static delay; white jitter stays
        // per-crossing. With flicker disabled (the paper's model) this
        // is exactly `sample_delay_ps`.
        let factor = self.flicker.factor_at(now, ctx.rng());
        // Static delay memoized against the supply voltage. Equal
        // inputs produce equal outputs, so the memo is bit-identical
        // to recomputing.
        let v = self.supply.voltage_at(now);
        if v != self.cached_v {
            let (tf, inf) = self.cell.scaling().voltage_factors(v);
            self.cached_ds_ps = self.cell.static_delay_from_factors(tf, inf);
            self.cached_v = v;
        }
        let rng = ctx.rng();
        let delay = (self.cached_ds_ps * factor + rng.normal(0.0, self.cell.sigma_g_ps()))
            .max(0.01);
        ctx.schedule_net_uncancellable(self.output, out, delay);
    }
}

impl Component for IroStage {
    fn on_event(&mut self, event: &Event, ctx: &mut Context<'_>) {
        match *event {
            Event::NetChanged { net, value } if net == self.input => {
                self.propagate(value, ctx);
            }
            Event::Timer { tag } if tag == INIT_TAG => {
                let value = ctx.net(self.input);
                self.propagate(value, ctx);
            }
            _ => {}
        }
    }
}

/// Handle to an IRO instantiated in a simulator.
#[derive(Debug, Clone)]
pub struct IroHandle {
    nets: Vec<NetId>,
    components: Vec<ComponentId>,
}

impl IroHandle {
    /// The stage output nets, in stage order (net `i` is stage `i`'s
    /// output).
    #[must_use]
    pub fn nets(&self) -> &[NetId] {
        &self.nets
    }

    /// The ring output net observed by measurements (the last stage's
    /// output, which feeds the inverter).
    #[must_use]
    pub fn output(&self) -> NetId {
        *self.nets.last().expect("ring has at least one stage")
    }

    /// The stage component ids.
    #[must_use]
    pub fn components(&self) -> &[ComponentId] {
        &self.components
    }
}

/// Instantiates the IRO on a board inside a simulator and arms its
/// bootstrap event.
///
/// # Errors
///
/// Propagates simulator wiring errors.
pub fn build<Q: EventQueue>(
    config: &IroConfig,
    board: &Board,
    sim: &mut Simulator<Q>,
) -> Result<IroHandle, RingError> {
    let cells = config.cells(board);
    let nets: Vec<NetId> = (0..config.length)
        .map(|i| sim.add_net_with(format!("iro{i}"), Bit::Low))
        .collect();
    let mut components = Vec::with_capacity(config.length);
    for (i, cell) in cells.into_iter().enumerate() {
        let input = nets[(i + config.length - 1) % config.length];
        let tech = board.technology();
        let stage = IroStage {
            input,
            output: nets[i],
            invert: i == 0,
            cell,
            supply: *board.supply(),
            flicker: FlickerProcess::new(tech.flicker_rel_sigma(), tech.flicker_tau_ps()),
            cached_v: f64::NAN,
            cached_ds_ps: 0.0,
        };
        let id = sim.add_component(stage);
        sim.listen(input, id)?;
        components.push(id);
    }
    // Bootstrap: only the inverter produces a change from the all-low
    // state; it launches the single circulating event.
    sim.arm_timer(components[0], 0.0, INIT_TAG)?;
    Ok(IroHandle { nets, components })
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_device::Technology;
    use strent_sim::Time;

    fn quiet_board() -> Board {
        // No jitter, no process variation: deterministic period.
        let tech = Technology::cyclone_iii()
            .with_sigma_g_ps(0.0)
            .with_sigma_intra(0.0)
            .with_sigma_inter(0.0);
        Board::new(tech, 0, 1)
    }

    #[test]
    fn config_validation() {
        assert!(IroConfig::new(0).is_err());
        assert!(IroConfig::new(3).is_ok());
    }

    #[test]
    fn routing_resolution() {
        let board = quiet_board();
        let c = IroConfig::new(5).expect("valid");
        assert!((c.routing_ps(&board) - 11.0).abs() < 1e-9);
        let c = c.with_routing_ps(99.0).expect("valid routing");
        assert_eq!(c.routing_ps(&board), 99.0);
        assert_eq!(c.cells(&board).len(), 5);
        // The former panics are now typed SL010-backed rejections.
        assert!(IroConfig::new(5)
            .expect("valid")
            .with_routing_ps(-1.0)
            .is_err());
        assert!(IroConfig::new(5)
            .expect("valid")
            .with_routing_ps(f64::NAN)
            .is_err());
    }

    #[test]
    fn ideal_iro_period_is_two_laps() {
        let board = quiet_board();
        let config = IroConfig::new(3)
            .expect("valid")
            .with_routing_ps(0.0)
            .expect("valid routing");
        let mut sim = Simulator::new(7);
        let handle = build(&config, &board, &mut sim).expect("valid");
        sim.watch(handle.output()).expect("net exists");
        sim.run_until(Time::from_ns(50.0)).expect("no limit");
        let periods = sim
            .trace(handle.output())
            .expect("watched")
            .periods(strent_sim::Edge::Rising);
        assert!(periods.len() > 10, "got {} periods", periods.len());
        // T = 2 * 3 * 255 ps = 1530 ps.
        for p in &periods[2..] {
            assert!((p - 1530.0).abs() < 1e-6, "period {p}");
        }
    }

    #[test]
    fn placement_base_changes_silicon() {
        let tech = Technology::cyclone_iii();
        let board = Board::new(tech, 0, 5);
        let a = IroConfig::new(3).expect("valid").cells(&board);
        let b = IroConfig::new(3)
            .expect("valid")
            .with_placement_base(100)
            .cells(&board);
        assert_ne!(a[0].transistor_ps(), b[0].transistor_ps());
    }

    #[test]
    fn jitter_accumulates_with_sqrt_2l() {
        // Statistical smoke check of Eq. 4 at small scale; the full
        // Fig. 11 test lives in the measure module and integration tests.
        let tech = Technology::cyclone_iii()
            .with_sigma_intra(0.0)
            .with_sigma_inter(0.0);
        let board = Board::new(tech, 0, 1);
        let config = IroConfig::new(5)
            .expect("valid")
            .with_routing_ps(0.0)
            .expect("valid routing");
        let mut sim = Simulator::new(3);
        let handle = build(&config, &board, &mut sim).expect("valid");
        sim.watch(handle.output()).expect("net exists");
        sim.run_until(Time::from_us(3.0)).expect("no limit");
        let periods = sim
            .trace(handle.output())
            .expect("watched")
            .periods(strent_sim::Edge::Rising);
        assert!(periods.len() > 500);
        let n = periods.len() as f64;
        let mean = periods.iter().sum::<f64>() / n;
        let sd = (periods.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt();
        let expected = (2.0 * 5.0_f64).sqrt() * 2.0; // sqrt(2L) * sigma_g
        assert!(
            (sd / expected - 1.0).abs() < 0.15,
            "sigma {sd} vs {expected}"
        );
    }
}
