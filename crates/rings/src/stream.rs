//! Long-running incremental ring sources.
//!
//! The measurement runners in [`crate::measure`] build a ring, run it to
//! a horizon, and hand back a finished trace — the right shape for a
//! one-shot experiment, the wrong shape for a *service*. A serving
//! worker needs to keep one ring alive indefinitely, advance it in
//! small batches, read the freshly produced waveform, and discard what
//! it has already consumed so memory stays bounded over hours of
//! uptime.
//!
//! [`RingStream`] is that shape: it owns the [`Simulator`], the built
//! ring and a consumption cursor. Each `advance_by` extends the
//! simulation; `trace()` exposes the waveform for sampling; and
//! `prune_before` drops everything the consumer is done with (via
//! [`Trace::discard_before`]). Static verification (the `SL0xx`
//! netlist lints) runs once at construction, exactly as in the one-shot
//! runners, and a [`FaultPlan`] can be armed for degradation-aware
//! serving — supply droops are split off to the device layer the same
//! way [`crate::fault::run_str_degraded`] does.

use strent_device::Board;
use strent_sim::{FaultPlan, SimStats, Simulator, Time, Trace};

use crate::analytic;
use crate::error::RingError;
use crate::fault::apply_supply_faults;
use crate::iro::{self, IroConfig};
use crate::lint;
use crate::str_ring::{self, StrConfig};

/// Which ring family a stream simulates.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamConfig {
    /// A self-timed ring.
    Str(StrConfig),
    /// An inverter ring oscillator.
    Iro(IroConfig),
}

impl StreamConfig {
    /// The analytic period prediction on `board`, ps.
    #[must_use]
    pub fn predicted_period_ps(&self, board: &Board) -> f64 {
        match self {
            StreamConfig::Str(c) => analytic::str_period_general_ps(c, board),
            StreamConfig::Iro(c) => analytic::iro_period_ps(c, board),
        }
    }
}

/// An incrementally stepped, indefinitely running ring source.
#[derive(Debug)]
pub struct RingStream {
    sim: Simulator,
    output: strent_sim::NetId,
    expected_period_ps: f64,
    /// Everything before this instant has been consumed and pruned.
    consumed_until: Time,
}

impl RingStream {
    /// Builds the ring on `board`, verifies the netlist, optionally
    /// arms `fault`, and returns the stream positioned at `t = 0`.
    ///
    /// When a fault plan is supplied, its supply-droop half is applied
    /// to a cloned board before construction and the Eq. 1 burst-mode
    /// prediction is excluded from enforcement (degraded operation is
    /// the point); structural findings still reject the build.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid configuration, an unsupportable
    /// supply droop, a plan naming an unknown net, or a
    /// static-verification rejection.
    pub fn build(
        config: &StreamConfig,
        board: &Board,
        seed: u64,
        fault: Option<&FaultPlan>,
    ) -> Result<Self, RingError> {
        let board = match fault {
            Some(plan) => apply_supply_faults(board, plan)?,
            None => board.clone(),
        };
        let mut sim = Simulator::new(seed);
        let (output, components, report) = match config {
            StreamConfig::Str(c) => {
                let handle = str_ring::build(c, &board, &mut sim)?;
                let mut report = sim.lint_netlist();
                report.extend(lint::verify_built_str(&sim, &handle));
                report.extend(
                    lint::verify_str_config(c, &board)
                        .into_iter()
                        .filter(|d| {
                            fault.is_none()
                                || d.code != strent_sim::LintCode::BurstModePredicted
                        })
                        .collect(),
                );
                (handle.output(), handle.components().to_vec(), report)
            }
            StreamConfig::Iro(c) => {
                let handle = iro::build(c, &board, &mut sim)?;
                let mut report = sim.lint_netlist();
                report.extend(lint::verify_built_iro(&sim, &handle, c));
                (handle.output(), handle.components().to_vec(), report)
            }
        };
        lint::enforce(&report)?;
        sim.watch(output)?;
        if let Some(plan) = fault {
            sim.arm_faults(&plan.without_supply_faults(), &components)?;
        }
        Ok(RingStream {
            sim,
            output,
            expected_period_ps: config.predicted_period_ps(&board),
            consumed_until: Time::ZERO,
        })
    }

    /// The analytic period prediction for this stream's ring, ps.
    #[must_use]
    pub fn expected_period_ps(&self) -> f64 {
        self.expected_period_ps
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.sim.now()
    }

    /// Kernel statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        self.sim.stats()
    }

    /// Advances the simulation by `delta_ps` picoseconds past the later
    /// of the current simulation time and the prune cursor.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults (e.g. an invalid injected event).
    pub fn advance_by(&mut self, delta_ps: f64) -> Result<Time, RingError> {
        let horizon = self.sim.now().max(self.consumed_until) + delta_ps;
        self.sim.run_until(horizon)?;
        Ok(horizon)
    }

    /// The output-net waveform produced so far (everything at or after
    /// the last [`prune_before`](RingStream::prune_before) cut).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        self.sim.trace(self.output).expect("output is watched")
    }

    /// Discards trace history strictly before `until`, returning the
    /// number of transitions dropped. The consumption cursor is
    /// monotone: pruning backwards is a no-op.
    pub fn prune_before(&mut self, until: Time) -> usize {
        if until <= self.consumed_until {
            return 0;
        }
        self.consumed_until = until;
        self.sim
            .traces_mut()
            .get_mut(self.output)
            .expect("output is watched")
            .discard_before(until)
    }

    /// Everything before this instant has been pruned away.
    #[must_use]
    pub fn consumed_until(&self) -> Time {
        self.consumed_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_device::Technology;
    use strent_sim::{Bit, Edge};

    fn board() -> Board {
        Board::new(Technology::cyclone_iii(), 0, 7)
    }

    fn str_stream(seed: u64) -> RingStream {
        let config = StreamConfig::Str(StrConfig::new(16, 8).expect("valid"));
        RingStream::build(&config, &board(), seed, None).expect("builds")
    }

    #[test]
    fn incremental_stepping_matches_one_shot_simulation() {
        // Advancing in ten 20 ns slices produces the same waveform as
        // one 200 ns run: stepping is purely an execution schedule.
        let mut incremental = str_stream(11);
        for _ in 0..10 {
            incremental.advance_by(20_000.0).expect("advances");
        }
        let mut one_shot = str_stream(11);
        one_shot.advance_by(200_000.0).expect("advances");
        assert_eq!(incremental.trace(), one_shot.trace());
        assert_eq!(incremental.now(), one_shot.now());
    }

    #[test]
    fn pruning_bounds_memory_without_changing_the_future() {
        let mut pruned = str_stream(5);
        let mut kept = str_stream(5);
        let mut pruned_len_max = 0usize;
        for step in 1..=20 {
            pruned.advance_by(10_000.0).expect("advances");
            kept.advance_by(10_000.0).expect("advances");
            pruned.prune_before(Time::from_ps(f64::from(step) * 10_000.0 - 5_000.0));
            pruned_len_max = pruned_len_max.max(pruned.trace().len());
        }
        // The pruned stream retains only ~one slice of history...
        assert!(
            pruned_len_max < kept.trace().len() / 4,
            "pruned max {pruned_len_max} vs full {}",
            kept.trace().len()
        );
        // ...and the surviving suffix is identical to the unpruned run.
        let cut = pruned.consumed_until();
        let suffix: Vec<_> = kept
            .trace()
            .transitions()
            .iter()
            .filter(|&&(t, _)| t >= cut)
            .copied()
            .collect();
        assert_eq!(pruned.trace().transitions(), suffix.as_slice());
        assert_eq!(pruned.trace().value_at(cut), kept.trace().value_at(cut));
    }

    #[test]
    fn prune_cursor_is_monotone() {
        let mut stream = str_stream(3);
        stream.advance_by(50_000.0).expect("advances");
        let dropped = stream.prune_before(Time::from_ps(30_000.0));
        assert!(dropped > 0);
        assert_eq!(stream.prune_before(Time::from_ps(10_000.0)), 0, "no rewind");
        assert_eq!(stream.consumed_until(), Time::from_ps(30_000.0));
    }

    #[test]
    fn iro_streams_oscillate_too() {
        let config = StreamConfig::Iro(IroConfig::new(9).expect("valid"));
        let mut stream = RingStream::build(&config, &board(), 2, None).expect("builds");
        stream.advance_by(100_000.0).expect("advances");
        assert!(stream.trace().edge_count(Edge::Rising) > 10);
        assert!(stream.stats().events_processed > 0);
        assert!(stream.expected_period_ps() > 0.0);
    }

    #[test]
    fn fault_armed_stream_shows_the_clamp() {
        let config = StreamConfig::Str(StrConfig::new(8, 4).expect("valid"));
        let plan = FaultPlan::new(9)
            .with_stuck_at("str0", Bit::Low, 40_000.0, 90_000.0)
            .expect("valid");
        let mut stream =
            RingStream::build(&config, &board(), 3, Some(&plan)).expect("builds");
        stream.advance_by(120_000.0).expect("advances");
        let clamped = stream
            .trace()
            .edges(Edge::Rising)
            .iter()
            .map(|t| t.as_ps())
            .filter(|&t| (42_000.0..90_000.0).contains(&t))
            .count();
        assert_eq!(clamped, 0, "clamp window stays flat");
    }

    #[test]
    fn bad_configurations_are_rejected_at_build() {
        // A droop below threshold is rejected exactly as in the
        // degraded runners.
        let config = StreamConfig::Iro(IroConfig::new(5).expect("valid"));
        let plan = FaultPlan::new(0)
            .with_supply_droop(1_000.0, 0.8, 2_000.0)
            .expect("valid spec");
        assert!(RingStream::build(&config, &board(), 1, Some(&plan)).is_err());
    }
}
