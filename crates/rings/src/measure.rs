//! Convenience runners: build a ring, simulate it, return period series.
//!
//! These wrap the build functions of [`crate::iro`] and
//! [`crate::str_ring`] with the bookkeeping every experiment needs:
//! warm-up discarding, adaptive horizon extension and trace extraction.

use strent_device::Board;
use strent_sim::{Edge, SimStats, Simulator, Time, Trace};

use crate::analytic;
use crate::error::RingError;
use crate::iro::{self, IroConfig};
use crate::lint;
use crate::str_ring::{self, StrConfig};

/// Number of initial periods discarded as start-up transient.
pub const WARMUP_PERIODS: usize = 64;

/// The outcome of running one ring on one board.
#[derive(Debug, Clone, PartialEq)]
pub struct RingRun {
    /// Steady-state periods (rising edge to rising edge), picoseconds.
    pub periods_ps: Vec<f64>,
    /// Steady-state half-periods (any edge to any edge), picoseconds.
    pub half_periods_ps: Vec<f64>,
    /// Mean frequency over the steady-state periods, MHz.
    pub frequency_mhz: f64,
    /// Simulator events dispatched to produce this run — the workload
    /// unit sweep harnesses aggregate per shard.
    pub events_dispatched: u64,
    /// Full kernel statistics of the run (dispatched, cancelled,
    /// suppressed), for per-experiment perf reporting.
    pub stats: SimStats,
}

impl RingRun {
    fn from_trace(trace: &Trace, warmup: usize, requested: usize) -> Result<Self, RingError> {
        let all_periods = trace.periods(Edge::Rising);
        if all_periods.len() < warmup + requested {
            return Err(RingError::HorizonExceeded {
                collected: all_periods.len().saturating_sub(warmup),
                requested,
            });
        }
        let periods_ps: Vec<f64> = all_periods[warmup..warmup + requested].to_vec();
        let halves = trace.half_periods();
        let half_start = (2 * warmup).min(halves.len());
        let half_end = (2 * (warmup + requested)).min(halves.len());
        let mean = periods_ps.iter().sum::<f64>() / periods_ps.len() as f64;
        Ok(RingRun {
            half_periods_ps: halves[half_start..half_end].to_vec(),
            frequency_mhz: 1e6 / mean,
            periods_ps,
            events_dispatched: 0,
            stats: SimStats::default(),
        })
    }

    /// Copies the kernel statistics of the finished simulation into the
    /// run record.
    fn absorb_stats(&mut self, stats: SimStats) {
        self.stats = stats;
        self.events_dispatched = stats.events_processed;
    }
}

/// Expected transition count on a ring output collecting `total`
/// periods (two transitions per period, plus horizon slack).
fn expected_transitions(total: usize) -> usize {
    total * 2 + total / 2 + 8
}

/// Runs the simulation until the trace holds enough rising edges,
/// extending the horizon geometrically; fails after `max_doublings`.
///
/// Progress polling uses the non-allocating [`Trace::edge_count`] —
/// materializing the edge-instant vector once per horizon extension was
/// pure overhead.
fn run_to_periods(
    sim: &mut Simulator,
    net: strent_sim::NetId,
    expected_period_ps: f64,
    needed_periods: usize,
    warmup: usize,
) -> Result<(), RingError> {
    let total = needed_periods + warmup + 2;
    let mut horizon = expected_period_ps * total as f64 * 1.3;
    let max_doublings = 8;
    for _ in 0..=max_doublings {
        sim.run_until(Time::from_ps(horizon))?;
        let edges = sim
            .trace(net)
            .map_or(0, |t| t.edge_count(Edge::Rising));
        if edges > total {
            return Ok(());
        }
        horizon *= 2.0;
    }
    let collected = sim
        .trace(net)
        .map_or(0, |t| t.edge_count(Edge::Rising))
        .saturating_sub(warmup);
    Err(RingError::NotOscillating {
        observed_transitions: collected,
    })
}

/// Builds and runs an IRO, returning `periods` steady-state periods.
///
/// # Errors
///
/// Returns an error if the ring fails to oscillate or the simulator
/// reports a fault.
pub fn run_iro(
    config: &IroConfig,
    board: &Board,
    seed: u64,
    periods: usize,
) -> Result<RingRun, RingError> {
    let mut sim = Simulator::new(seed);
    let handle = iro::build(config, board, &mut sim)?;
    let capacity = expected_transitions(periods + WARMUP_PERIODS + 2);
    sim.watch_with_capacity(handle.output(), capacity)?;
    let mut report = sim.lint_netlist();
    report.extend(lint::verify_built_iro(&sim, &handle, config));
    lint::enforce(&report)?;
    let expected = analytic::iro_period_ps(config, board);
    run_to_periods(&mut sim, handle.output(), expected, periods, WARMUP_PERIODS)?;
    let trace = sim.trace(handle.output()).expect("watched");
    let mut run = RingRun::from_trace(trace, WARMUP_PERIODS, periods)?;
    run.absorb_stats(sim.stats());
    Ok(run)
}

/// Builds and runs an STR, returning `periods` steady-state periods.
///
/// # Errors
///
/// Returns an error if the ring fails to oscillate or the simulator
/// reports a fault.
pub fn run_str(
    config: &StrConfig,
    board: &Board,
    seed: u64,
    periods: usize,
) -> Result<RingRun, RingError> {
    let mut sim = Simulator::new(seed);
    let handle = str_ring::build(config, board, &mut sim)?;
    let capacity = expected_transitions(periods + WARMUP_PERIODS + 2);
    sim.watch_with_capacity(handle.output(), capacity)?;
    let mut report = sim.lint_netlist();
    report.extend(lint::verify_built_str(&sim, &handle));
    report.extend(lint::verify_str_config(config, board));
    lint::enforce(&report)?;
    // The general closure formula stays accurate for NT != NB, where
    // the balanced formula can underestimate the period several-fold.
    let expected = analytic::str_period_general_ps(config, board);
    run_to_periods(&mut sim, handle.output(), expected, periods, WARMUP_PERIODS)?;
    let trace = sim.trace(handle.output()).expect("watched");
    let mut run = RingRun::from_trace(trace, WARMUP_PERIODS, periods)?;
    run.absorb_stats(sim.stats());
    Ok(run)
}

/// A full STR run that also records every stage output — the input for
/// mode detection and the Fig. 5 occupancy film.
#[derive(Debug, Clone)]
pub struct StrFullRun {
    /// The measurement view of the run (periods, frequency).
    pub run: RingRun,
    /// One trace per stage, in stage order.
    pub stage_traces: Vec<Trace>,
    /// The simulation end time.
    pub end_time: Time,
}

/// Builds and runs an STR with all stage outputs recorded.
///
/// Unlike [`run_str`], a failure to collect the requested period count
/// is tolerated when at least a handful of transitions happened — a
/// *burst-mode* ring is irregular but very much alive, and mode
/// diagnosis is exactly what this runner exists for.
///
/// # Errors
///
/// Returns an error if the simulator faults or the ring produced no
/// transitions at all.
pub fn run_str_full(
    config: &StrConfig,
    board: &Board,
    seed: u64,
    periods: usize,
) -> Result<StrFullRun, RingError> {
    let mut sim = Simulator::new(seed);
    let handle = str_ring::build(config, board, &mut sim)?;
    let capacity = expected_transitions(periods + WARMUP_PERIODS + 2);
    for &net in handle.nets() {
        sim.watch_with_capacity(net, capacity)?;
    }
    // Mode diagnosis is this runner's purpose, so the Eq. 1 burst
    // prediction (SL012) is not a finding here — Fig. 5 and the mode
    // map deliberately provoke the burst regime. Structural findings
    // still apply.
    let mut report = sim.lint_netlist();
    report.extend(lint::verify_built_str(&sim, &handle));
    report.extend(
        lint::verify_str_config(config, board)
            .into_iter()
            .filter(|d| d.code != strent_sim::LintCode::BurstModePredicted)
            .collect(),
    );
    lint::enforce(&report)?;
    let expected = analytic::str_period_ps(config, board);
    let warmup = WARMUP_PERIODS;
    run_to_periods(&mut sim, handle.output(), expected, periods, warmup)?;
    let trace = sim.trace(handle.output()).expect("watched");
    let mut run = RingRun::from_trace(trace, warmup, periods)?;
    run.absorb_stats(sim.stats());
    let stage_traces: Vec<Trace> = handle
        .nets()
        .iter()
        .map(|&net| sim.trace(net).expect("watched").clone())
        .collect();
    Ok(StrFullRun {
        run,
        stage_traces,
        end_time: sim.now(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_device::Technology;

    fn board() -> Board {
        Board::new(Technology::cyclone_iii(), 0, 7)
    }

    #[test]
    fn iro_run_collects_requested_periods() {
        let config = IroConfig::new(5).expect("valid");
        let run = run_iro(&config, &board(), 1, 300).expect("oscillates");
        assert_eq!(run.periods_ps.len(), 300);
        assert_eq!(run.half_periods_ps.len(), 600);
        let predicted = analytic::iro_frequency_mhz(&config, &board());
        assert!(
            (run.frequency_mhz / predicted - 1.0).abs() < 0.02,
            "sim {} vs analytic {predicted}",
            run.frequency_mhz
        );
    }

    #[test]
    fn str_run_matches_analytic_frequency() {
        let config = StrConfig::new(16, 8).expect("valid");
        let run = run_str(&config, &board(), 1, 300).expect("oscillates");
        assert_eq!(run.periods_ps.len(), 300);
        let predicted = analytic::str_frequency_mhz(&config, &board());
        assert!(
            (run.frequency_mhz / predicted - 1.0).abs() < 0.03,
            "sim {} vs analytic {predicted}",
            run.frequency_mhz
        );
    }

    #[test]
    fn full_run_records_every_stage() {
        let config = StrConfig::new(8, 4).expect("valid");
        let full = run_str_full(&config, &board(), 2, 100).expect("oscillates");
        assert_eq!(full.stage_traces.len(), 8);
        for trace in &full.stage_traces {
            assert!(trace.len() > 100, "every stage toggles");
        }
        assert!(full.end_time > Time::ZERO);
    }

    #[test]
    fn runs_are_deterministic() {
        let config = StrConfig::new(12, 6).expect("valid");
        let a = run_str(&config, &board(), 9, 200).expect("oscillates");
        let b = run_str(&config, &board(), 9, 200).expect("oscillates");
        assert_eq!(a, b);
        let c = run_str(&config, &board(), 10, 200).expect("oscillates");
        assert_ne!(a.periods_ps, c.periods_ps, "different seed, different jitter");
    }
}
