//! Error type for the ring models.

use std::error::Error;
use std::fmt;

use strent_sim::{Diagnostic, LintCode, SimError};

/// Errors reported by ring construction and measurement.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RingError {
    /// A ring configuration violated the oscillation conditions
    /// (Sec. II-C.2 of the paper: `L >= 3`, `NB >= 1`, `NT` even and
    /// positive for STRs; `L >= 1` for IROs).
    InvalidConfig(String),
    /// The ring stopped producing transitions (deadlock or dead config).
    NotOscillating {
        /// Transitions observed before the ring went quiet.
        observed_transitions: usize,
    },
    /// The simulation horizon was reached before enough periods were
    /// collected.
    HorizonExceeded {
        /// Periods collected so far.
        collected: usize,
        /// Periods requested.
        requested: usize,
    },
    /// An underlying simulator error.
    Sim(SimError),
    /// The pre-simulation static verifier rejected the netlist or
    /// configuration under the deny policy (see [`crate::lint`]).
    Lint(Vec<Diagnostic>),
    /// A statistical computation over measured series failed (the
    /// differential scenario runs lock-in detection and jitter
    /// measurements as part of the run).
    Analysis(strent_analysis::AnalysisError),
}

impl RingError {
    /// The `SL0xx` diagnostic view of this error: lint rejections carry
    /// their findings verbatim, and configuration rejections surface as
    /// an `SL010` diagnostic (so every typed validation failure has a
    /// stable machine-readable code).
    #[must_use]
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        match self {
            RingError::Lint(diagnostics) => diagnostics.clone(),
            RingError::InvalidConfig(msg) => vec![Diagnostic::new(
                LintCode::InvalidRingConfig,
                "ring config",
                msg.clone(),
            )],
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::InvalidConfig(msg) => write!(f, "invalid ring configuration: {msg}"),
            RingError::NotOscillating {
                observed_transitions,
            } => write!(
                f,
                "ring stopped oscillating after {observed_transitions} transitions"
            ),
            RingError::HorizonExceeded {
                collected,
                requested,
            } => write!(
                f,
                "simulation horizon reached with {collected}/{requested} periods"
            ),
            RingError::Sim(e) => write!(f, "simulator error: {e}"),
            RingError::Lint(diagnostics) => {
                write!(
                    f,
                    "static verification failed with {} finding(s):",
                    diagnostics.len()
                )?;
                for d in diagnostics {
                    write!(f, " {d};")?;
                }
                Ok(())
            }
            RingError::Analysis(e) => write!(f, "measurement analysis failed: {e}"),
        }
    }
}

impl Error for RingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RingError::Sim(e) => Some(e),
            RingError::Analysis(e) => Some(e),
            _ => None,
        }
    }
}

impl From<strent_analysis::AnalysisError> for RingError {
    fn from(e: strent_analysis::AnalysisError) -> Self {
        RingError::Analysis(e)
    }
}

impl From<SimError> for RingError {
    fn from(e: SimError) -> Self {
        RingError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(RingError::InvalidConfig("NT must be even".into())
            .to_string()
            .contains("NT"));
        assert!(RingError::NotOscillating {
            observed_transitions: 4
        }
        .to_string()
        .contains('4'));
        assert!(RingError::HorizonExceeded {
            collected: 10,
            requested: 100
        }
        .to_string()
        .contains("10/100"));
        let wrapped = RingError::from(SimError::InvalidDelay(-1.0));
        assert!(wrapped.to_string().contains("simulator"));
        assert!(Error::source(&wrapped).is_some());
        let lint = RingError::Lint(vec![Diagnostic::new(
            LintCode::OrphanNet,
            "net 3",
            "dangling",
        )]);
        let text = lint.to_string();
        assert!(text.contains("1 finding"), "{text}");
        assert!(text.contains("SL001"), "{text}");
    }

    #[test]
    fn errors_surface_as_sl_diagnostics() {
        let invalid = RingError::InvalidConfig("NT must be even".into());
        let diags = invalid.diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::InvalidRingConfig);
        assert_eq!(diags[0].code.code(), "SL010");
        assert!(diags[0].message.contains("NT"));
        let lint = RingError::Lint(vec![Diagnostic::new(
            LintCode::DividerUnreachable,
            "divider(n=4)",
            "input is not a ring net",
        )]);
        assert_eq!(lint.diagnostics()[0].code.code(), "SL014");
        assert!(
            RingError::NotOscillating {
                observed_transitions: 0
            }
            .diagnostics()
            .is_empty(),
            "runtime failures are not static findings"
        );
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<RingError>();
    }
}
