//! Error type for the ring models.

use std::error::Error;
use std::fmt;

use strent_sim::SimError;

/// Errors reported by ring construction and measurement.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RingError {
    /// A ring configuration violated the oscillation conditions
    /// (Sec. II-C.2 of the paper: `L >= 3`, `NB >= 1`, `NT` even and
    /// positive for STRs; `L >= 1` for IROs).
    InvalidConfig(String),
    /// The ring stopped producing transitions (deadlock or dead config).
    NotOscillating {
        /// Transitions observed before the ring went quiet.
        observed_transitions: usize,
    },
    /// The simulation horizon was reached before enough periods were
    /// collected.
    HorizonExceeded {
        /// Periods collected so far.
        collected: usize,
        /// Periods requested.
        requested: usize,
    },
    /// An underlying simulator error.
    Sim(SimError),
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::InvalidConfig(msg) => write!(f, "invalid ring configuration: {msg}"),
            RingError::NotOscillating {
                observed_transitions,
            } => write!(
                f,
                "ring stopped oscillating after {observed_transitions} transitions"
            ),
            RingError::HorizonExceeded {
                collected,
                requested,
            } => write!(
                f,
                "simulation horizon reached with {collected}/{requested} periods"
            ),
            RingError::Sim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl Error for RingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RingError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for RingError {
    fn from(e: SimError) -> Self {
        RingError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(RingError::InvalidConfig("NT must be even".into())
            .to_string()
            .contains("NT"));
        assert!(RingError::NotOscillating {
            observed_transitions: 4
        }
        .to_string()
        .contains('4'));
        assert!(RingError::HorizonExceeded {
            collected: 10,
            requested: 100
        }
        .to_string()
        .contains("10/100"));
        let wrapped = RingError::from(SimError::InvalidDelay(-1.0));
        assert!(wrapped.to_string().contains("simulator"));
        assert!(Error::source(&wrapped).is_some());
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<RingError>();
    }
}
