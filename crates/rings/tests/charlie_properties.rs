//! Property-based tests of the Charlie-effect stage model (Eq. 3) and
//! of the jitter-accumulation shapes it produces at ring level: the
//! paper's Eq. 4 (STR period jitter stays a stage-local `~sqrt(2)
//! sigma_g`) against Eq. 5 (IRO period jitter accumulates over the
//! whole loop as `sqrt(2L) sigma_g`).

use proptest::prelude::*;

use strent_device::{Board, Technology};
use strent_rings::{measure, CharlieModel, IroConfig, StrConfig};

/// Arbitrary valid `(Ds, Dcharlie)` model parameters, ps.
fn model_params() -> impl Strategy<Value = (f64, f64)> {
    (10.0f64..600.0, 0.0f64..300.0)
}

/// A board with white phase noise only — no process variation — so the
/// ring-level properties isolate the Eq. 4 / Eq. 5 jitter shapes.
fn jitter_board() -> Board {
    Board::new(
        Technology::cyclone_iii()
            .with_sigma_intra(0.0)
            .with_sigma_inter(0.0),
        0,
        1,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Eq. 3 is an even function of the input separation.
    #[test]
    fn charlie_delay_is_symmetric(
        (ds, dch) in model_params(),
        s in -5_000.0f64..5_000.0,
    ) {
        let model = CharlieModel::new(ds, dch).expect("strategy yields valid params");
        prop_assert_eq!(model.charlie_delay(s), model.charlie_delay(-s));
    }

    /// Eq. 3 grows monotonically in `|s|`: the Charlie smoothing is
    /// strongest (delay largest relative to `Ds + |s|`) at simultaneous
    /// inputs, and the curve never dips as the inputs separate.
    #[test]
    fn charlie_delay_is_monotone_in_separation(
        (ds, dch) in model_params(),
        lo in 0.0f64..4_000.0,
        step in 0.001f64..1_000.0,
    ) {
        let model = CharlieModel::new(ds, dch).expect("valid params");
        prop_assert!(model.charlie_delay(lo + step) > model.charlie_delay(lo));
    }

    /// Eq. 3 is pinched between its two asymptotic regimes:
    /// `max(Ds + Dcharlie, Ds + |s|) <= charlie(s) <= Ds + Dcharlie + |s|`,
    /// and the curve is 1-Lipschitz in `s` (slope never exceeds the
    /// pure-causality slope of 1).
    #[test]
    fn charlie_delay_is_bounded_and_lipschitz(
        (ds, dch) in model_params(),
        a in -4_000.0f64..4_000.0,
        b in -4_000.0f64..4_000.0,
    ) {
        let model = CharlieModel::new(ds, dch).expect("valid params");
        for s in [a, b] {
            let d = model.charlie_delay(s);
            prop_assert!(d >= (ds + dch).max(ds + s.abs()) - 1e-9);
            prop_assert!(d <= ds + dch + s.abs() + 1e-9);
        }
        prop_assert!(
            (model.charlie_delay(a) - model.charlie_delay(b)).abs()
                <= (a - b).abs() + 1e-9
        );
    }

    /// The output-event form of Eq. 3 is causal (never fires before the
    /// later enabling input plus the static delay) and symmetric under
    /// swapping the forward and reverse inputs.
    #[test]
    fn output_time_is_causal_and_input_symmetric(
        (ds, dch) in model_params(),
        t_fwd in 0.0f64..100_000.0,
        t_rev in 0.0f64..100_000.0,
    ) {
        let model = CharlieModel::new(ds, dch).expect("valid params");
        let t = model.output_time(t_fwd, t_rev);
        prop_assert!(t >= t_fwd.max(t_rev) + ds - 1e-9);
        prop_assert_eq!(t, model.output_time(t_rev, t_fwd));
    }

    /// Drafting only ever shortens the delay, by at most its magnitude,
    /// and the reduction decays monotonically with the elapsed time.
    #[test]
    fn drafting_reduction_is_bounded_and_decaying(
        magnitude in 0.0f64..90.0,
        tau in 1.0f64..500.0,
        elapsed in 0.0f64..2_000.0,
        step in 0.0f64..2_000.0,
    ) {
        let model = CharlieModel::new(100.0, 20.0)
            .expect("valid params")
            .with_drafting(magnitude, tau)
            .expect("magnitude below Ds");
        let now = model.drafting_reduction(elapsed);
        prop_assert!((0.0..=magnitude).contains(&now));
        prop_assert!(model.drafting_reduction(elapsed + step) <= now + 1e-12);
    }
}

proptest! {
    // Each case runs two full event-driven simulations; keep the count
    // low, as tests/ring_properties.rs does at workspace root.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The Eq. 4 vs Eq. 5 shape at ring level: for any (even) length,
    /// the IRO's period jitter accumulates over the whole loop,
    /// `sigma ~ sqrt(2L) sigma_g`, while the balanced STR's stays a
    /// stage-local quantity of order `sqrt(2) sigma_g`, independent of
    /// `L` — so from modest lengths on the IRO is strictly noisier.
    #[test]
    fn str_jitter_stays_local_while_iro_jitter_accumulates(pairs in 2usize..=8) {
        // `tokens = L/2` must itself be even, so lengths step by 4.
        let half = 2 * pairs;
        let length = 2 * half;
        let board = jitter_board();
        let sigma_g = board.technology().sigma_g_ps();

        let iro = IroConfig::new(length).expect("positive length");
        let iro_run = measure::run_iro(&iro, &board, 5, 400).expect("oscillates");
        let iro_sigma =
            strent_analysis::jitter::period_jitter(&iro_run.periods_ps).expect("enough");

        let str_config = StrConfig::new(length, half).expect("balanced counts");
        let str_run = measure::run_str(&str_config, &board, 5, 400).expect("oscillates");
        let str_sigma =
            strent_analysis::jitter::period_jitter(&str_run.periods_ps).expect("enough");

        // Eq. 5: the IRO accumulates 2L independent crossings per period.
        let iro_predicted = (2.0 * length as f64).sqrt() * sigma_g;
        prop_assert!(
            (iro_sigma / iro_predicted - 1.0).abs() < 0.25,
            "L={length}: IRO sigma {iro_sigma} vs sqrt(2L) sigma_g {iro_predicted}"
        );

        // Eq. 4 shape: the STR's jitter is a bounded multiple of the
        // stage-local sqrt(2) sigma_g, with no sqrt(L) growth.
        let str_scale = std::f64::consts::SQRT_2 * sigma_g;
        prop_assert!(
            str_sigma > 0.5 * str_scale && str_sigma < 2.5 * str_scale,
            "L={length}: STR sigma {str_sigma} vs sqrt(2) sigma_g {str_scale}"
        );

        // The comparison the paper draws from the two equations: at any
        // length in this band the IRO is already the noisier ring.
        prop_assert!(
            str_sigma < iro_sigma,
            "L={length}: STR {str_sigma} should undercut IRO {iro_sigma}"
        );
    }
}
