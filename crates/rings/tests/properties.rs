//! Property-based tests for the ring models: the token/bubble algebra's
//! invariants and the Charlie model's structural guarantees.

use proptest::prelude::*;

use strent_rings::{CharlieModel, StrState};

/// Valid `(length, token count)` pairs for a self-timed ring.
fn ring_counts() -> impl Strategy<Value = (usize, usize)> {
    (3usize..64).prop_flat_map(|len| {
        let max_pairs = (len - 1) / 2;
        (Just(len), 1..=max_pairs.max(1)).prop_map(|(len, pairs)| (len, 2 * pairs))
    })
}

proptest! {
    /// Token and bubble counts always satisfy the construction and the
    /// oscillation conditions.
    #[test]
    fn construction_counts_are_exact((len, nt) in ring_counts()) {
        for state in [
            StrState::with_spread_tokens(len, nt).expect("valid"),
            StrState::with_clustered_tokens(len, nt).expect("valid"),
        ] {
            prop_assert_eq!(state.token_count(), nt);
            prop_assert_eq!(state.bubble_count(), len - nt);
            prop_assert!(state.satisfies_oscillation_conditions());
            prop_assert_eq!(state.occupancy_string().len(), len);
        }
    }

    /// Tokens are conserved under ANY firing schedule, and a live ring
    /// never deadlocks (some stage is always enabled).
    #[test]
    fn token_conservation_under_arbitrary_schedules(
        (len, nt) in ring_counts(),
        schedule in prop::collection::vec(any::<usize>(), 1..300),
    ) {
        let mut state = StrState::with_spread_tokens(len, nt).expect("valid");
        for pick in schedule {
            let enabled = state.enabled_stages();
            prop_assert!(!enabled.is_empty(), "deadlock in a live ring");
            state.fire(enabled[pick % enabled.len()]).expect("enabled");
            prop_assert_eq!(state.token_count(), nt, "token conservation");
        }
    }

    /// Firing a stage moves exactly one token one stage forward.
    #[test]
    fn firing_advances_one_token((len, nt) in ring_counts(), pick in any::<usize>()) {
        let mut state = StrState::with_clustered_tokens(len, nt).expect("valid");
        let enabled = state.enabled_stages();
        prop_assume!(!enabled.is_empty());
        let stage = enabled[pick % enabled.len()];
        let before = state.token_positions();
        state.fire(stage).expect("enabled");
        let after = state.token_positions();
        // Exactly the fired stage lost its token; stage+1 gained one.
        prop_assert!(before.contains(&stage));
        prop_assert!(!after.contains(&stage));
        prop_assert!(after.contains(&((stage + 1) % len)));
        prop_assert_eq!(after.len(), before.len());
    }

    /// Enabled stages are never adjacent (the structural fact that lets
    /// the event-driven simulator skip cancellation logic).
    #[test]
    fn enabled_stages_are_never_adjacent(
        (len, nt) in ring_counts(),
        schedule in prop::collection::vec(any::<usize>(), 0..100),
    ) {
        let mut state = StrState::with_spread_tokens(len, nt).expect("valid");
        for pick in schedule {
            let enabled = state.enabled_stages();
            for &i in &enabled {
                prop_assert!(!enabled.contains(&((i + 1) % len)), "adjacent enabled stages");
            }
            if !enabled.is_empty() {
                state.fire(enabled[pick % enabled.len()]).expect("enabled");
            }
        }
    }

    /// The Charlie delay (Eq. 3) is even, minimized at s = 0, monotone
    /// in |s|, and asymptotically linear.
    #[test]
    fn charlie_delay_shape(
        ds in 10.0_f64..1000.0,
        dch in 0.0_f64..500.0,
        s in -5_000.0_f64..5_000.0,
    ) {
        let model = CharlieModel::new(ds, dch).expect("valid");
        prop_assert!((model.charlie_delay(s) - model.charlie_delay(-s)).abs() < 1e-9);
        prop_assert!(model.charlie_delay(s) >= model.charlie_delay(0.0) - 1e-9);
        prop_assert!(model.charlie_delay(s) >= ds + s.abs() - 1e-9);
        prop_assert!(model.charlie_delay(s) <= ds + dch + s.abs() + 1e-9);
    }

    /// The output-time form is causal and symmetric in its inputs.
    #[test]
    fn charlie_output_time_is_causal(
        ds in 10.0_f64..1000.0,
        dch in 0.0_f64..500.0,
        t1 in 0.0_f64..1e6,
        t2 in 0.0_f64..1e6,
    ) {
        let model = CharlieModel::new(ds, dch).expect("valid");
        let out = model.output_time(t1, t2);
        prop_assert!(out >= t1.max(t2) + ds - 1e-6, "causality");
        prop_assert!((out - model.output_time(t2, t1)).abs() < 1e-6, "symmetry");
    }

    /// Invalid configurations are rejected exhaustively.
    #[test]
    fn invalid_counts_rejected(len in 3usize..64, odd in 0usize..31) {
        let nt = 2 * odd + 1; // always odd
        prop_assert!(StrState::with_spread_tokens(len, nt).is_err());
        prop_assert!(StrState::with_spread_tokens(len, 0).is_err());
        prop_assert!(StrState::with_spread_tokens(len, len).is_err());
    }
}
