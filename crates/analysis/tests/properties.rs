//! Property-based tests for the analysis toolkit.

use proptest::prelude::*;

use strent_analysis::special::{erf, erfc, gamma_p, gamma_q, normal_cdf, normal_quantile};
use strent_analysis::{fit, jitter, stats, Histogram, Summary};

fn finite_data(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6_f64..1e6, min_len..200)
}

proptest! {
    /// erf is odd and erfc complements it everywhere.
    #[test]
    fn erf_identities(x in -6.0_f64..6.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        prop_assert!(erf(x) >= -1.0 && erf(x) <= 1.0);
    }

    /// The normal CDF is monotone and its quantile inverts it.
    #[test]
    fn normal_cdf_quantile_roundtrip(p in 1e-9_f64..=0.999_999_999) {
        let x = normal_quantile(p);
        prop_assert!((normal_cdf(x) - p).abs() < 1e-8);
    }

    /// P + Q = 1 for the regularized incomplete gamma functions.
    #[test]
    fn incomplete_gamma_partition(a in 0.1_f64..50.0, x in 0.0_f64..100.0) {
        let p = gamma_p(a, x);
        let q = gamma_q(a, x);
        prop_assert!((p + q - 1.0).abs() < 1e-9, "a={a} x={x}: p+q={}", p + q);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
    }

    /// Welford summary matches the naive two-pass computation.
    #[test]
    fn summary_matches_naive(data in finite_data(2)) {
        let s = Summary::from_slice(&data);
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        prop_assert_eq!(s.count(), data.len() as u64);
        prop_assert!(s.min() <= s.mean() + 1e-9 && s.mean() <= s.max() + 1e-9);
    }

    /// Merging split summaries equals the bulk summary.
    #[test]
    fn summary_merge_associativity(data in finite_data(4), cut in 1_usize..3) {
        let k = (data.len() * cut) / 4;
        prop_assume!(k > 0 && k < data.len());
        let bulk = Summary::from_slice(&data);
        let mut merged = Summary::from_slice(&data[..k]);
        merged.merge(&Summary::from_slice(&data[k..]));
        prop_assert!((merged.mean() - bulk.mean()).abs() <= 1e-6 * (1.0 + bulk.mean().abs()));
        prop_assert!((merged.variance() - bulk.variance()).abs()
            <= 1e-5 * (1.0 + bulk.variance().abs()));
    }

    /// A histogram never loses samples and densities are non-negative.
    #[test]
    fn histogram_preserves_total(data in finite_data(2), bins in 1_usize..64) {
        prop_assume!(data.iter().copied().fold(f64::INFINITY, f64::min)
            != data.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        let hist = Histogram::from_data(&data, bins).expect("valid data");
        prop_assert_eq!(hist.total(), data.len() as u64);
        prop_assert!(hist.densities().iter().all(|&d| d >= 0.0));
        prop_assert_eq!(hist.counts().len(), bins);
    }

    /// Linear fit exactly recovers a noiseless line.
    #[test]
    fn linear_fit_recovers_line(
        a in -100.0_f64..100.0,
        b in -100.0_f64..100.0,
        xs in prop::collection::vec(-1e3_f64..1e3, 3..50),
    ) {
        let spread = xs.iter().copied().fold(f64::INFINITY, f64::min)
            != xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assume!(spread);
        let ys: Vec<f64> = xs.iter().map(|&x| a + b * x).collect();
        let f = fit::linear(&xs, &ys).expect("valid");
        prop_assert!((f.intercept - a).abs() < 1e-6 * (1.0 + a.abs()));
        prop_assert!((f.slope - b).abs() < 1e-6 * (1.0 + b.abs()));
    }

    /// The Charlie hyperbola fit inverts its own forward model.
    #[test]
    fn charlie_fit_inverts_forward_model(ds in 50.0_f64..500.0, dch in 5.0_f64..300.0) {
        let s: Vec<f64> = (-15..=15).map(|i| f64::from(i) * 20.0).collect();
        let d: Vec<f64> = s.iter().map(|&si| ds + (dch * dch + si * si).sqrt()).collect();
        let f = fit::charlie_hyperbola(&s, &d).expect("valid");
        prop_assert!((f.static_delay_ps - ds).abs() < 1e-4, "Ds {}", f.static_delay_ps);
        prop_assert!((f.charlie_delay_ps - dch).abs() < 1e-3, "Dch {}", f.charlie_delay_ps);
    }

    /// Jitter is translation invariant and scale equivariant.
    #[test]
    fn jitter_affine_behaviour(
        data in prop::collection::vec(10.0_f64..1e4, 3..100),
        shift in -1e3_f64..1e3,
        scale in 0.1_f64..10.0,
    ) {
        let sigma = jitter::period_jitter(&data).expect("valid");
        let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
        let scaled: Vec<f64> = data.iter().map(|x| x * scale).collect();
        let s_shift = jitter::period_jitter(&shifted).expect("valid");
        let s_scale = jitter::period_jitter(&scaled).expect("valid");
        prop_assert!((s_shift - sigma).abs() < 1e-6 * (1.0 + sigma));
        prop_assert!((s_scale - sigma * scale).abs() < 1e-6 * (1.0 + sigma * scale));
    }

    /// Relative standard deviation is scale invariant.
    #[test]
    fn sigma_rel_scale_invariance(
        data in prop::collection::vec(100.0_f64..1e4, 2..50),
        scale in 0.5_f64..20.0,
    ) {
        let base = stats::relative_std_dev(&data).expect("valid");
        let scaled: Vec<f64> = data.iter().map(|x| x * scale).collect();
        let after = stats::relative_std_dev(&scaled).expect("valid");
        prop_assert!((base - after).abs() < 1e-9 * (1.0 + base));
    }
}
