//! Golden-vector tests: small fixed inputs with externally derived
//! expected outputs, exact where the arithmetic is closed-form.
//!
//! Two kinds of vectors live here:
//!
//! * **hand-computed** — moments, quantiles, Allan variances and the
//!   Jarque–Bera statistic of tiny integer datasets, checked against
//!   paper-and-pencil arithmetic (exact or 1e-9);
//! * **frozen references** — EDF/goodness-of-fit statistics whose
//!   closed form is impractical by hand; their values were validated
//!   once for plausibility (clean Gaussian accepted, uniform ramp
//!   penalized, textbook chi-square CI factors) and are pinned tightly
//!   so refactors of the numerics cannot drift silently.

use strent_analysis::allan::{allan_curve, allan_deviation, allan_variance};
use strent_analysis::normality::{anderson_darling, chi_square_gof, jarque_bera};
use strent_analysis::special::normal_quantile;
use strent_analysis::stats::{
    self, median, percentile, std_dev_confidence, Summary,
};

/// The classic eight-point example: mean 5, population sigma exactly 2.
const EIGHT: [f64; 8] = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];

/// A stratified standard-normal sample (inverse-CDF of midpoints) —
/// deterministic, as Gaussian as 200 points can be.
fn stratified_gaussian() -> Vec<f64> {
    (0..200)
        .map(|i| {
            let u = (i as f64 + 0.5) / 200.0;
            10.0 + 2.0 * normal_quantile(u)
        })
        .collect()
}

#[test]
fn summary_moments_match_hand_arithmetic() {
    let s = Summary::from_slice(&EIGHT);
    assert_eq!(s.count(), 8);
    assert_eq!(s.mean(), 5.0);
    // m2 = 32: sample variance 32/7, population variance exactly 4.
    assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    // Welford accumulation leaves ~1 ulp of rounding on the moments.
    assert!((s.population_variance() - 4.0).abs() < 1e-12);
    assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
    // m3 = 42: g1 = sqrt(8) * 42 / 32^1.5 = 42/64 exactly.
    assert!((s.skewness() - 42.0 / 64.0).abs() < 1e-12);
    // m4 = 356: g2 = 8 * 356 / 32^2 - 3 = -0.21875 exactly.
    assert!((s.excess_kurtosis() + 0.21875).abs() < 1e-12);
    assert_eq!(s.min(), 2.0);
    assert_eq!(s.max(), 9.0);
    let rel = s.relative_std_dev().expect("nonzero mean");
    assert!((rel - (32.0f64 / 7.0).sqrt() / 5.0).abs() < 1e-12);
}

#[test]
fn slice_helpers_agree_with_the_summary() {
    assert_eq!(stats::mean(&EIGHT).expect("non-empty"), 5.0);
    assert!((stats::std_dev(&EIGHT).expect("enough") - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    assert!(
        (stats::relative_std_dev(&EIGHT).expect("enough") - (32.0f64 / 7.0).sqrt() / 5.0).abs()
            < 1e-12
    );
}

#[test]
fn symmetric_ramp_has_zero_skew_and_known_kurtosis() {
    // 1..5: m2 = 10, m4 = 34 -> g2 = 5*34/100 - 3 = -1.3 exactly.
    let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
    assert_eq!(s.skewness(), 0.0);
    assert!((s.excess_kurtosis() + 1.3).abs() < 1e-12);
}

#[test]
fn percentiles_interpolate_linearly() {
    let data = [15.0, 20.0, 35.0, 40.0, 50.0];
    // position = 0.4 * 4 = 1.6 -> 20 + 0.6 * (35 - 20) = 29.
    assert!((percentile(&data, 0.4).expect("valid") - 29.0).abs() < 1e-12);
    assert_eq!(median(&data).expect("valid"), 35.0);
    assert_eq!(percentile(&data, 0.0).expect("valid"), 15.0);
    assert_eq!(percentile(&data, 1.0).expect("valid"), 50.0);
    // Even-length median interpolates halfway.
    assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]).expect("valid"), 2.5);
}

#[test]
fn std_dev_confidence_matches_chi_square_tables() {
    // s = sqrt(10), df = 4, 95%: chi2 quantiles 0.4844 and 11.1433 give
    // the textbook interval (s*0.5992, s*2.8735).
    let (lo, hi) = std_dev_confidence(&[10.0, 12.0, 14.0, 16.0, 18.0], 0.95).expect("valid");
    assert!((lo - 1.894_625_341).abs() < 2e-3, "lower {lo}");
    assert!((hi - 9.086_980_787).abs() < 1e-2, "upper {hi}");
    let s = 10.0f64.sqrt();
    assert!(lo < s && s < hi, "interval must contain the point estimate");
}

#[test]
fn parallel_merge_equals_sequential_summary() {
    let (a, b) = EIGHT.split_at(3);
    let mut merged = Summary::from_slice(a);
    merged.merge(&Summary::from_slice(b));
    let whole = Summary::from_slice(&EIGHT);
    assert_eq!(merged.count(), whole.count());
    assert!((merged.mean() - whole.mean()).abs() < 1e-12);
    assert!((merged.variance() - whole.variance()).abs() < 1e-12);
    assert!((merged.skewness() - whole.skewness()).abs() < 1e-12);
    assert!((merged.excess_kurtosis() - whole.excess_kurtosis()).abs() < 1e-12);
    assert_eq!(merged.min(), whole.min());
    assert_eq!(merged.max(), whole.max());
}

#[test]
fn allan_variance_of_a_ramp_is_closed_form() {
    // Successive m=1 means of [1,2,3,4] differ by 1: AVAR = 3/(2*3) = 1/2.
    let ramp = [1.0, 2.0, 3.0, 4.0];
    assert!((allan_variance(&ramp, 1).expect("valid") - 0.5).abs() < 1e-12);
    assert!((allan_deviation(&ramp, 1).expect("valid") - 0.5f64.sqrt()).abs() < 1e-12);
    // m=2 means [1.5, 3.5]: one squared difference of 4 -> AVAR = 2.
    assert!((allan_variance(&ramp, 2).expect("valid") - 2.0).abs() < 1e-12);
}

#[test]
fn allan_curve_doubles_m_with_exact_ramp_values() {
    // 1..8: AVAR(1) = 1/2, AVAR(2) = 2, AVAR(4) = 8 (pure drift slope).
    let ramp: Vec<f64> = (1..=8).map(f64::from).collect();
    let curve = allan_curve(&ramp, 2).expect("valid");
    let expected = [(1usize, 0.5f64), (2, 2.0), (4, 8.0)];
    assert_eq!(curve.len(), expected.len());
    for ((m, adev), (em, evar)) in curve.into_iter().zip(expected) {
        assert_eq!(m, em);
        assert!((adev - evar.sqrt()).abs() < 1e-12, "m={m}: {adev}");
    }
}

#[test]
fn jarque_bera_statistic_is_exact_on_a_replicated_ramp() {
    // Four copies of 1..5: S = 0, g2 = -1.3 ->
    // JB = 20/6 * (1.3^2 / 4) = 1.408333..., p = exp(-JB/2).
    let data: Vec<f64> = (0..20).map(|i| f64::from(i % 5 + 1)).collect();
    let r = jarque_bera(&data).expect("valid");
    assert!((r.statistic - 1.408_333_333_333).abs() < 1e-9, "{}", r.statistic);
    assert!((r.p_value - (-r.statistic / 2.0).exp()).abs() < 1e-9);
    assert!((r.p_value - 0.494_520_503).abs() < 1e-6);
}

#[test]
fn frozen_normality_references_hold() {
    // Validated once (clean Gaussian accepted with p ~ 1, uniform ramp
    // heavily penalized) and pinned against numeric drift.
    let gauss = stratified_gaussian();
    let ad = anderson_darling(&gauss).expect("valid");
    assert!((ad.statistic - 0.006_376_312).abs() < 1e-6, "{}", ad.statistic);
    assert!(ad.p_value > 0.999);
    let cs = chi_square_gof(&gauss, 12).expect("valid");
    assert!((cs.statistic - 0.056_272_577).abs() < 1e-6, "{}", cs.statistic);
    assert!(cs.p_value > 0.999);

    let ramp: Vec<f64> = (0..50).map(f64::from).collect();
    let ad_ramp = anderson_darling(&ramp).expect("valid");
    assert!((ad_ramp.statistic - 0.542_998_793).abs() < 1e-6, "{}", ad_ramp.statistic);
    assert!((ad_ramp.p_value - 0.163_215_862).abs() < 1e-6, "{}", ad_ramp.p_value);
    assert!(ad.statistic < ad_ramp.statistic, "Gaussian must score cleaner");
}
