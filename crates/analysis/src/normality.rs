//! Normality tests.
//!
//! Fig. 9 of the paper shows that both STR and IRO period jitter is
//! Gaussian and the divider method (Sec. V-D.2) *requires* checking that
//! the divided-clock cycle-to-cycle histogram is normal before applying
//! Eq. 6. Three complementary tests are provided:
//!
//! * [`chi_square_gof`] — binned goodness-of-fit against a fitted normal;
//! * [`jarque_bera`] — moment-based (skewness/kurtosis) test;
//! * [`anderson_darling`] — EDF-based test, most sensitive in the tails.

use serde::{Deserialize, Serialize};

use crate::error::{require_finite, AnalysisError};
use crate::histogram::Histogram;
use crate::special::{chi_square_sf, normal_cdf};
use crate::stats::Summary;

/// Outcome of a statistical hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestResult {
    /// The test statistic.
    pub statistic: f64,
    /// The p-value under the null hypothesis (here: data is normal).
    pub p_value: f64,
}

impl TestResult {
    /// Whether the null hypothesis survives at significance `alpha`.
    #[must_use]
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// Chi-square goodness-of-fit of the data against `N(mean, sigma^2)`
/// fitted from the data itself.
///
/// Bins with expected count below 5 are merged into their neighbour
/// (standard practice); degrees of freedom are `bins - 3` (two estimated
/// parameters).
///
/// # Errors
///
/// Returns an error for fewer than 25 samples, non-finite data, zero
/// spread, or if merging leaves fewer than 4 bins.
pub fn chi_square_gof(data: &[f64], bins: usize) -> Result<TestResult, AnalysisError> {
    require_finite(data, 25)?;
    let summary = Summary::from_slice(data);
    let sigma = summary.std_dev();
    if sigma == 0.0 {
        return Err(AnalysisError::DegenerateData("zero variance"));
    }
    let hist = Histogram::from_data(data, bins)?;
    let expected = hist.expected_gaussian_counts(summary.mean(), sigma);
    let observed: Vec<f64> = hist.counts().iter().map(|&c| c as f64).collect();

    // Merge adjacent bins until every expected count is >= 5.
    let mut merged_obs = Vec::new();
    let mut merged_exp = Vec::new();
    let mut acc_o = 0.0;
    let mut acc_e = 0.0;
    for (&o, &e) in observed.iter().zip(&expected) {
        acc_o += o;
        acc_e += e;
        if acc_e >= 5.0 {
            merged_obs.push(acc_o);
            merged_exp.push(acc_e);
            acc_o = 0.0;
            acc_e = 0.0;
        }
    }
    // Fold the tail into the last merged bin.
    if acc_e > 0.0 {
        if let (Some(o), Some(e)) = (merged_obs.last_mut(), merged_exp.last_mut()) {
            *o += acc_o;
            *e += acc_e;
        }
    }
    if merged_obs.len() < 4 {
        return Err(AnalysisError::NotEnoughData {
            needed: 4,
            got: merged_obs.len(),
        });
    }
    let statistic: f64 = merged_obs
        .iter()
        .zip(&merged_exp)
        .map(|(o, e)| (o - e) * (o - e) / e)
        .sum();
    let dof = u32::try_from(merged_obs.len() - 3).expect("bin count fits u32");
    Ok(TestResult {
        statistic,
        p_value: chi_square_sf(statistic, dof),
    })
}

/// Jarque–Bera normality test (`JB = n/6 (S^2 + K^2/4)`, chi-square with
/// 2 dof under the null).
///
/// # Errors
///
/// Returns an error for fewer than 20 samples, non-finite data or zero
/// variance.
pub fn jarque_bera(data: &[f64]) -> Result<TestResult, AnalysisError> {
    require_finite(data, 20)?;
    let s = Summary::from_slice(data);
    if s.variance() == 0.0 {
        return Err(AnalysisError::DegenerateData("zero variance"));
    }
    let n = data.len() as f64;
    let skew = s.skewness();
    let kurt = s.excess_kurtosis();
    let statistic = n / 6.0 * (skew * skew + kurt * kurt / 4.0);
    Ok(TestResult {
        statistic,
        p_value: chi_square_sf(statistic, 2),
    })
}

/// Anderson–Darling normality test (case 3: mean and variance estimated),
/// with the D'Agostino small-sample correction and p-value approximation.
///
/// # Errors
///
/// Returns an error for fewer than 8 samples, non-finite data or zero
/// variance.
pub fn anderson_darling(data: &[f64]) -> Result<TestResult, AnalysisError> {
    require_finite(data, 8)?;
    let s = Summary::from_slice(data);
    let sigma = s.std_dev();
    if sigma == 0.0 {
        return Err(AnalysisError::DegenerateData("zero variance"));
    }
    let mut z: Vec<f64> = data.iter().map(|&x| (x - s.mean()) / sigma).collect();
    z.sort_by(f64::total_cmp);
    let n = z.len();
    let nf = n as f64;
    let mut a2 = -nf;
    for i in 0..n {
        // Clamp CDF values away from 0/1 to keep the logs finite.
        let phi_i = normal_cdf(z[i]).clamp(1e-300, 1.0 - 1e-16);
        let phi_rev = normal_cdf(z[n - 1 - i]).clamp(1e-300, 1.0 - 1e-16);
        a2 -= (2.0 * (i as f64) + 1.0) / nf * (phi_i.ln() + (1.0 - phi_rev).ln());
    }
    // Case-3 small-sample adjustment.
    let a2_star = a2 * (1.0 + 0.75 / nf + 2.25 / (nf * nf));
    // D'Agostino (1986) p-value approximation for the adjusted statistic.
    let p = if a2_star >= 0.6 {
        (1.2937 - 5.709 * a2_star + 0.0186 * a2_star * a2_star).exp()
    } else if a2_star >= 0.34 {
        (0.9177 - 4.279 * a2_star - 1.38 * a2_star * a2_star).exp()
    } else if a2_star >= 0.2 {
        1.0 - (-8.318 + 42.796 * a2_star - 59.938 * a2_star * a2_star).exp()
    } else {
        1.0 - (-13.436 + 101.14 * a2_star - 223.73 * a2_star * a2_star).exp()
    };
    Ok(TestResult {
        statistic: a2_star,
        p_value: p.clamp(0.0, 1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-Gaussian samples via the normal quantile of a
    /// low-discrepancy sequence.
    fn gaussian_samples(n: usize, mean: f64, sigma: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                mean + sigma * crate::special::normal_quantile(u)
            })
            .collect()
    }

    fn uniform_samples(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64 / n as f64).collect()
    }

    /// Heavily bimodal samples: half at -3, half at +3 with tiny scatter.
    fn bimodal_samples(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let side = if i % 2 == 0 { -3.0 } else { 3.0 };
                side + (i as f64 % 7.0) * 0.01
            })
            .collect()
    }

    #[test]
    fn chi_square_accepts_gaussian_rejects_bimodal() {
        let good = chi_square_gof(&gaussian_samples(5000, 10.0, 2.0), 40).expect("valid");
        assert!(good.passes(0.01), "gaussian rejected: p={}", good.p_value);
        let bad = chi_square_gof(&bimodal_samples(5000), 40).expect("valid");
        assert!(!bad.passes(0.01), "bimodal accepted: p={}", bad.p_value);
    }

    #[test]
    fn jarque_bera_accepts_gaussian_rejects_uniform() {
        let good = jarque_bera(&gaussian_samples(5000, 0.0, 1.0)).expect("valid");
        assert!(good.passes(0.01), "gaussian rejected: p={}", good.p_value);
        // Uniform has kurtosis -1.2 -> decisively rejected.
        let bad = jarque_bera(&uniform_samples(5000)).expect("valid");
        assert!(!bad.passes(0.01), "uniform accepted: p={}", bad.p_value);
    }

    #[test]
    fn anderson_darling_accepts_gaussian_rejects_uniform() {
        let good = anderson_darling(&gaussian_samples(2000, 5.0, 0.5)).expect("valid");
        assert!(good.passes(0.01), "gaussian rejected: p={}", good.p_value);
        let bad = anderson_darling(&uniform_samples(2000)).expect("valid");
        assert!(!bad.passes(0.01), "uniform accepted: p={}", bad.p_value);
    }

    #[test]
    fn error_cases() {
        assert!(chi_square_gof(&[1.0; 10], 10).is_err());
        assert!(jarque_bera(&[1.0; 30]).is_err()); // zero variance
        assert!(anderson_darling(&[1.0, 2.0]).is_err()); // too few
        let nan = vec![f64::NAN; 100];
        assert!(jarque_bera(&nan).is_err());
    }

    #[test]
    fn test_result_threshold() {
        let r = TestResult {
            statistic: 1.0,
            p_value: 0.04,
        };
        assert!(r.passes(0.01));
        assert!(!r.passes(0.05));
    }
}
