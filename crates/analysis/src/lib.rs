//! # strent-analysis — jitter and frequency measurement toolkit
//!
//! The software counterpart of the paper's measurement bench (a LeCroy
//! WavePro 735 ZI and its statistics package): everything needed to turn a
//! series of edge timestamps or oscillation periods into the quantities
//! the paper reports.
//!
//! * [`stats`] — summary statistics (Welford), relative standard deviation;
//! * [`histogram`] — uniform-bin histograms (Fig. 9);
//! * [`special`] — special functions: `erf`, `ln_gamma`, incomplete gamma,
//!   normal quantile — the numeric substrate for p-values;
//! * [`normality`] — chi-square goodness-of-fit, Jarque–Bera and
//!   Anderson–Darling normality tests;
//! * [`fit`] — least-squares fits: linear, `c*sqrt(x)` (Fig. 11's jitter
//!   accumulation law) and the Charlie-diagram hyperbola;
//! * [`jitter`] — period jitter, cycle-to-cycle jitter, accumulated jitter;
//! * [`entropy`] — the bit-pattern model: min-entropy lower bounds as a
//!   function of the sampling ratio `sigma/T`;
//! * [`markov`] — order-`k` Markov min-entropy estimation over delivered
//!   bitstreams, with small-sample confidence haircuts;
//! * [`patterns`] — overlapping bit-pattern censuses: most-common
//!   pattern, direct pattern min-entropy, uniformity chi-square;
//! * [`divider`] — the paper's on-chip measurement method (Eq. 6):
//!   estimate `sigma_p` from the cycle-to-cycle jitter of a divided clock;
//! * [`allan`] — Allan variance of period series;
//! * [`spectrum`] — periodograms and single-tone (Goertzel) power, for
//!   spotting attack-injected spectral lines;
//! * [`frequency`] — frequency, normalized excursion (`dF`, Table I) and
//!   extra-device relative sigma (`sigma_rel`, Table II).
//!
//! This crate is deliberately dependency-free (only `serde` for data
//! types) and knows nothing about rings or simulators: it consumes plain
//! `&[f64]` series.
//!
//! ## Example
//!
//! ```
//! use strent_analysis::{jitter, stats::Summary};
//!
//! // Periods of a jittery 300 MHz clock, in ps.
//! let periods = [3333.0, 3335.5, 3331.2, 3334.1, 3332.8, 3333.9];
//! let summary = Summary::from_slice(&periods);
//! let sigma_period = jitter::period_jitter(&periods)?;
//! assert!((summary.mean() - 3333.4).abs() < 1.0);
//! assert!(sigma_period > 0.0);
//! # Ok::<(), strent_analysis::AnalysisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allan;
pub mod divider;
pub mod entropy;
pub mod error;
pub mod fit;
pub mod frequency;
pub mod histogram;
pub mod jitter;
pub mod markov;
pub mod normality;
pub mod patterns;
pub mod special;
pub mod spectrum;
pub mod stats;

pub use error::AnalysisError;
pub use histogram::Histogram;
pub use stats::Summary;
