//! The paper's on-chip jitter measurement method (Sec. V-D.2, Eq. 6).
//!
//! A counter inside the chip generates `osc_mes` by counting `2n` rising
//! events of the ring output `osc`, so one `osc_mes` period is the sum of
//! `2n` consecutive `osc` periods. If the random period contribution is
//! `N(T_mean, sigma_p^2)` and the deterministic drift between successive
//! `osc_mes` periods is negligible (an assumption verified by checking
//! that the `osc_mes` cycle-to-cycle histogram is normal), then
//!
//! ```text
//! delta T_mes ~ N(0, 4 n sigma_p^2)   =>   sigma_p = sigma_cc_mes / (2 sqrt(n))
//! ```
//!
//! On real silicon this sidesteps the scope's resolution floor; in the
//! simulator it lets us *validate* the method against ground truth
//! (experiment EXT-METHOD).

use serde::{Deserialize, Serialize};

use crate::error::{require_finite, AnalysisError};
use crate::jitter;
use crate::normality::{jarque_bera, TestResult};
use crate::stats::Summary;

/// Result of a divider-based jitter measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DividerMeasurement {
    /// The divider setting `n` (the counter counts `2n` rising events).
    pub n: usize,
    /// Number of complete `osc_mes` periods formed.
    pub mes_periods: usize,
    /// Mean `osc_mes` period, picoseconds.
    pub mes_mean_ps: f64,
    /// Cycle-to-cycle jitter of `osc_mes`, picoseconds.
    pub sigma_cc_mes_ps: f64,
    /// The recovered per-period jitter `sigma_p` (Eq. 6), picoseconds.
    pub sigma_p_ps: f64,
    /// Normality check of the `osc_mes` cycle-to-cycle differences — the
    /// method's validity hypothesis.
    pub normality: TestResult,
}

/// Applies the divider method to a series of `osc` periods.
///
/// # Errors
///
/// Returns an error if `n == 0` or the series is too short to form at
/// least 20 complete `osc_mes` periods (the hypothesis check needs a
/// population), or data is non-finite.
pub fn measure(periods: &[f64], n: usize) -> Result<DividerMeasurement, AnalysisError> {
    if n == 0 {
        return Err(AnalysisError::InvalidParameter {
            name: "n",
            constraint: "must be at least 1",
        });
    }
    let k = 2 * n;
    require_finite(periods, k * 20)?;
    // Form osc_mes periods: non-overlapping sums of 2n osc periods.
    let mes: Vec<f64> = periods.chunks_exact(k).map(|c| c.iter().sum()).collect();
    let diffs: Vec<f64> = mes.windows(2).map(|w| w[1] - w[0]).collect();
    let sigma_cc = Summary::from_slice(&diffs).std_dev();
    let normality = jarque_bera(&diffs)?;
    Ok(DividerMeasurement {
        n,
        mes_periods: mes.len(),
        mes_mean_ps: Summary::from_slice(&mes).mean(),
        sigma_cc_mes_ps: sigma_cc,
        sigma_p_ps: sigma_cc / (2.0 * (n as f64).sqrt()),
        normality,
    })
}

/// Compares the divider estimate against the directly computed period
/// jitter, returning `(direct, estimated, relative error)`.
///
/// # Errors
///
/// Propagates errors from either measurement.
pub fn validate_against_direct(
    periods: &[f64],
    n: usize,
) -> Result<(f64, f64, f64), AnalysisError> {
    let direct = jitter::period_jitter(periods)?;
    let est = measure(periods, n)?.sigma_p_ps;
    if direct == 0.0 {
        return Err(AnalysisError::DegenerateData("zero direct jitter"));
    }
    Ok((direct, est, (est - direct).abs() / direct))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::normal_quantile;

    fn gaussian_periods(count: usize, mean: f64, sigma: f64) -> Vec<f64> {
        let mut v: Vec<f64> = (0..count)
            .map(|i| {
                let u = (i as f64 + 0.5) / count as f64;
                mean + sigma * normal_quantile(u)
            })
            .collect();
        let mut state = 0x9e37_79b9_7f4a_7c15_u64;
        for i in (1..v.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    #[test]
    fn recovers_sigma_p_for_iid_periods() {
        let sigma_p = 2.0;
        let periods = gaussian_periods(64_000, 3000.0, sigma_p);
        for n in [4, 16, 64] {
            let m = measure(&periods, n).expect("valid");
            assert!(
                (m.sigma_p_ps - sigma_p).abs() < 0.25,
                "n={n}: estimated {} vs {sigma_p}",
                m.sigma_p_ps
            );
            assert!(m.normality.passes(0.001), "hypothesis check fails");
            assert_eq!(m.mes_periods, 64_000 / (2 * n));
            assert!((m.mes_mean_ps - 3000.0 * 2.0 * n as f64).abs() < 5.0);
        }
    }

    #[test]
    fn validation_reports_small_relative_error() {
        let periods = gaussian_periods(64_000, 3000.0, 3.0);
        let (direct, est, rel) = validate_against_direct(&periods, 16).expect("valid");
        assert!((direct - 3.0).abs() < 0.1);
        assert!(rel < 0.1, "direct {direct} vs est {est} (rel {rel})");
    }

    #[test]
    fn deterministic_drift_inflates_estimate_without_normality_failure_check() {
        // A slow linear drift adds a constant to successive differences,
        // which cancels in delta T_mes: the estimate should stay close.
        let mut periods = gaussian_periods(32_000, 3000.0, 2.0);
        for (i, p) in periods.iter_mut().enumerate() {
            *p += i as f64 * 1e-5; // slow drift
        }
        let m = measure(&periods, 16).expect("valid");
        assert!((m.sigma_p_ps - 2.0).abs() < 0.3, "estimate {}", m.sigma_p_ps);
    }

    #[test]
    fn error_cases() {
        let periods = gaussian_periods(100, 3000.0, 2.0);
        assert!(measure(&periods, 0).is_err());
        assert!(measure(&periods, 64).is_err()); // needs 2*64*20 periods
        assert!(validate_against_direct(&[3000.0; 2000], 4).is_err()); // zero jitter
    }
}
