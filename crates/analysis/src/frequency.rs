//! Frequency metrics: `F`, normalized excursion `dF` and `sigma_rel`.

use serde::{Deserialize, Serialize};

use crate::error::{require_finite, AnalysisError};
use crate::stats;

/// Mean frequency in MHz from a series of periods in picoseconds.
///
/// # Errors
///
/// Returns an error for an empty series, non-finite data or non-positive
/// periods.
///
/// # Examples
///
/// ```
/// use strent_analysis::frequency::frequency_mhz;
///
/// // ~3333 ps period -> ~300 MHz.
/// let f = frequency_mhz(&[3333.0, 3334.0, 3332.0])?;
/// assert!((f - 300.0).abs() < 0.2);
/// # Ok::<(), strent_analysis::AnalysisError>(())
/// ```
pub fn frequency_mhz(periods_ps: &[f64]) -> Result<f64, AnalysisError> {
    require_finite(periods_ps, 1)?;
    if periods_ps.iter().any(|&p| p <= 0.0) {
        return Err(AnalysisError::InvalidParameter {
            name: "periods",
            constraint: "strictly positive",
        });
    }
    let mean_ps = stats::mean(periods_ps)?;
    Ok(1e6 / mean_ps)
}

/// One `(voltage, frequency)` sample of a voltage sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Core voltage, volts.
    pub voltage: f64,
    /// Measured frequency, MHz.
    pub frequency_mhz: f64,
}

/// Result of normalizing a voltage sweep (Fig. 8 / Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NormalizedSweep {
    /// Frequency at the nominal voltage, MHz (the paper's `Fnom`).
    pub f_nominal_mhz: f64,
    /// `(voltage, F/Fnom)` series.
    pub normalized: Vec<(f64, f64)>,
    /// Normalized excursion `dF = (Fmax - Fmin) / Fnom`.
    pub excursion: f64,
}

/// Normalizes a frequency/voltage sweep to the frequency at
/// `nominal_voltage` and computes the excursion `dF` over the sweep.
///
/// # Errors
///
/// Returns an error for fewer than two points, non-finite data, or if no
/// sweep point lies within 1 mV of the nominal voltage.
pub fn normalize_sweep(
    points: &[SweepPoint],
    nominal_voltage: f64,
) -> Result<NormalizedSweep, AnalysisError> {
    if points.len() < 2 {
        return Err(AnalysisError::NotEnoughData {
            needed: 2,
            got: points.len(),
        });
    }
    if points
        .iter()
        .any(|p| !(p.voltage.is_finite() && p.frequency_mhz.is_finite()))
    {
        return Err(AnalysisError::NonFiniteData);
    }
    let f_nominal = points
        .iter()
        .find(|p| (p.voltage - nominal_voltage).abs() < 1e-3)
        .map(|p| p.frequency_mhz)
        .ok_or(AnalysisError::InvalidParameter {
            name: "points",
            constraint: "must contain a sample at the nominal voltage",
        })?;
    if f_nominal <= 0.0 {
        return Err(AnalysisError::DegenerateData("non-positive nominal frequency"));
    }
    let f_max = points.iter().map(|p| p.frequency_mhz).fold(f64::MIN, f64::max);
    let f_min = points.iter().map(|p| p.frequency_mhz).fold(f64::MAX, f64::min);
    Ok(NormalizedSweep {
        f_nominal_mhz: f_nominal,
        normalized: points
            .iter()
            .map(|p| (p.voltage, p.frequency_mhz / f_nominal))
            .collect(),
        excursion: (f_max - f_min) / f_nominal,
    })
}

/// Relative standard deviation of per-board frequencies — the paper's
/// `sigma_rel` (Table II).
///
/// # Errors
///
/// Returns an error for fewer than two boards, non-finite data or a zero
/// mean.
pub fn sigma_rel(frequencies_mhz: &[f64]) -> Result<f64, AnalysisError> {
    stats::relative_std_dev(frequencies_mhz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_from_periods() {
        let f = frequency_mhz(&[1000.0]).expect("valid");
        assert!((f - 1000.0).abs() < 1e-9);
        assert!(frequency_mhz(&[]).is_err());
        assert!(frequency_mhz(&[-1.0]).is_err());
    }

    #[test]
    fn sweep_normalization_matches_paper_definition() {
        // A 50% excursion sweep like a small IRO.
        let points: Vec<SweepPoint> = [
            (1.0, 300.0),
            (1.1, 340.0),
            (1.2, 376.0),
            (1.3, 452.0),
            (1.4, 488.0),
        ]
        .iter()
        .map(|&(v, f)| SweepPoint {
            voltage: v,
            frequency_mhz: f,
        })
        .collect();
        let s = normalize_sweep(&points, 1.2).expect("valid");
        assert_eq!(s.f_nominal_mhz, 376.0);
        assert!((s.excursion - (488.0 - 300.0) / 376.0).abs() < 1e-12);
        assert!((s.normalized[2].1 - 1.0).abs() < 1e-12);
        assert_eq!(s.normalized.len(), 5);
    }

    #[test]
    fn sweep_requires_nominal_point() {
        let points = vec![
            SweepPoint {
                voltage: 1.0,
                frequency_mhz: 100.0,
            },
            SweepPoint {
                voltage: 1.4,
                frequency_mhz: 150.0,
            },
        ];
        assert!(matches!(
            normalize_sweep(&points, 1.2),
            Err(AnalysisError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn sigma_rel_replicates_table_ii_style_numbers() {
        // Table II, STR 96C row.
        let f = [328.16, 328.54, 327.55, 328.47, 327.46];
        let s = sigma_rel(&f).expect("valid");
        assert!((s - 0.0015).abs() < 3e-4, "sigma_rel {s}");
        // Table II, IRO 3C row.
        let f = [654.42, 646.84, 641.56, 645.60, 642.12];
        let s = sigma_rel(&f).expect("valid");
        assert!((s - 0.0079).abs() < 3e-4, "sigma_rel {s}");
    }
}
