//! Uniform-bin histograms (the scope's "period histogram" view, Fig. 9).

use serde::{Deserialize, Serialize};

use crate::error::{require_finite, AnalysisError};
use crate::special::normal_cdf;

/// A histogram with uniform bins over `[lo, hi)`.
///
/// # Examples
///
/// ```
/// use strent_analysis::Histogram;
///
/// let data = [1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 9.0];
/// let hist = Histogram::from_data(&data, 4)?;
/// assert_eq!(hist.total(), 7);
/// assert_eq!(hist.bin_count(), 4);
/// # Ok::<(), strent_analysis::AnalysisError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Builds a histogram with `bins` uniform bins spanning the data
    /// range (the top edge is widened infinitesimally so the maximum
    /// lands in the last bin).
    ///
    /// # Errors
    ///
    /// Returns an error for empty/non-finite data, zero bins, or
    /// degenerate data with zero spread.
    pub fn from_data(data: &[f64], bins: usize) -> Result<Self, AnalysisError> {
        require_finite(data, 1)?;
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if lo == hi {
            return Err(AnalysisError::DegenerateData("zero data spread"));
        }
        // Widen the top edge so `max` falls inside the last bin.
        let hi = hi + (hi - lo) * 1e-9;
        let mut hist = Histogram::with_range(lo, hi, bins)?;
        for &x in data {
            hist.add(x);
        }
        Ok(hist)
    }

    /// Builds an empty histogram over an explicit `[lo, hi)` range.
    ///
    /// # Errors
    ///
    /// Returns an error if `bins == 0` or the range is empty/non-finite.
    pub fn with_range(lo: f64, hi: f64, bins: usize) -> Result<Self, AnalysisError> {
        if bins == 0 {
            return Err(AnalysisError::InvalidParameter {
                name: "bins",
                constraint: "must be at least 1",
            });
        }
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(AnalysisError::InvalidParameter {
                name: "range",
                constraint: "lo < hi, both finite",
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        })
    }

    /// Adds one sample; values outside `[lo, hi)` are clamped into the
    /// edge bins (scope-style saturation).
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
    }

    /// Lower edge of the histogram range.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the histogram range.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Number of bins.
    #[must_use]
    pub fn bin_count(&self) -> usize {
        self.counts.len()
    }

    /// Width of one bin.
    #[must_use]
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Raw bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin {i} out of range");
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Total number of samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Index of the most populated bin (first on ties).
    #[must_use]
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map_or(0, |(i, _)| i)
    }

    /// Normalized densities (counts / (total * bin width)); integrates
    /// to ~1 like a PDF.
    #[must_use]
    pub fn densities(&self) -> Vec<f64> {
        let norm = self.total() as f64 * self.bin_width();
        self.counts
            .iter()
            .map(|&c| {
                if norm == 0.0 {
                    0.0
                } else {
                    c as f64 / norm
                }
            })
            .collect()
    }

    /// Expected counts per bin under `N(mean, sigma^2)` with this
    /// histogram's total — the reference distribution for chi-square
    /// goodness-of-fit.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not positive.
    #[must_use]
    pub fn expected_gaussian_counts(&self, mean: f64, sigma: f64) -> Vec<f64> {
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        let total = self.total() as f64;
        let w = self.bin_width();
        (0..self.counts.len())
            .map(|i| {
                let a = self.lo + i as f64 * w;
                let b = a + w;
                let p = normal_cdf((b - mean) / sigma) - normal_cdf((a - mean) / sigma);
                total * p
            })
            .collect()
    }

    /// Renders the histogram as ASCII rows `center count |bar|`, wide
    /// enough for terminal inspection (used by the repro binaries).
    #[must_use]
    pub fn to_ascii(&self, max_bar: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = (c as usize * max_bar) / peak as usize;
            out.push_str(&format!(
                "{:>12.3} {:>8} |{}\n",
                self.bin_center(i),
                c,
                "#".repeat(bar)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_totals() {
        let hist = Histogram::from_data(&[0.0, 1.0, 2.0, 3.0, 4.0], 5).expect("valid");
        assert_eq!(hist.total(), 5);
        assert_eq!(hist.counts(), &[1, 1, 1, 1, 1]);
        assert!((hist.bin_center(0) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        let hist = Histogram::from_data(&[0.0, 10.0], 10).expect("valid");
        assert_eq!(hist.counts()[9], 1);
        assert_eq!(hist.counts()[0], 1);
    }

    #[test]
    fn out_of_range_samples_clamp() {
        let mut hist = Histogram::with_range(0.0, 10.0, 2).expect("valid");
        hist.add(-100.0);
        hist.add(100.0);
        hist.add(10.0); // hi edge is exclusive -> last bin
        assert_eq!(hist.counts(), &[1, 2]);
    }

    #[test]
    fn densities_integrate_to_one() {
        let data: Vec<f64> = (0..1000).map(|i| f64::from(i) * 0.01).collect();
        let hist = Histogram::from_data(&data, 20).expect("valid");
        let integral: f64 = hist
            .densities()
            .iter()
            .map(|d| d * hist.bin_width())
            .sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gaussian_expectation_matches_samples_shape() {
        // A symmetric range around the mean: expected counts symmetric,
        // peaked in the center.
        let mut hist = Histogram::with_range(-4.0, 4.0, 8).expect("valid");
        for _ in 0..100 {
            hist.add(0.0);
        }
        let expected = hist.expected_gaussian_counts(0.0, 1.0);
        assert_eq!(expected.len(), 8);
        let total: f64 = expected.iter().sum();
        assert!((total - 100.0).abs() < 0.1, "nearly all mass in range");
        for i in 0..4 {
            assert!((expected[i] - expected[7 - i]).abs() < 1e-9, "symmetry");
        }
        assert!(expected[3] > expected[0]);
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut hist = Histogram::with_range(0.0, 3.0, 3).expect("valid");
        hist.add(0.5);
        hist.add(1.5);
        hist.add(1.6);
        assert_eq!(hist.mode_bin(), 1);
    }

    #[test]
    fn error_cases() {
        assert!(Histogram::from_data(&[], 4).is_err());
        assert!(Histogram::from_data(&[1.0, 1.0], 4).is_err());
        assert!(Histogram::from_data(&[1.0, f64::NAN], 4).is_err());
        assert!(Histogram::with_range(0.0, 1.0, 0).is_err());
        assert!(Histogram::with_range(1.0, 0.0, 4).is_err());
    }

    #[test]
    fn ascii_rendering_has_one_row_per_bin() {
        let hist = Histogram::from_data(&[0.0, 1.0, 2.0], 3).expect("valid");
        let text = hist.to_ascii(10);
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains('#'));
    }
}
