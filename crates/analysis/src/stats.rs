//! Summary statistics.

use serde::{Deserialize, Serialize};

use crate::error::{require_finite, AnalysisError};

/// Running summary statistics (Welford's online algorithm, extended to
/// third and fourth central moments).
///
/// # Examples
///
/// ```
/// use strent_analysis::Summary;
///
/// let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(s.count(), 8);
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice in one pass.
    #[must_use]
    pub fn from_slice(data: &[f64]) -> Self {
        let mut s = Summary::new();
        for &x in data {
            s.push(x);
        }
        s
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is non-finite (a NaN would silently poison every
    /// statistic).
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "summary samples must be finite, got {x}");
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0)
            + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty summary).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (needs at least two samples, else 0).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Unbiased sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Population (biased, `1/n`) variance.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample skewness `g1` (0 for fewer than 3 samples or zero spread).
    #[must_use]
    pub fn skewness(&self) -> f64 {
        if self.n < 3 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        (n.sqrt() * self.m3) / self.m2.powf(1.5)
    }

    /// Sample excess kurtosis `g2` (0 for fewer than 4 samples or zero
    /// spread).
    #[must_use]
    pub fn excess_kurtosis(&self) -> f64 {
        if self.n < 4 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        n * self.m4 / (self.m2 * self.m2) - 3.0
    }

    /// Smallest sample (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Relative standard deviation `std_dev / |mean|` — the paper's
    /// `sigma_rel` (Table II).
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::DegenerateData`] if the mean is zero.
    pub fn relative_std_dev(&self) -> Result<f64, AnalysisError> {
        if self.mean == 0.0 {
            return Err(AnalysisError::DegenerateData("zero mean"));
        }
        Ok(self.std_dev() / self.mean.abs())
    }

    /// Merges another summary into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * nb / n;
        let m2 = self.m2 + other.m2 + delta * delta * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta.powi(3) * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + delta.powi(4) * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta * delta * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// Mean of a slice.
///
/// # Errors
///
/// Returns an error for an empty or non-finite slice.
pub fn mean(data: &[f64]) -> Result<f64, AnalysisError> {
    require_finite(data, 1)?;
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Unbiased sample standard deviation of a slice.
///
/// # Errors
///
/// Returns an error for fewer than two samples or non-finite data.
pub fn std_dev(data: &[f64]) -> Result<f64, AnalysisError> {
    require_finite(data, 2)?;
    Ok(Summary::from_slice(data).std_dev())
}

/// Relative standard deviation (`sigma / mean`) of a slice — Table II's
/// `sigma_rel`.
///
/// # Errors
///
/// Returns an error for fewer than two samples, non-finite data or a
/// zero mean.
pub fn relative_std_dev(data: &[f64]) -> Result<f64, AnalysisError> {
    require_finite(data, 2)?;
    Summary::from_slice(data).relative_std_dev()
}

/// The `q`-th quantile (0 = min, 0.5 = median, 1 = max) of a slice,
/// with linear interpolation between order statistics.
///
/// # Errors
///
/// Returns an error for an empty slice, non-finite data, or `q`
/// outside `[0, 1]`.
pub fn percentile(data: &[f64], q: f64) -> Result<f64, AnalysisError> {
    require_finite(data, 1)?;
    if !(0.0..=1.0).contains(&q) {
        return Err(AnalysisError::InvalidParameter {
            name: "q",
            constraint: "must lie in [0, 1]",
        });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let position = q * (sorted.len() - 1) as f64;
    let lower = position.floor() as usize;
    let upper = position.ceil() as usize;
    let fraction = position - lower as f64;
    Ok(sorted[lower] + fraction * (sorted[upper] - sorted[lower]))
}

/// The median of a slice.
///
/// # Errors
///
/// Returns an error for an empty slice or non-finite data.
pub fn median(data: &[f64]) -> Result<f64, AnalysisError> {
    percentile(data, 0.5)
}

/// A chi-square confidence interval for the standard deviation of a
/// normal population, `(lower, upper)`.
///
/// With only five boards, Table II's `sigma_rel` values are single
/// draws with wide error bars — this quantifies them:
/// `(n-1) s^2 / chi2_{(1+c)/2} <= sigma^2 <= (n-1) s^2 / chi2_{(1-c)/2}`.
///
/// # Errors
///
/// Returns an error for fewer than two samples, non-finite data, zero
/// spread, or a confidence level outside `(0, 1)`.
pub fn std_dev_confidence(data: &[f64], confidence: f64) -> Result<(f64, f64), AnalysisError> {
    require_finite(data, 2)?;
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(AnalysisError::InvalidParameter {
            name: "confidence",
            constraint: "strictly between 0 and 1",
        });
    }
    let s = Summary::from_slice(data);
    if s.variance() == 0.0 {
        return Err(AnalysisError::DegenerateData("zero variance"));
    }
    let dof = u32::try_from(data.len() - 1).map_err(|_| AnalysisError::InvalidParameter {
        name: "data",
        constraint: "length must fit in u32",
    })?;
    let alpha = 1.0 - confidence;
    let scaled = f64::from(dof) * s.variance();
    let hi_q = crate::special::chi_square_quantile(1.0 - alpha / 2.0, dof);
    let lo_q = crate::special::chi_square_quantile(alpha / 2.0, dof);
    Ok(((scaled / hi_q).sqrt(), (scaled / lo_q).sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.skewness(), 0.0);
        assert_eq!(s.excess_kurtosis(), 0.0);
    }

    #[test]
    fn known_moments() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), 5.0);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn skewness_and_kurtosis_signs() {
        // Right-skewed data.
        let right = Summary::from_slice(&[1.0, 1.0, 1.0, 1.0, 10.0]);
        assert!(right.skewness() > 0.0);
        // Symmetric data: zero skew.
        let sym = Summary::from_slice(&[-2.0, -1.0, 0.0, 1.0, 2.0]);
        assert!(sym.skewness().abs() < 1e-12);
        // Uniform-ish data is platykurtic (negative excess kurtosis).
        let uniform: Vec<f64> = (0..100).map(f64::from).collect();
        assert!(Summary::from_slice(&uniform).excess_kurtosis() < -1.0);
    }

    #[test]
    fn merge_equals_bulk() {
        let all: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.37 - 5.0).collect();
        let bulk = Summary::from_slice(&all);
        let mut merged = Summary::from_slice(&all[..37]);
        merged.merge(&Summary::from_slice(&all[37..]));
        assert!((merged.mean() - bulk.mean()).abs() < 1e-10);
        assert!((merged.variance() - bulk.variance()).abs() < 1e-8);
        assert!((merged.skewness() - bulk.skewness()).abs() < 1e-8);
        assert!((merged.excess_kurtosis() - bulk.excess_kurtosis()).abs() < 1e-8);
        assert_eq!(merged.count(), 100);
        // Merging with empty is identity in both directions.
        let mut a = bulk;
        a.merge(&Summary::new());
        assert_eq!(a, bulk);
        let mut b = Summary::new();
        b.merge(&bulk);
        assert_eq!(b.mean(), bulk.mean());
    }

    #[test]
    fn slice_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]).expect("valid"), 2.0);
        assert!((std_dev(&[1.0, 2.0, 3.0]).expect("valid") - 1.0).abs() < 1e-12);
        let rel = relative_std_dev(&[99.0, 100.0, 101.0]).expect("valid");
        assert!((rel - 0.01).abs() < 1e-4);
        assert!(mean(&[]).is_err());
        assert!(std_dev(&[1.0]).is_err());
        assert!(relative_std_dev(&[0.0, 0.0]).is_err());
        assert!(mean(&[f64::NAN]).is_err());
    }

    #[test]
    fn percentile_and_median() {
        let data = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&data, 0.0).expect("valid"), 1.0);
        assert_eq!(percentile(&data, 1.0).expect("valid"), 5.0);
        assert_eq!(median(&data).expect("valid"), 3.0);
        // Interpolation between order statistics.
        assert!((percentile(&data, 0.25).expect("valid") - 2.0).abs() < 1e-12);
        assert!((percentile(&data, 0.1).expect("valid") - 1.4).abs() < 1e-12);
        // Even length: midpoint.
        assert_eq!(median(&[1.0, 2.0]).expect("valid"), 1.5);
        // Errors.
        assert!(percentile(&[], 0.5).is_err());
        assert!(percentile(&[1.0], 1.5).is_err());
        assert!(median(&[f64::NAN]).is_err());
    }

    #[test]
    fn std_dev_confidence_brackets_the_truth() {
        // Known-sigma pseudo-Gaussian samples: the 95% CI contains the
        // true sigma and tightens with more data.
        let samples = |n: usize| -> Vec<f64> {
            (0..n)
                .map(|i| {
                    let u = (i as f64 + 0.5) / n as f64;
                    10.0 + 2.0 * crate::special::normal_quantile(u)
                })
                .collect()
        };
        let small = std_dev_confidence(&samples(5), 0.95).expect("valid");
        let large = std_dev_confidence(&samples(200), 0.95).expect("valid");
        assert!(small.0 < 2.0 && 2.0 < small.1, "small CI {small:?}");
        assert!(large.0 < 2.0 && 2.0 < large.1, "large CI {large:?}");
        assert!(
            (large.1 - large.0) < (small.1 - small.0) / 3.0,
            "CI must tighten: {small:?} vs {large:?}"
        );
        // A 5-sample CI is wide — the Table II caveat in numbers.
        assert!(small.1 / small.0 > 2.0, "5-sample CI ratio {}", small.1 / small.0);
    }

    #[test]
    fn std_dev_confidence_rejects_bad_input() {
        assert!(std_dev_confidence(&[1.0], 0.95).is_err());
        assert!(std_dev_confidence(&[1.0, 2.0], 1.5).is_err());
        assert!(std_dev_confidence(&[3.0, 3.0, 3.0], 0.95).is_err());
    }

    #[test]
    fn collect_and_extend() {
        let s: Summary = vec![1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.count(), 3);
        let mut s2 = Summary::new();
        s2.extend(vec![4.0, 5.0]);
        assert_eq!(s2.count(), 2);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_push_rejected() {
        Summary::new().push(f64::NAN);
    }
}
