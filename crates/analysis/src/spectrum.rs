//! Spectral analysis of period series.
//!
//! A supply-modulation attack appears as a spectral line in the period
//! sequence; white period noise appears as a flat floor. The
//! [`periodogram`] gives the full picture; [`goertzel_power`] evaluates
//! a single bin cheaply (the frequency-domain twin of the lock-in
//! detector in `strent-trng`).

use serde::{Deserialize, Serialize};

use crate::error::{require_finite, AnalysisError};

/// One periodogram bin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectralBin {
    /// Frequency in cycles per sample, in `[0, 0.5]`.
    pub frequency: f64,
    /// Power (mean squared amplitude) in this bin.
    pub power: f64,
}

/// The power of a single tone at `frequency` cycles per sample, via the
/// Goertzel recurrence. The input mean is removed first, so the DC bin
/// of a constant series is zero.
///
/// # Errors
///
/// Returns an error for fewer than 8 samples, non-finite data, or a
/// frequency outside `[0, 0.5]`.
pub fn goertzel_power(samples: &[f64], frequency: f64) -> Result<f64, AnalysisError> {
    require_finite(samples, 8)?;
    if !(0.0..=0.5).contains(&frequency) {
        return Err(AnalysisError::InvalidParameter {
            name: "frequency",
            constraint: "cycles per sample in [0, 0.5]",
        });
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let omega = std::f64::consts::TAU * frequency;
    let coeff = 2.0 * omega.cos();
    let (mut s_prev, mut s_prev2) = (0.0, 0.0);
    for &x in samples {
        let s = (x - mean) + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    let power =
        (s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2) / (n * n / 4.0);
    Ok(power.max(0.0))
}

/// The full (mean-removed) periodogram: `bins` equally spaced
/// frequencies from just above DC to Nyquist.
///
/// # Errors
///
/// Returns an error for fewer than 8 samples, non-finite data, or zero
/// bins.
pub fn periodogram(samples: &[f64], bins: usize) -> Result<Vec<SpectralBin>, AnalysisError> {
    if bins == 0 {
        return Err(AnalysisError::InvalidParameter {
            name: "bins",
            constraint: "must be at least 1",
        });
    }
    require_finite(samples, 8)?;
    (1..=bins)
        .map(|k| {
            let frequency = 0.5 * k as f64 / bins as f64;
            Ok(SpectralBin {
                frequency,
                power: goertzel_power(samples, frequency)?,
            })
        })
        .collect()
}

/// The ratio of the peak bin power to the median bin power — a simple
/// "is there a line in this spectrum?" detector. White noise gives a
/// small ratio (a few); a strong injected tone gives a large one.
///
/// # Errors
///
/// Propagates [`periodogram`] errors.
pub fn peak_to_median_ratio(samples: &[f64], bins: usize) -> Result<f64, AnalysisError> {
    let spec = periodogram(samples, bins)?;
    let mut powers: Vec<f64> = spec.iter().map(|b| b.power).collect();
    powers.sort_by(f64::total_cmp);
    let peak = *powers.last().expect("bins >= 1");
    let median = powers[powers.len() / 2];
    if median == 0.0 {
        return Err(AnalysisError::DegenerateData("zero median power"));
    }
    Ok(peak / median)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, freq: f64, amplitude: f64) -> Vec<f64> {
        (0..n)
            .map(|k| 1000.0 + amplitude * (std::f64::consts::TAU * freq * k as f64).sin())
            .collect()
    }

    #[test]
    fn goertzel_finds_a_pure_tone() {
        let samples = tone(4096, 0.125, 3.0);
        // Power of a sine of amplitude A is A^2 at the exact bin.
        let p = goertzel_power(&samples, 0.125).expect("valid");
        assert!((p - 9.0).abs() < 0.1, "power {p}");
        // Far-off bins see almost nothing.
        let off = goertzel_power(&samples, 0.3).expect("valid");
        assert!(off < 0.05, "off-bin power {off}");
    }

    #[test]
    fn dc_is_removed() {
        let samples = vec![123.0; 64];
        let p = goertzel_power(&samples, 0.25).expect("valid");
        assert!(p < 1e-18);
    }

    #[test]
    fn periodogram_peak_lands_on_the_tone() {
        let samples = tone(2048, 0.2, 2.0);
        let spec = periodogram(&samples, 50).expect("valid");
        assert_eq!(spec.len(), 50);
        let peak = spec
            .iter()
            .max_by(|a, b| a.power.total_cmp(&b.power))
            .expect("non-empty");
        assert!((peak.frequency - 0.2).abs() < 0.011, "peak at {}", peak.frequency);
    }

    #[test]
    fn peak_detector_separates_tone_from_noise() {
        // Deterministic pseudo-noise.
        let mut state = 0x1234_5678_u64;
        let noise: Vec<f64> = (0..2048)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                1000.0 + ((state >> 33) as f64 / 2f64.powi(31) - 0.5) * 4.0
            })
            .collect();
        let noise_ratio = peak_to_median_ratio(&noise, 64).expect("valid");
        let toned: Vec<f64> = noise
            .iter()
            .enumerate()
            .map(|(k, &x)| x + 5.0 * (std::f64::consts::TAU * 0.11 * k as f64).sin())
            .collect();
        let tone_ratio = peak_to_median_ratio(&toned, 64).expect("valid");
        assert!(
            tone_ratio > 10.0 * noise_ratio,
            "tone {tone_ratio} vs noise {noise_ratio}"
        );
    }

    #[test]
    fn error_cases() {
        assert!(goertzel_power(&[1.0; 4], 0.1).is_err());
        assert!(goertzel_power(&[1.0; 100], 0.6).is_err());
        assert!(periodogram(&[1.0; 100], 0).is_err());
        assert!(peak_to_median_ratio(&[5.0; 100], 8).is_err()); // zero power
    }
}
