//! Spectral analysis of period series.
//!
//! A supply-modulation attack appears as a spectral line in the period
//! sequence; white period noise appears as a flat floor. The
//! [`periodogram`] gives the full picture; [`goertzel_power`] evaluates
//! a single bin cheaply (the frequency-domain twin of the lock-in
//! detector in `strent-trng`).

use serde::{Deserialize, Serialize};

use crate::error::{require_finite, AnalysisError};

/// One periodogram bin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectralBin {
    /// Frequency in cycles per sample, in `[0, 0.5]`.
    pub frequency: f64,
    /// Power (mean squared amplitude) in this bin.
    pub power: f64,
}

/// The power of a single tone at `frequency` cycles per sample, via the
/// Goertzel recurrence. The input mean is removed first, so the DC bin
/// of a constant series is zero.
///
/// # Errors
///
/// Returns an error for fewer than 8 samples, non-finite data, or a
/// frequency outside `[0, 0.5]`.
pub fn goertzel_power(samples: &[f64], frequency: f64) -> Result<f64, AnalysisError> {
    require_finite(samples, 8)?;
    if !(0.0..=0.5).contains(&frequency) {
        return Err(AnalysisError::InvalidParameter {
            name: "frequency",
            constraint: "cycles per sample in [0, 0.5]",
        });
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let omega = std::f64::consts::TAU * frequency;
    let coeff = 2.0 * omega.cos();
    let (mut s_prev, mut s_prev2) = (0.0, 0.0);
    for &x in samples {
        let s = (x - mean) + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    let power =
        (s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2) / (n * n / 4.0);
    Ok(power.max(0.0))
}

/// Self-clocked lock-in amplitude: the amplitude of a sinusoidal
/// component of known frequency in a period series whose sample
/// instants are the accumulated periods themselves (a real counter's
/// sampling). `frequency` is in cycles per unit of the series' own
/// time base (for a picosecond series and a tone in MHz, pass
/// `freq_mhz * 1e-6`). This is the time-domain twin of
/// [`goertzel_power`] for unevenly self-sampled data — the detector
/// the differential-measurement scenario uses to quantify common-mode
/// rejection.
///
/// # Errors
///
/// Returns an error for fewer than 16 samples, non-finite data, or a
/// non-positive frequency.
pub fn self_clocked_lockin_amplitude(
    periods: &[f64],
    frequency: f64,
) -> Result<f64, AnalysisError> {
    require_finite(periods, 16)?;
    if !(frequency.is_finite() && frequency > 0.0) {
        return Err(AnalysisError::InvalidParameter {
            name: "frequency",
            constraint: "finite and positive",
        });
    }
    let mut t = 0.0;
    let times: Vec<f64> = periods
        .iter()
        .map(|&p| {
            let start = t;
            t += p;
            start
        })
        .collect();
    lockin_amplitude_at(&times, periods, frequency)
}

/// Lock-in amplitude of a tone of known `frequency` in `samples` taken
/// at explicit `times` (same units as `1 / frequency`). Lets a caller
/// correlate *two* series against the same clock — e.g. a differential
/// period series evaluated at the reference ring's edge instants, so
/// the common-mode tone estimate and its differential residual are
/// produced by the identical detector.
///
/// # Errors
///
/// Returns an error for fewer than 16 samples, non-finite data,
/// mismatched lengths, or a non-positive frequency.
pub fn lockin_amplitude_at(
    times: &[f64],
    samples: &[f64],
    frequency: f64,
) -> Result<f64, AnalysisError> {
    require_finite(samples, 16)?;
    require_finite(times, 16)?;
    if times.len() != samples.len() {
        return Err(AnalysisError::InvalidParameter {
            name: "times",
            constraint: "same length as samples",
        });
    }
    if !(frequency.is_finite() && frequency > 0.0) {
        return Err(AnalysisError::InvalidParameter {
            name: "frequency",
            constraint: "finite and positive",
        });
    }
    let omega = std::f64::consts::TAU * frequency;
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let mut i_sum = 0.0;
    let mut q_sum = 0.0;
    for (&t, &x) in times.iter().zip(samples) {
        let centered = x - mean;
        i_sum += centered * (omega * t).sin();
        q_sum += centered * (omega * t).cos();
    }
    let n = samples.len() as f64;
    Ok(2.0 * (i_sum * i_sum + q_sum * q_sum).sqrt() / n)
}

/// The full (mean-removed) periodogram: `bins` equally spaced
/// frequencies from just above DC to Nyquist.
///
/// # Errors
///
/// Returns an error for fewer than 8 samples, non-finite data, or zero
/// bins.
pub fn periodogram(samples: &[f64], bins: usize) -> Result<Vec<SpectralBin>, AnalysisError> {
    if bins == 0 {
        return Err(AnalysisError::InvalidParameter {
            name: "bins",
            constraint: "must be at least 1",
        });
    }
    require_finite(samples, 8)?;
    (1..=bins)
        .map(|k| {
            let frequency = 0.5 * k as f64 / bins as f64;
            Ok(SpectralBin {
                frequency,
                power: goertzel_power(samples, frequency)?,
            })
        })
        .collect()
}

/// The ratio of the peak bin power to the median bin power — a simple
/// "is there a line in this spectrum?" detector. White noise gives a
/// small ratio (a few); a strong injected tone gives a large one.
///
/// # Errors
///
/// Propagates [`periodogram`] errors.
pub fn peak_to_median_ratio(samples: &[f64], bins: usize) -> Result<f64, AnalysisError> {
    let spec = periodogram(samples, bins)?;
    let mut powers: Vec<f64> = spec.iter().map(|b| b.power).collect();
    powers.sort_by(f64::total_cmp);
    let peak = *powers.last().expect("bins >= 1");
    let median = powers[powers.len() / 2];
    if median == 0.0 {
        return Err(AnalysisError::DegenerateData("zero median power"));
    }
    Ok(peak / median)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, freq: f64, amplitude: f64) -> Vec<f64> {
        (0..n)
            .map(|k| 1000.0 + amplitude * (std::f64::consts::TAU * freq * k as f64).sin())
            .collect()
    }

    #[test]
    fn self_clocked_lockin_recovers_amplitude_and_cancels_in_difference() {
        // A 1000 ps clock with a 6 ps tone at 1e-4 cycles/ps.
        let freq = 1e-4;
        let mut t = 0.0;
        let periods: Vec<f64> = (0..4096)
            .map(|_| {
                let p = 1000.0 + 6.0 * (std::f64::consts::TAU * freq * t).sin();
                t += p;
                p
            })
            .collect();
        let a = self_clocked_lockin_amplitude(&periods, freq).expect("valid");
        assert!((a - 6.0).abs() < 0.5, "lock-in amplitude {a}");
        // The same tone in two series evaluated against one clock
        // cancels in their difference.
        let times: Vec<f64> = periods
            .iter()
            .scan(0.0, |acc, &p| {
                let start = *acc;
                *acc += p;
                Some(start)
            })
            .collect();
        let diff = vec![0.0; periods.len()];
        let residual = lockin_amplitude_at(&times, &diff, freq).expect("valid");
        assert!(residual < 1e-9, "difference residual {residual}");
        assert!(lockin_amplitude_at(&times[..8], &diff[..8], freq).is_err());
    }

    #[test]
    fn goertzel_finds_a_pure_tone() {
        let samples = tone(4096, 0.125, 3.0);
        // Power of a sine of amplitude A is A^2 at the exact bin.
        let p = goertzel_power(&samples, 0.125).expect("valid");
        assert!((p - 9.0).abs() < 0.1, "power {p}");
        // Far-off bins see almost nothing.
        let off = goertzel_power(&samples, 0.3).expect("valid");
        assert!(off < 0.05, "off-bin power {off}");
    }

    #[test]
    fn dc_is_removed() {
        let samples = vec![123.0; 64];
        let p = goertzel_power(&samples, 0.25).expect("valid");
        assert!(p < 1e-18);
    }

    #[test]
    fn periodogram_peak_lands_on_the_tone() {
        let samples = tone(2048, 0.2, 2.0);
        let spec = periodogram(&samples, 50).expect("valid");
        assert_eq!(spec.len(), 50);
        let peak = spec
            .iter()
            .max_by(|a, b| a.power.total_cmp(&b.power))
            .expect("non-empty");
        assert!((peak.frequency - 0.2).abs() < 0.011, "peak at {}", peak.frequency);
    }

    #[test]
    fn peak_detector_separates_tone_from_noise() {
        // Deterministic pseudo-noise.
        let mut state = 0x1234_5678_u64;
        let noise: Vec<f64> = (0..2048)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                1000.0 + ((state >> 33) as f64 / 2f64.powi(31) - 0.5) * 4.0
            })
            .collect();
        let noise_ratio = peak_to_median_ratio(&noise, 64).expect("valid");
        let toned: Vec<f64> = noise
            .iter()
            .enumerate()
            .map(|(k, &x)| x + 5.0 * (std::f64::consts::TAU * 0.11 * k as f64).sin())
            .collect();
        let tone_ratio = peak_to_median_ratio(&toned, 64).expect("valid");
        assert!(
            tone_ratio > 10.0 * noise_ratio,
            "tone {tone_ratio} vs noise {noise_ratio}"
        );
    }

    #[test]
    fn error_cases() {
        assert!(goertzel_power(&[1.0; 4], 0.1).is_err());
        assert!(goertzel_power(&[1.0; 100], 0.6).is_err());
        assert!(periodogram(&[1.0; 100], 0).is_err());
        assert!(peak_to_median_ratio(&[5.0; 100], 8).is_err()); // zero power
    }
}
