//! Least-squares fits used by the paper's figures.
//!
//! * [`linear`] — `y = a + b*x` (Fig. 8's near-linear frequency/voltage);
//! * [`sqrt_law`] — `y = c * sqrt(x)` (Fig. 11's jitter accumulation:
//!   `sigma_p = sqrt(2k) * sigma_g` means `c = sqrt(2) * sigma_g`);
//! * [`charlie_hyperbola`] — recovers `(Ds, Dcharlie)` from measured
//!   `(s, delay)` pairs of a Charlie diagram (Fig. 7) via the exact
//!   linearization `d^2 - s^2 = 2*Ds*d - (Ds^2 - Dch^2)`.

use serde::{Deserialize, Serialize};

use crate::error::{require_finite, AnalysisError};

/// Result of a linear fit `y = intercept + slope * x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Intercept `a`.
    pub intercept: f64,
    /// Slope `b`.
    pub slope: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Ordinary least squares for `y = a + b*x`.
///
/// # Errors
///
/// Returns an error for fewer than two points, mismatched lengths
/// (reported as `NotEnoughData`), non-finite data or zero x-spread.
pub fn linear(x: &[f64], y: &[f64]) -> Result<LinearFit, AnalysisError> {
    if x.len() != y.len() {
        return Err(AnalysisError::InvalidParameter {
            name: "x/y",
            constraint: "equal lengths",
        });
    }
    require_finite(x, 2)?;
    require_finite(y, 2)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|&xi| (xi - mx) * (xi - mx)).sum();
    let sxy: f64 = x.iter().zip(y).map(|(&xi, &yi)| (xi - mx) * (yi - my)).sum();
    if sxx == 0.0 {
        return Err(AnalysisError::DegenerateData("zero x spread"));
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_res: f64 = x
        .iter()
        .zip(y)
        .map(|(&xi, &yi)| {
            let r = yi - (intercept + slope * xi);
            r * r
        })
        .sum();
    let ss_tot: f64 = y.iter().map(|&yi| (yi - my) * (yi - my)).sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Ok(LinearFit {
        intercept,
        slope,
        r_squared,
    })
}

/// Result of a square-root-law fit `y = c * sqrt(x)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SqrtFit {
    /// The coefficient `c`.
    pub coefficient: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

impl SqrtFit {
    /// Evaluates the fitted law at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        assert!(x >= 0.0, "sqrt law needs x >= 0");
        self.coefficient * x.sqrt()
    }
}

/// Least squares for `y = c * sqrt(x)` (no intercept):
/// `c = sum(y*sqrt(x)) / sum(x)`.
///
/// For the IRO jitter law `sigma_p = sqrt(2k)*sigma_g`, fitting `sigma_p`
/// against `k` yields `c = sqrt(2)*sigma_g`, i.e. `sigma_g = c/sqrt(2)`.
///
/// # Errors
///
/// Returns an error for fewer than two points, mismatched lengths,
/// non-finite data, or non-positive `x`.
pub fn sqrt_law(x: &[f64], y: &[f64]) -> Result<SqrtFit, AnalysisError> {
    if x.len() != y.len() {
        return Err(AnalysisError::InvalidParameter {
            name: "x/y",
            constraint: "equal lengths",
        });
    }
    require_finite(x, 2)?;
    require_finite(y, 2)?;
    if x.iter().any(|&xi| xi <= 0.0) {
        return Err(AnalysisError::InvalidParameter {
            name: "x",
            constraint: "strictly positive for a sqrt-law fit",
        });
    }
    let num: f64 = x.iter().zip(y).map(|(&xi, &yi)| yi * xi.sqrt()).sum();
    let den: f64 = x.iter().sum();
    let coefficient = num / den;
    let my = y.iter().sum::<f64>() / y.len() as f64;
    let ss_res: f64 = x
        .iter()
        .zip(y)
        .map(|(&xi, &yi)| {
            let r = yi - coefficient * xi.sqrt();
            r * r
        })
        .sum();
    let ss_tot: f64 = y.iter().map(|&yi| (yi - my) * (yi - my)).sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Ok(SqrtFit {
        coefficient,
        r_squared,
    })
}

/// Result of a Charlie-diagram hyperbola fit
/// `delay = Ds + sqrt(Dcharlie^2 + s^2)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CharlieFit {
    /// Static delay `Ds`, picoseconds.
    pub static_delay_ps: f64,
    /// Charlie magnitude `Dcharlie`, picoseconds.
    pub charlie_delay_ps: f64,
    /// Root-mean-square residual of the fit, picoseconds.
    pub rms_residual_ps: f64,
}

impl CharlieFit {
    /// Evaluates the fitted Charlie curve at separation `s` (ps).
    #[must_use]
    pub fn predict(&self, s: f64) -> f64 {
        self.static_delay_ps + (self.charlie_delay_ps.powi(2) + s * s).sqrt()
    }
}

/// Recovers `(Ds, Dcharlie)` from `(separation, delay)` samples of a
/// Charlie diagram.
///
/// Squaring `d - Ds = sqrt(Dch^2 + s^2)` gives the exact linear relation
/// `d^2 - s^2 = 2*Ds*d - (Ds^2 - Dch^2)`, so an ordinary linear fit of
/// `d^2 - s^2` against `d` yields both parameters in closed form.
///
/// # Errors
///
/// Returns an error for fewer than three points, mismatched lengths,
/// non-finite data, a degenerate delay spread, or if the recovered
/// `Dcharlie^2` is negative (data inconsistent with a Charlie curve).
pub fn charlie_hyperbola(
    separation_ps: &[f64],
    delay_ps: &[f64],
) -> Result<CharlieFit, AnalysisError> {
    if separation_ps.len() != delay_ps.len() {
        return Err(AnalysisError::InvalidParameter {
            name: "separation/delay",
            constraint: "equal lengths",
        });
    }
    require_finite(separation_ps, 3)?;
    require_finite(delay_ps, 3)?;
    let y: Vec<f64> = separation_ps
        .iter()
        .zip(delay_ps)
        .map(|(&s, &d)| d * d - s * s)
        .collect();
    let lin = linear(delay_ps, &y)?;
    let ds = lin.slope / 2.0;
    let dch2 = ds * ds - (-lin.intercept);
    if dch2 < 0.0 {
        return Err(AnalysisError::DegenerateData(
            "fit yields negative Dcharlie^2: data is not a Charlie curve",
        ));
    }
    let fit = CharlieFit {
        static_delay_ps: ds,
        charlie_delay_ps: dch2.sqrt(),
        rms_residual_ps: 0.0,
    };
    let ss: f64 = separation_ps
        .iter()
        .zip(delay_ps)
        .map(|(&s, &d)| {
            let r = d - fit.predict(s);
            r * r
        })
        .sum();
    Ok(CharlieFit {
        rms_residual_ps: (ss / separation_ps.len() as f64).sqrt(),
        ..fit
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_recovers_exact_line() {
        let x: Vec<f64> = (0..10).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|&xi| 3.0 + 2.0 * xi).collect();
        let fit = linear(&x, &y).expect("valid");
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(20.0) - 43.0).abs() < 1e-12);
    }

    #[test]
    fn linear_r2_degrades_with_noise() {
        let x: Vec<f64> = (0..50).map(f64::from).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &xi)| xi + if i % 2 == 0 { 8.0 } else { -8.0 })
            .collect();
        let fit = linear(&x, &y).expect("valid");
        assert!(fit.r_squared < 1.0);
        assert!((fit.slope - 1.0).abs() < 0.1);
    }

    #[test]
    fn sqrt_law_recovers_iro_jitter_coefficient() {
        // sigma_p = sqrt(2k) * sigma_g with sigma_g = 2 ps.
        let k: Vec<f64> = vec![3.0, 5.0, 9.0, 15.0, 25.0, 41.0, 60.0, 80.0];
        let sigma: Vec<f64> = k.iter().map(|&ki| (2.0 * ki).sqrt() * 2.0).collect();
        let fit = sqrt_law(&k, &sigma).expect("valid");
        let sigma_g = fit.coefficient / std::f64::consts::SQRT_2;
        assert!((sigma_g - 2.0).abs() < 1e-12, "sigma_g = {sigma_g}");
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(50.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn charlie_fit_recovers_parameters() {
        let ds = 255.0;
        let dch = 128.0;
        let s: Vec<f64> = (-20..=20).map(|i| f64::from(i) * 25.0).collect();
        let d: Vec<f64> = s.iter().map(|&si| ds + (dch * dch + si * si).sqrt()).collect();
        let fit = charlie_hyperbola(&s, &d).expect("valid");
        assert!((fit.static_delay_ps - ds).abs() < 1e-6, "Ds {}", fit.static_delay_ps);
        assert!(
            (fit.charlie_delay_ps - dch).abs() < 1e-6,
            "Dch {}",
            fit.charlie_delay_ps
        );
        assert!(fit.rms_residual_ps < 1e-6);
    }

    #[test]
    fn charlie_fit_tolerates_noise() {
        let ds = 100.0;
        let dch = 50.0;
        let s: Vec<f64> = (-40..=40).map(|i| f64::from(i) * 10.0).collect();
        let d: Vec<f64> = s
            .iter()
            .enumerate()
            .map(|(i, &si)| {
                ds + (dch * dch + si * si).sqrt() + if i % 2 == 0 { 0.5 } else { -0.5 }
            })
            .collect();
        let fit = charlie_hyperbola(&s, &d).expect("valid");
        assert!((fit.static_delay_ps - ds).abs() < 2.0);
        assert!((fit.charlie_delay_ps - dch).abs() < 3.0);
        assert!(fit.rms_residual_ps < 1.0);
    }

    #[test]
    fn error_cases() {
        assert!(linear(&[1.0], &[1.0]).is_err());
        assert!(linear(&[1.0, 2.0], &[1.0]).is_err());
        assert!(linear(&[1.0, 1.0], &[1.0, 2.0]).is_err()); // zero x spread
        assert!(sqrt_law(&[0.0, 1.0], &[1.0, 2.0]).is_err()); // non-positive x
        assert!(charlie_hyperbola(&[1.0, 2.0], &[1.0, 2.0]).is_err()); // too few
    }
}
