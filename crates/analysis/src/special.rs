//! Special functions: the numeric substrate for p-values and quantiles.
//!
//! Implemented from scratch (the workspace allows no numerics crates):
//! `erf`/`erfc` via a high-accuracy rational approximation, `ln_gamma`
//! via Lanczos, the regularized incomplete gamma functions via series /
//! continued fraction, and the normal quantile via Acklam's algorithm.
//! Accuracy is more than sufficient for statistical testing (relative
//! error well below 1e-9 in the tested ranges).

/// The error function `erf(x)`.
///
/// # Examples
///
/// ```
/// use strent_analysis::special::erf;
///
/// assert!((erf(0.0)).abs() < 1e-15);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// assert!((erf(-1.0) + erf(1.0)).abs() < 1e-15);
/// ```
#[must_use]
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Uses the expansion of W. J. Cody as popularized in Numerical Recipes
/// (`erfc(x) = t*exp(-x^2 + P(t))`), accurate to ~1e-11 relative error,
/// refined by one step of the symmetric relation.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 2.0 / (2.0 + x);
    let ty = 4.0 * t - 2.0;
    // Chebyshev coefficients (Numerical Recipes, 3rd ed., erfc_.
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let mut d = 0.0;
    let mut dd = 0.0;
    for &c in COF.iter().skip(1).rev() {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    t * (-x * x + 0.5 * (COF[0] + ty * d) - dd).exp()
}

/// Natural log of the gamma function, Lanczos approximation (g=7, n=9).
///
/// # Panics
///
/// Panics if `x <= 0` (poles / undefined for the real-log variant).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
#[must_use]
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p requires a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
#[must_use]
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q requires a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion of P(a, x), valid for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction expansion of Q(a, x), valid for x >= a + 1.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -f64::from(i) * (f64::from(i) - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// CDF of the standard normal distribution.
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Survival function of the chi-square distribution with `dof` degrees of
/// freedom: `P(X > x)` — the p-value of a chi-square statistic.
///
/// # Panics
///
/// Panics if `dof` is 0 or `x < 0`.
#[must_use]
pub fn chi_square_sf(x: f64, dof: u32) -> f64 {
    assert!(dof > 0, "chi-square needs dof >= 1");
    assert!(x >= 0.0, "chi-square statistic must be non-negative");
    gamma_q(f64::from(dof) / 2.0, x / 2.0)
}

/// Quantile of the chi-square distribution: the `x` with
/// `P(X <= x) = p` for `dof` degrees of freedom, found by bisection on
/// the survival function (absolute tolerance 1e-10 relative).
///
/// # Panics
///
/// Panics if `dof == 0` or `p` is outside `(0, 1)`.
#[must_use]
pub fn chi_square_quantile(p: f64, dof: u32) -> f64 {
    assert!(dof > 0, "chi-square needs dof >= 1");
    assert!(
        p > 0.0 && p < 1.0,
        "chi-square quantile requires p in (0,1), got {p}"
    );
    // Bracket: the mean is dof; expand upward until the CDF exceeds p.
    let mut lo = 0.0;
    let mut hi = f64::from(dof).max(1.0);
    while 1.0 - chi_square_sf(hi, dof) < p {
        hi *= 2.0;
        assert!(hi.is_finite(), "quantile bracket overflow");
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if 1.0 - chi_square_sf(mid, dof) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) <= 1e-10 * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Quantile (inverse CDF) of the standard normal distribution, Acklam's
/// algorithm (relative error < 1.15e-9), refined with one Halley step.
///
/// # Panics
///
/// Panics unless `p` lies strictly inside `(0, 1)`.
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal quantile requires p in (0,1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun / mpmath.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (2.0, 0.9953222650189527),
            (3.0, 0.9999779095030014),
        ];
        for (x, expected) in cases {
            assert!(
                (erf(x) - expected).abs() < 1e-11,
                "erf({x}) = {} vs {expected}",
                erf(x)
            );
            assert!((erf(-x) + expected).abs() < 1e-11, "odd symmetry at {x}");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for i in -40..=40 {
            let x = f64::from(i) * 0.1;
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn ln_gamma_reference_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        // Gamma(5) = 24.
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-11);
        // Gamma(0.5) = sqrt(pi).
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-11);
        // Factorial check at a larger value: ln(10!) where Gamma(11)=10!.
        let fact10: f64 = 3_628_800.0;
        assert!((ln_gamma(11.0) - fact10.ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_gamma_identities() {
        for &(a, x) in &[(0.5, 0.3), (1.0, 1.0), (2.5, 4.0), (10.0, 3.0), (3.0, 12.0)] {
            let p = gamma_p(a, x);
            let q = gamma_q(a, x);
            assert!((p + q - 1.0).abs() < 1e-12, "a={a}, x={x}");
            assert!((0.0..=1.0).contains(&p));
        }
        // P(1, x) = 1 - exp(-x) exactly.
        for &x in &[0.1, 0.5, 1.0, 3.0, 8.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert_eq!(gamma_q(2.0, 0.0), 1.0);
    }

    #[test]
    fn chi_square_reference_values() {
        // chi2 sf(x=dof) for a couple of standard table entries.
        // sf(3.841, 1) ~ 0.05; sf(5.991, 2) ~ 0.05; sf(18.307, 10) ~ 0.05.
        assert!((chi_square_sf(3.841, 1) - 0.05).abs() < 1e-3);
        assert!((chi_square_sf(5.991, 2) - 0.05).abs() < 1e-3);
        assert!((chi_square_sf(18.307, 10) - 0.05).abs() < 1e-3);
        assert!((chi_square_sf(0.0, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!((normal_cdf(3.0) - 0.9986501019683699).abs() < 1e-10);
    }

    #[test]
    fn chi_square_quantile_inverts_sf() {
        for &dof in &[1u32, 2, 4, 10, 60] {
            for &p in &[0.025, 0.5, 0.975] {
                let x = chi_square_quantile(p, dof);
                let back = 1.0 - chi_square_sf(x, dof);
                assert!((back - p).abs() < 1e-8, "dof={dof} p={p}: {back}");
            }
        }
        // Standard table entry: chi2_{0.95, 10} = 18.307.
        assert!((chi_square_quantile(0.95, 10) - 18.307).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "p in (0,1)")]
    fn chi_square_quantile_rejects_bounds() {
        let _ = chi_square_quantile(1.0, 3);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[1e-6, 0.001, 0.025, 0.25, 0.5, 0.8, 0.975, 0.999, 1.0 - 1e-6] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-10, "p = {p}, x = {x}");
        }
        assert!(normal_quantile(0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "p in (0,1)")]
    fn quantile_rejects_bounds() {
        let _ = normal_quantile(1.0);
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn ln_gamma_rejects_non_positive() {
        let _ = ln_gamma(0.0);
    }
}
