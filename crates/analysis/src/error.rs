//! Error type for the analysis toolkit.

use std::error::Error;
use std::fmt;

/// Errors reported by analysis routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// A routine needed more samples than it was given.
    NotEnoughData {
        /// Minimum number of samples required.
        needed: usize,
        /// Number actually provided.
        got: usize,
    },
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable constraint description.
        constraint: &'static str,
    },
    /// Input contained a NaN or infinity.
    NonFiniteData,
    /// Data was degenerate for the requested operation (e.g. zero
    /// variance where a spread is required).
    DegenerateData(&'static str),
    /// A streaming estimator was asked for a result before it had seen
    /// enough samples for the estimate to mean anything — distinct from
    /// [`AnalysisError::NotEnoughData`] in that the caller is expected
    /// to *handle* it (keep feeding, publish "unknown") rather than
    /// treat it as a usage error. Returning a spurious 0-entropy
    /// estimate here is exactly the failure mode this variant retires.
    InsufficientData {
        /// Minimum number of samples (bits, transitions) required.
        needed: usize,
        /// Number actually observed.
        got: usize,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::NotEnoughData { needed, got } => {
                write!(f, "needed at least {needed} samples, got {got}")
            }
            AnalysisError::InvalidParameter { name, constraint } => {
                write!(f, "parameter {name} must satisfy: {constraint}")
            }
            AnalysisError::NonFiniteData => write!(f, "input contained non-finite values"),
            AnalysisError::DegenerateData(what) => write!(f, "degenerate data: {what}"),
            AnalysisError::InsufficientData { needed, got } => {
                write!(
                    f,
                    "estimator has seen {got} samples but needs {needed} before its \
                     estimate is meaningful"
                )
            }
        }
    }
}

impl Error for AnalysisError {}

/// Validates that a slice holds at least `needed` finite samples.
pub(crate) fn require_finite(data: &[f64], needed: usize) -> Result<(), AnalysisError> {
    if data.len() < needed {
        return Err(AnalysisError::NotEnoughData {
            needed,
            got: data.len(),
        });
    }
    if data.iter().any(|x| !x.is_finite()) {
        return Err(AnalysisError::NonFiniteData);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(AnalysisError::NotEnoughData { needed: 3, got: 1 }
            .to_string()
            .contains("3"));
        assert!(AnalysisError::InvalidParameter {
            name: "bins",
            constraint: "must be positive"
        }
        .to_string()
        .contains("bins"));
        assert!(AnalysisError::NonFiniteData.to_string().contains("finite"));
        assert!(AnalysisError::DegenerateData("zero variance")
            .to_string()
            .contains("zero variance"));
        let short = AnalysisError::InsufficientData { needed: 64, got: 3 }.to_string();
        assert!(short.contains("64") && short.contains("3"));
    }

    #[test]
    fn require_finite_checks_both_conditions() {
        assert!(require_finite(&[1.0, 2.0], 2).is_ok());
        assert_eq!(
            require_finite(&[1.0], 2),
            Err(AnalysisError::NotEnoughData { needed: 2, got: 1 })
        );
        assert_eq!(
            require_finite(&[1.0, f64::NAN], 2),
            Err(AnalysisError::NonFiniteData)
        );
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<AnalysisError>();
    }
}
