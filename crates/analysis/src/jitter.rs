//! Jitter metrics on period series.
//!
//! Conventions follow the paper (Sec. IV): the **period jitter**
//! `sigma_period` is the standard deviation of the period population; the
//! **cycle-to-cycle jitter** is the standard deviation of the difference
//! between successive periods; the **accumulated jitter** over `m`
//! periods is the standard deviation of sums of `m` consecutive periods.

use crate::error::{require_finite, AnalysisError};
use crate::stats::Summary;

/// Period jitter: sample standard deviation of the periods.
///
/// # Errors
///
/// Returns an error for fewer than two periods or non-finite data.
///
/// # Examples
///
/// ```
/// use strent_analysis::jitter::period_jitter;
///
/// let sigma = period_jitter(&[100.0, 102.0, 98.0, 101.0, 99.0])?;
/// assert!(sigma > 1.0 && sigma < 2.0);
/// # Ok::<(), strent_analysis::AnalysisError>(())
/// ```
pub fn period_jitter(periods: &[f64]) -> Result<f64, AnalysisError> {
    require_finite(periods, 2)?;
    Ok(Summary::from_slice(periods).std_dev())
}

/// Cycle-to-cycle jitter: standard deviation of `T[i+1] - T[i]`.
///
/// # Errors
///
/// Returns an error for fewer than three periods or non-finite data.
pub fn cycle_to_cycle_jitter(periods: &[f64]) -> Result<f64, AnalysisError> {
    require_finite(periods, 3)?;
    let diffs: Vec<f64> = periods.windows(2).map(|w| w[1] - w[0]).collect();
    Ok(Summary::from_slice(&diffs).std_dev())
}

/// Accumulated jitter over `m` periods: standard deviation of sums of `m`
/// consecutive, non-overlapping periods.
///
/// For independent periods it grows as `sqrt(m) * sigma_period` — the
/// accumulation law the measurement method of Sec. V-D.2 relies on.
///
/// # Errors
///
/// Returns an error if `m == 0`, or fewer than `2m` periods are
/// available (at least two windows are needed for a deviation).
pub fn accumulated_jitter(periods: &[f64], m: usize) -> Result<f64, AnalysisError> {
    if m == 0 {
        return Err(AnalysisError::InvalidParameter {
            name: "m",
            constraint: "must be at least 1",
        });
    }
    require_finite(periods, 2 * m)?;
    let sums: Vec<f64> = periods.chunks_exact(m).map(|c| c.iter().sum()).collect();
    if sums.len() < 2 {
        return Err(AnalysisError::NotEnoughData {
            needed: 2 * m,
            got: periods.len(),
        });
    }
    Ok(Summary::from_slice(&sums).std_dev())
}

/// Sample autocorrelation of the period series at the given lag:
/// `corr(T[i], T[i+lag])`, in `[-1, 1]`.
///
/// Independent periods (IRO) give ~0 at every lag; the Charlie servo of
/// a self-timed ring *anti-correlates* successive periods (negative
/// lag-1 value) — the effect that biases the Eq. 6 divider method.
///
/// # Errors
///
/// Returns an error if `lag == 0`, fewer than `lag + 8` periods are
/// given, the data is non-finite, or the variance is zero.
pub fn period_autocorrelation(periods: &[f64], lag: usize) -> Result<f64, AnalysisError> {
    if lag == 0 {
        return Err(AnalysisError::InvalidParameter {
            name: "lag",
            constraint: "must be at least 1",
        });
    }
    require_finite(periods, lag + 8)?;
    let n = periods.len();
    let mean = periods.iter().sum::<f64>() / n as f64;
    let var = periods.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / n as f64;
    if var == 0.0 {
        return Err(AnalysisError::DegenerateData("zero period variance"));
    }
    let cov = (0..n - lag)
        .map(|i| (periods[i] - mean) * (periods[i + lag] - mean))
        .sum::<f64>()
        / (n - lag) as f64;
    Ok(cov / var)
}

/// The accumulation curve `(m, sigma_acc(m))` for `m = 1, 2, 4, ...` up
/// to the largest power of two with at least `min_windows` windows.
///
/// # Errors
///
/// Returns an error if even `m = 1` cannot be computed.
pub fn accumulation_curve(
    periods: &[f64],
    min_windows: usize,
) -> Result<Vec<(usize, f64)>, AnalysisError> {
    require_finite(periods, 2)?;
    let mut out = Vec::new();
    let mut m = 1;
    while periods.len() / m >= min_windows.max(2) {
        out.push((m, accumulated_jitter(periods, m)?));
        m *= 2;
    }
    if out.is_empty() {
        return Err(AnalysisError::NotEnoughData {
            needed: min_windows.max(2),
            got: periods.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::normal_quantile;

    /// Deterministic pseudo-Gaussian period series (shuffled quantiles).
    fn gaussian_periods(n: usize, mean: f64, sigma: f64) -> Vec<f64> {
        let mut v: Vec<f64> = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                mean + sigma * normal_quantile(u)
            })
            .collect();
        // Deterministic shuffle to break the sorted order.
        let mut state = 0x243f_6a88_85a3_08d3_u64;
        for i in (1..v.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    #[test]
    fn period_jitter_matches_configured_sigma() {
        let periods = gaussian_periods(20_000, 3333.0, 2.5);
        let sigma = period_jitter(&periods).expect("valid");
        assert!((sigma - 2.5).abs() < 0.05, "sigma {sigma}");
    }

    #[test]
    fn cycle_to_cycle_is_sqrt2_of_period_for_iid() {
        // For i.i.d. periods, var(T[i+1]-T[i]) = 2 var(T).
        let periods = gaussian_periods(40_000, 1000.0, 3.0);
        let cc = cycle_to_cycle_jitter(&periods).expect("valid");
        let expected = 3.0 * std::f64::consts::SQRT_2;
        assert!((cc - expected).abs() < 0.1, "cc {cc} vs {expected}");
    }

    #[test]
    fn accumulation_follows_sqrt_m_for_iid() {
        let periods = gaussian_periods(65_536, 500.0, 2.0);
        let curve = accumulation_curve(&periods, 64).expect("valid");
        assert!(curve.len() >= 8);
        for &(m, sigma) in &curve {
            let expected = 2.0 * (m as f64).sqrt();
            assert!(
                (sigma / expected - 1.0).abs() < 0.25,
                "m={m}: sigma {sigma} vs {expected}"
            );
        }
    }

    #[test]
    fn accumulated_jitter_window_bookkeeping() {
        let periods: Vec<f64> = (0..10).map(|i| 100.0 + f64::from(i % 2)).collect();
        // m=5 -> two windows.
        assert!(accumulated_jitter(&periods, 5).is_ok());
        // m=6 -> only one full window: not enough.
        assert!(accumulated_jitter(&periods, 6).is_err());
        assert!(accumulated_jitter(&periods, 0).is_err());
    }

    #[test]
    fn autocorrelation_signs() {
        // i.i.d. periods: near-zero autocorrelation at small lags.
        let iid = gaussian_periods(20_000, 1000.0, 2.0);
        let r1 = period_autocorrelation(&iid, 1).expect("enough");
        assert!(r1.abs() < 0.03, "iid lag-1 {r1}");
        // Alternating (anti-correlated) series: strongly negative lag 1,
        // positive lag 2.
        let alt: Vec<f64> = (0..1000)
            .map(|i| 1000.0 + if i % 2 == 0 { 2.0 } else { -2.0 })
            .collect();
        assert!(period_autocorrelation(&alt, 1).expect("enough") < -0.99);
        assert!(period_autocorrelation(&alt, 2).expect("enough") > 0.99);
        // Slowly drifting series: positive at small lags.
        let drift: Vec<f64> = (0..1000)
            .map(|i| 1000.0 + (f64::from(i) * 0.05).sin() * 3.0)
            .collect();
        assert!(period_autocorrelation(&drift, 1).expect("enough") > 0.9);
    }

    #[test]
    fn error_cases() {
        assert!(period_jitter(&[1.0]).is_err());
        assert!(cycle_to_cycle_jitter(&[1.0, 2.0]).is_err());
        assert!(period_jitter(&[1.0, f64::INFINITY]).is_err());
        assert!(accumulation_curve(&[1.0], 2).is_err());
        assert!(period_autocorrelation(&[1.0; 100], 0).is_err());
        assert!(period_autocorrelation(&[1.0; 5], 1).is_err());
        assert!(period_autocorrelation(&[1.0; 100], 1).is_err()); // zero var
    }
}
