//! Bit-pattern census statistics: the raw-material view behind the
//! Markov estimator.
//!
//! Where [`crate::markov`] models the stream as a chain and
//! [`crate::entropy`] predicts it from jitter, this module just counts
//! overlapping `k`-bit windows and reports what the counts say: the
//! most common pattern, a direct pattern min-entropy (with the same
//! Wald-style small-sample haircut as the Markov path estimate), and a
//! chi-square uniformity statistic. These are the quantities plotted in
//! the bit-pattern literature and the cheapest corruption detectors:
//! stuck, periodic and heavily biased streams all concentrate the
//! census on a handful of patterns.

use crate::error::AnalysisError;
use crate::special::{chi_square_sf, normal_quantile};

/// Maximum census window, matching [`crate::markov::MAX_ORDER`].
pub const MAX_WINDOW: usize = 16;

/// Overlapping `k`-bit pattern counts over a bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternCensus {
    k: usize,
    counts: Vec<u64>,
    total: u64,
}

impl PatternCensus {
    /// Counts every overlapping `k`-bit window of `bits` (any nonzero
    /// byte counts as a `1`).
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidParameter`] unless
    /// `1 <= k <= MAX_WINDOW`, and [`AnalysisError::InsufficientData`]
    /// when the stream holds fewer than one full window.
    pub fn from_bits(bits: &[u8], k: usize) -> Result<Self, AnalysisError> {
        if k == 0 || k > MAX_WINDOW {
            return Err(AnalysisError::InvalidParameter {
                name: "k",
                constraint: "between 1 and MAX_WINDOW",
            });
        }
        if bits.len() < k {
            return Err(AnalysisError::InsufficientData {
                needed: k,
                got: bits.len(),
            });
        }
        let mask = (1usize << k) - 1;
        let mut counts = vec![0u64; 1 << k];
        let mut window = 0usize;
        let mut filled = 0usize;
        for &b in bits {
            window = ((window << 1) | usize::from(b != 0)) & mask;
            filled += 1;
            if filled >= k {
                counts[window] += 1;
            }
        }
        Ok(PatternCensus {
            k,
            counts,
            total: (bits.len() - k + 1) as u64,
        })
    }

    /// The window width `k`.
    #[must_use]
    pub fn window(&self) -> usize {
        self.k
    }

    /// Number of windows counted.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The per-pattern counts, indexed by the pattern's bits
    /// (most-recent bit in the lowest position).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The most common pattern and its count (ties break toward the
    /// numerically smallest pattern).
    #[must_use]
    pub fn most_common(&self) -> (usize, u64) {
        let mut best = (0usize, self.counts[0]);
        for (p, &c) in self.counts.iter().enumerate().skip(1) {
            if c > best.1 {
                best = (p, c);
            }
        }
        best
    }

    /// Direct pattern min-entropy per bit: `-log2(p_up) / k` where
    /// `p_up` is the upper 99%-confidence bound on the most common
    /// pattern's probability. Clamped to `[0, 1]`.
    #[must_use]
    pub fn min_entropy(&self) -> f64 {
        let (_, c) = self.most_common();
        let n = self.total as f64;
        let p = c as f64 / n;
        let z = normal_quantile(0.995);
        let up = (p + z * (p * (1.0 - p) / n).sqrt()).min(1.0);
        if up <= 0.0 {
            return 1.0;
        }
        (-up.log2() / self.k as f64).clamp(0.0, 1.0)
    }

    /// Chi-square test of the census against the uniform pattern
    /// distribution: returns `(statistic, p_value)` with `2^k - 1`
    /// degrees of freedom. Overlapping windows are not independent, so
    /// treat the p-value as a ranking score, not a calibrated test.
    #[must_use]
    pub fn chi_square_uniform(&self) -> (f64, f64) {
        let bins = self.counts.len() as f64;
        let expected = self.total as f64 / bins;
        let stat: f64 = self
            .counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        let dof = (self.counts.len() - 1) as u32;
        (stat, chi_square_sf(stat, dof))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_window_and_short_streams() {
        assert!(PatternCensus::from_bits(&[1, 0, 1], 0).is_err());
        assert!(PatternCensus::from_bits(&[1, 0, 1], MAX_WINDOW + 1).is_err());
        assert_eq!(
            PatternCensus::from_bits(&[1, 0], 3).unwrap_err(),
            AnalysisError::InsufficientData { needed: 3, got: 2 }
        );
    }

    #[test]
    fn counts_every_overlapping_window() {
        // 1,1,0,1: windows of 2 are 11, 10, 01.
        let census = PatternCensus::from_bits(&[1, 1, 0, 1], 2).unwrap();
        assert_eq!(census.total(), 3);
        assert_eq!(census.counts(), &[0, 1, 1, 1]);
        assert_eq!(census.most_common(), (0b01, 1));
    }

    #[test]
    fn stuck_stream_concentrates_the_census() {
        let stuck = vec![1u8; 512];
        let census = PatternCensus::from_bits(&stuck, 3).unwrap();
        assert_eq!(census.most_common(), (0b111, 510));
        assert!(census.min_entropy() < 0.01);
        let (stat, p) = census.chi_square_uniform();
        assert!(stat > 100.0 && p < 1e-6);
    }

    #[test]
    fn balanced_stream_scores_high() {
        // A de Bruijn-ish cycling pattern is balanced at width 2 but
        // perfectly predictable — pattern entropy alone cannot see
        // that; the chi-square still flags longer windows.
        let bits: Vec<u8> = (0..2048).map(|i| ((i * 5) >> 2) as u8 & 1).collect();
        let census = PatternCensus::from_bits(&bits, 2).unwrap();
        let (_, count) = census.most_common();
        assert!(count < census.total() / 2);
        assert!(census.min_entropy() > 0.5);
    }
}
