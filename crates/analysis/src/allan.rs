//! Allan variance of period series.
//!
//! The Allan (two-sample) variance separates white period noise (slope
//! `-1` in `log sigma^2_A(m)` vs `log m`) from drift and flicker — a
//! useful companion to the accumulation curve when validating that the
//! simulated jitter really is white, as the paper's model assumes.

use crate::error::{require_finite, AnalysisError};

/// Allan variance at averaging factor `m`: half the mean squared
/// difference of successive non-overlapping means of `m` periods.
///
/// # Errors
///
/// Returns an error if `m == 0` or fewer than `2m` samples are given.
pub fn allan_variance(periods: &[f64], m: usize) -> Result<f64, AnalysisError> {
    if m == 0 {
        return Err(AnalysisError::InvalidParameter {
            name: "m",
            constraint: "must be at least 1",
        });
    }
    require_finite(periods, 2 * m)?;
    let means: Vec<f64> = periods
        .chunks_exact(m)
        .map(|c| c.iter().sum::<f64>() / m as f64)
        .collect();
    if means.len() < 2 {
        return Err(AnalysisError::NotEnoughData {
            needed: 2 * m,
            got: periods.len(),
        });
    }
    let sum_sq: f64 = means.windows(2).map(|w| (w[1] - w[0]).powi(2)).sum();
    Ok(sum_sq / (2.0 * (means.len() - 1) as f64))
}

/// Allan deviation (`sqrt` of the variance) at averaging factor `m`.
///
/// # Errors
///
/// Same conditions as [`allan_variance`].
pub fn allan_deviation(periods: &[f64], m: usize) -> Result<f64, AnalysisError> {
    Ok(allan_variance(periods, m)?.sqrt())
}

/// The Allan deviation curve for `m = 1, 2, 4, ...` while at least
/// `min_windows` windows remain.
///
/// # Errors
///
/// Returns an error if even `m = 1` cannot be computed.
pub fn allan_curve(
    periods: &[f64],
    min_windows: usize,
) -> Result<Vec<(usize, f64)>, AnalysisError> {
    require_finite(periods, 2)?;
    let mut out = Vec::new();
    let mut m = 1;
    while periods.len() / m >= min_windows.max(2) {
        out.push((m, allan_deviation(periods, m)?));
        m *= 2;
    }
    if out.is_empty() {
        return Err(AnalysisError::NotEnoughData {
            needed: min_windows.max(2),
            got: periods.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::normal_quantile;

    fn white_periods(count: usize, mean: f64, sigma: f64) -> Vec<f64> {
        let mut v: Vec<f64> = (0..count)
            .map(|i| {
                let u = (i as f64 + 0.5) / count as f64;
                mean + sigma * normal_quantile(u)
            })
            .collect();
        let mut state = 0x1234_5678_9abc_def0_u64;
        for i in (1..v.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    #[test]
    fn white_noise_allan_equals_classical_variance_at_m1() {
        let periods = white_periods(50_000, 1000.0, 2.0);
        let avar = allan_variance(&periods, 1).expect("valid");
        // For white noise AVAR(1) ~ sigma^2.
        assert!((avar - 4.0).abs() < 0.3, "avar {avar}");
    }

    #[test]
    fn white_noise_allan_falls_as_one_over_m() {
        let periods = white_periods(65_536, 1000.0, 2.0);
        let curve = allan_curve(&periods, 64).expect("valid");
        for &(m, adev) in &curve {
            let expected = 2.0 / (m as f64).sqrt();
            assert!(
                (adev / expected - 1.0).abs() < 0.3,
                "m={m}: adev {adev} vs {expected}"
            );
        }
    }

    #[test]
    fn linear_drift_floors_the_curve() {
        // Pure drift: successive means differ by a constant -> ADEV flat
        // (proportional to m * drift per sample, which grows with m).
        let periods: Vec<f64> = (0..4096).map(|i| 1000.0 + i as f64 * 0.01).collect();
        let a1 = allan_deviation(&periods, 1).expect("valid");
        let a64 = allan_deviation(&periods, 64).expect("valid");
        assert!(a64 > a1, "drift must grow with averaging: {a1} vs {a64}");
    }

    #[test]
    fn error_cases() {
        assert!(allan_variance(&[1.0, 2.0], 0).is_err());
        assert!(allan_variance(&[1.0], 1).is_err());
        assert!(allan_variance(&[1.0, 2.0, 3.0], 2).is_err());
        assert!(allan_curve(&[1.0], 2).is_err());
    }
}
