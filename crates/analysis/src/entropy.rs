//! Bit-pattern entropy model: min-entropy lower bounds for a sampled
//! oscillator as a function of the sampling ratio `q = sigma / T`.
//!
//! Model (Saarinen's bit-pattern analysis of ring-oscillator jitter):
//! the sampled source is a free-running oscillator of period `T` whose
//! phase diffuses between sample instants by a zero-mean Gaussian of
//! standard deviation `sigma` (the jitter *accumulated over one sampler
//! period*, not the per-cycle jitter — take it from
//! [`crate::jitter::accumulated_jitter`] or [`crate::allan`] at the
//! decimation factor). The sampled bit is the oscillator level, i.e.
//! `1` when the wrapped phase sits in the first half period. Given the
//! current phase `u` (in periods), the next bit is `1` with probability
//!
//! ```text
//! p1(u) = sum_m  Phi((m + 1/2 - u)/q) - Phi((m - u)/q)
//! ```
//!
//! (a wrapped Gaussian mass over the high half-periods). The best
//! guess of the next bit succeeds with `pmax(u) = max(p1, 1 - p1)`,
//! and averaging over the stationary (uniform) phase gives the
//! per-bit lower bound reported here:
//!
//! ```text
//! H_min(q) = -log2( E_u[ pmax(u) ] )
//! ```
//!
//! By Jensen's inequality this sits *below* the phase-averaged
//! conditional min-entropy, so it is a conservative claim: the true
//! unpredictability of the stream is at least `H_min(q)` bits per bit.
//! `H_min` is monotone in `q`, `0` at `q = 0` (a noiseless sampled
//! divider is deterministic) and approaches `1` once the phase fully
//! decorrelates between samples (`q` around one period).

use crate::error::AnalysisError;
use crate::jitter;
use crate::special::normal_cdf;
use crate::stats;

/// Midpoint-rule resolution of the phase average in
/// [`min_entropy_bound`]. Fixed so the bound is bit-reproducible.
pub const INTEGRATION_POINTS: usize = 1024;

/// Computes the sampling ratio `q = sigma / T`.
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidParameter`] unless `sigma_ps` is
/// finite and non-negative and `period_ps` is finite and positive.
pub fn sampling_ratio(sigma_ps: f64, period_ps: f64) -> Result<f64, AnalysisError> {
    if !(sigma_ps.is_finite() && sigma_ps >= 0.0) {
        return Err(AnalysisError::InvalidParameter {
            name: "sigma_ps",
            constraint: "finite and non-negative",
        });
    }
    if !(period_ps.is_finite() && period_ps > 0.0) {
        return Err(AnalysisError::InvalidParameter {
            name: "period_ps",
            constraint: "finite and positive",
        });
    }
    Ok(sigma_ps / period_ps)
}

/// The analytical per-bit min-entropy lower bound `H_min(q)` of the
/// phase-diffusion model (module docs), for sampling ratio `q`.
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidParameter`] unless `q` is finite
/// and non-negative.
pub fn min_entropy_bound(q: f64) -> Result<f64, AnalysisError> {
    if !(q.is_finite() && q >= 0.0) {
        return Err(AnalysisError::InvalidParameter {
            name: "q",
            constraint: "finite and non-negative",
        });
    }
    if q == 0.0 {
        return Ok(0.0);
    }
    // Enough wrapped-Gaussian terms that the truncated tail is far
    // below the integration error: 5 sigma on either side.
    let wraps = (5.0 * q).ceil() as i64 + 1;
    let n = INTEGRATION_POINTS;
    let mut mean_pmax = 0.0;
    for j in 0..n {
        let u = (j as f64 + 0.5) / n as f64;
        let mut p1 = 0.0;
        for m in -wraps..=wraps {
            let m = m as f64;
            p1 += normal_cdf((m + 0.5 - u) / q) - normal_cdf((m - u) / q);
        }
        mean_pmax += p1.max(1.0 - p1);
    }
    mean_pmax /= n as f64;
    Ok((-mean_pmax.log2()).clamp(0.0, 1.0))
}

/// The asymptotic *Shannon*-entropy lower bound of the same model,
/// `1 - 4 / (pi^2 ln 2) * exp(-2 pi^2 q^2)`, clamped to `[0, 1]`.
/// Shannon entropy never sits below min-entropy, so this bound always
/// dominates [`min_entropy_bound`]; it is reported alongside it for
/// comparison with the elementary-source literature.
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidParameter`] unless `q` is finite
/// and non-negative.
pub fn shannon_entropy_bound(q: f64) -> Result<f64, AnalysisError> {
    if !(q.is_finite() && q >= 0.0) {
        return Err(AnalysisError::InvalidParameter {
            name: "q",
            constraint: "finite and non-negative",
        });
    }
    let pi2 = std::f64::consts::PI * std::f64::consts::PI;
    let h = 1.0 - 4.0 / (pi2 * std::f64::consts::LN_2) * (-2.0 * pi2 * q * q).exp();
    Ok(h.clamp(0.0, 1.0))
}

/// A fully-derived sampling bound: the measured inputs and the bounds
/// they imply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingBound {
    /// Mean oscillator period, ps.
    pub period_ps: f64,
    /// Jitter accumulated over one sampler period, ps.
    pub sigma_acc_ps: f64,
    /// Sampling ratio `q = sigma_acc / period`.
    pub ratio: f64,
    /// The min-entropy lower bound per sampled bit.
    pub min_entropy: f64,
    /// The Shannon-entropy lower bound per sampled bit.
    pub shannon_entropy: f64,
}

/// Derives the full [`SamplingBound`] from a measured period series
/// and the sampler decimation factor `m` (the sampler period in units
/// of the oscillator period, rounded to cycles): the accumulated
/// jitter over `m` cycles comes from
/// [`crate::jitter::accumulated_jitter`], the mean period from the
/// series itself.
///
/// # Errors
///
/// Propagates the jitter measurement's errors (at least `m + 2`
/// periods are required) and the bound's parameter checks.
pub fn bound_from_periods(periods_ps: &[f64], m: usize) -> Result<SamplingBound, AnalysisError> {
    let sigma_acc_ps = jitter::accumulated_jitter(periods_ps, m)?;
    let period_ps = stats::mean(periods_ps)?;
    let ratio = sampling_ratio(sigma_acc_ps, period_ps)?;
    Ok(SamplingBound {
        period_ps,
        sigma_acc_ps,
        ratio,
        min_entropy: min_entropy_bound(ratio)?,
        shannon_entropy: shannon_entropy_bound(ratio)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(sampling_ratio(-1.0, 100.0).is_err());
        assert!(sampling_ratio(1.0, 0.0).is_err());
        assert!(min_entropy_bound(f64::NAN).is_err());
        assert!(min_entropy_bound(-0.1).is_err());
        assert!(shannon_entropy_bound(f64::INFINITY).is_err());
    }

    #[test]
    fn bound_is_zero_without_jitter_and_saturates_with_it() {
        assert_eq!(min_entropy_bound(0.0).unwrap(), 0.0);
        let h_tiny = min_entropy_bound(1e-4).unwrap();
        assert!(h_tiny < 1e-3, "q->0 must kill the bound, got {h_tiny}");
        let h_big = min_entropy_bound(2.0).unwrap();
        assert!(h_big > 0.999, "q=2 should saturate, got {h_big}");
    }

    #[test]
    fn bound_is_monotone_in_q() {
        let qs = [0.01, 0.05, 0.1, 0.2, 0.4, 0.8, 1.6];
        let hs: Vec<f64> = qs.iter().map(|&q| min_entropy_bound(q).unwrap()).collect();
        for pair in hs.windows(2) {
            assert!(pair[1] >= pair[0], "bound not monotone: {hs:?}");
        }
    }

    #[test]
    fn shannon_bound_dominates_min_entropy_bound() {
        for q in [0.05, 0.1, 0.2, 0.3, 0.5, 1.0] {
            let hmin = min_entropy_bound(q).unwrap();
            let hsh = shannon_entropy_bound(q).unwrap();
            assert!(
                hsh >= hmin - 1e-12,
                "Shannon {hsh} below min-entropy {hmin} at q={q}"
            );
        }
    }

    #[test]
    fn bound_from_periods_matches_direct_computation() {
        // A synthetic series with known mean and per-cycle sigma.
        let periods: Vec<f64> = (0..256)
            .map(|i| 1000.0 + if i % 2 == 0 { 25.0 } else { -25.0 })
            .collect();
        let b = bound_from_periods(&periods, 3).unwrap();
        assert!((b.period_ps - 1000.0).abs() < 1e-9);
        assert!(b.ratio > 0.0);
        assert_eq!(b.min_entropy, min_entropy_bound(b.ratio).unwrap());
        assert!(b.shannon_entropy >= b.min_entropy);
    }
}
