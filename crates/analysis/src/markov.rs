//! Order-`k` Markov min-entropy estimation over delivered bitstreams.
//!
//! The counterpart of the analytical bound in [`crate::entropy`]: where
//! the bound predicts entropy from measured jitter, this module
//! *estimates* it from the bits themselves, in the style of the
//! SP 800-90B Markov estimator. A [`MarkovCounts`] accumulates order-`k`
//! transition counts (the last `k` bits are the state); the estimate is
//! the per-bit min-entropy of the most likely length-[`PATH_LENGTH`]
//! path through the chain, computed with *upper-confidence* transition
//! probabilities (a small-sample haircut: every probability is inflated
//! by its Wald interval before the path search, so thin data lowers the
//! estimate rather than inflating it).
//!
//! A finite-order chain cannot see structure longer than its memory, so
//! the estimate is generally *optimistic* for quasi-periodic sources —
//! the analytical bound stays the claimable number and this estimator
//! is the cross-check and the online health signal (see
//! `docs/entropy_estimation.md`).
//!
//! Feeding is streaming and chunk-invariant: splitting a stream across
//! any number of [`MarkovCounts::feed`] calls yields bit-identical
//! counts to feeding it whole.

use crate::error::AnalysisError;
use crate::special::normal_quantile;

/// Maximum supported chain order (states = `2^order`; the count table
/// is `2^(order+1)` wide, so 16 keeps it well under a megabyte).
pub const MAX_ORDER: usize = 16;

/// Length of the most-likely path whose probability is converted to a
/// per-bit min-entropy (the SP 800-90B Markov estimator uses 128).
pub const PATH_LENGTH: usize = 128;

/// Two-sided 99% confidence level used for the default haircut.
pub const DEFAULT_CONFIDENCE: f64 = 0.99;

/// Streaming order-`k` transition counts over a bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkovCounts {
    order: usize,
    /// `counts[(state << 1) | bit]`: times `bit` followed `state`.
    counts: Vec<u64>,
    /// The last `order` bits, as the next transition's state.
    context: usize,
    /// Bits consumed toward the initial context (saturates at `order`).
    primed: usize,
    /// Total transitions recorded.
    total: u64,
}

impl MarkovCounts {
    /// Creates an empty counter of the given order.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidParameter`] unless
    /// `1 <= order <= MAX_ORDER`.
    pub fn new(order: usize) -> Result<Self, AnalysisError> {
        if order == 0 || order > MAX_ORDER {
            return Err(AnalysisError::InvalidParameter {
                name: "order",
                constraint: "between 1 and MAX_ORDER",
            });
        }
        Ok(MarkovCounts {
            order,
            counts: vec![0; 1 << (order + 1)],
            context: 0,
            primed: 0,
            total: 0,
        })
    }

    /// The chain order `k`.
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }

    /// Total transitions observed so far.
    #[must_use]
    pub fn observed(&self) -> u64 {
        self.total
    }

    /// Transitions required before [`MarkovCounts::min_entropy`]
    /// answers: enough for every state to plausibly have been visited
    /// a handful of times.
    #[must_use]
    pub fn required(&self) -> u64 {
        (4_u64 << self.order).max(64)
    }

    /// Feeds a chunk of bits (any nonzero byte counts as a `1`). The
    /// first `order` bits of the whole stream prime the context and
    /// record no transition.
    pub fn feed(&mut self, bits: &[u8]) {
        let mask = (1usize << self.order) - 1;
        for &b in bits {
            let bit = usize::from(b != 0);
            if self.primed < self.order {
                self.context = ((self.context << 1) | bit) & mask;
                self.primed += 1;
                continue;
            }
            self.counts[(self.context << 1) | bit] += 1;
            self.total += 1;
            self.context = ((self.context << 1) | bit) & mask;
        }
    }

    /// The min-entropy estimate (bits per bit, in `[0, 1]`) at the
    /// default [`DEFAULT_CONFIDENCE`] haircut.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InsufficientData`] until
    /// [`MarkovCounts::required`] transitions have been observed —
    /// callers must treat that as "estimate unavailable", never as
    /// zero entropy.
    pub fn min_entropy(&self) -> Result<f64, AnalysisError> {
        self.min_entropy_at(DEFAULT_CONFIDENCE)
    }

    /// [`MarkovCounts::min_entropy`] at an explicit two-sided
    /// confidence level in `(0, 1)` (larger level = larger haircut =
    /// more conservative estimate).
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InsufficientData`] when underfed and
    /// [`AnalysisError::InvalidParameter`] for a level outside `(0, 1)`.
    pub fn min_entropy_at(&self, confidence: f64) -> Result<f64, AnalysisError> {
        if !(confidence > 0.0 && confidence < 1.0) {
            return Err(AnalysisError::InvalidParameter {
                name: "confidence",
                constraint: "strictly between 0 and 1",
            });
        }
        let required = self.required();
        if self.total < required {
            return Err(AnalysisError::InsufficientData {
                needed: required as usize,
                got: self.total as usize,
            });
        }
        let z = normal_quantile(0.5 + confidence / 2.0);
        let states = 1usize << self.order;
        let mask = states - 1;
        // Upper-confidence log2 transition probabilities. Unvisited
        // states get probability-1 transitions: we know nothing about
        // them, and the haircut must never manufacture entropy.
        let mut log_up = vec![0.0f64; states << 1];
        for s in 0..states {
            let ones = self.counts[(s << 1) | 1];
            let zeros = self.counts[s << 1];
            let n = ones + zeros;
            for bit in 0..2usize {
                let idx = (s << 1) | bit;
                log_up[idx] = if n == 0 {
                    0.0
                } else {
                    let p = self.counts[idx] as f64 / n as f64;
                    let up = (p + z * (p * (1.0 - p) / n as f64).sqrt()).min(1.0);
                    if up <= 0.0 {
                        f64::NEG_INFINITY
                    } else {
                        up.log2().min(0.0)
                    }
                };
            }
        }
        // Upper-confidence initial distribution from state occupancy.
        let mut value = vec![f64::NEG_INFINITY; states];
        for s in 0..states {
            let n = self.counts[s << 1] + self.counts[(s << 1) | 1];
            if n > 0 {
                let f = n as f64 / self.total as f64;
                let up = (f + z * (f * (1.0 - f) / self.total as f64).sqrt()).min(1.0);
                value[s] = up.log2().min(0.0);
            }
        }
        // Most likely path of PATH_LENGTH emitted bits, in log2 domain.
        let mut next = vec![f64::NEG_INFINITY; states];
        for _ in 0..PATH_LENGTH {
            for x in next.iter_mut() {
                *x = f64::NEG_INFINITY;
            }
            for s in 0..states {
                if value[s] == f64::NEG_INFINITY {
                    continue;
                }
                for bit in 0..2usize {
                    let cand = value[s] + log_up[(s << 1) | bit];
                    let dest = ((s << 1) | bit) & mask;
                    if cand > next[dest] {
                        next[dest] = cand;
                    }
                }
            }
            std::mem::swap(&mut value, &mut next);
        }
        let best = value.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if best == f64::NEG_INFINITY {
            // Cannot happen with total > 0, but never divide into it.
            return Ok(1.0);
        }
        Ok((-best / PATH_LENGTH as f64).clamp(0.0, 1.0))
    }
}

/// One-shot convenience: counts the whole stream and estimates.
///
/// # Errors
///
/// Returns [`AnalysisError::InsufficientData`] when the stream is
/// shorter than `order + 1` bits (no transition can even be formed) or
/// too short for a meaningful estimate, and
/// [`AnalysisError::InvalidParameter`] for an unsupported order.
pub fn markov_min_entropy(bits: &[u8], order: usize) -> Result<f64, AnalysisError> {
    let mut counts = MarkovCounts::new(order)?;
    if bits.len() < order + 1 {
        return Err(AnalysisError::InsufficientData {
            needed: order + 1,
            got: bits.len(),
        });
    }
    counts.feed(bits);
    counts.min_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alternating(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 2) as u8).collect()
    }

    /// A tiny deterministic LCG bit generator for test data.
    fn pseudo_random(n: usize, mut state: u64) -> Vec<u8> {
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                ((state >> 60) & 1) as u8
            })
            .collect()
    }

    #[test]
    fn rejects_order_zero_and_huge_orders() {
        assert!(MarkovCounts::new(0).is_err());
        assert!(MarkovCounts::new(MAX_ORDER + 1).is_err());
    }

    #[test]
    fn short_stream_is_insufficient_not_zero() {
        let err = markov_min_entropy(&[1, 0], 3).unwrap_err();
        assert_eq!(err, AnalysisError::InsufficientData { needed: 4, got: 2 });
        // Even past the priming length, thin data must refuse rather
        // than answer.
        let err = markov_min_entropy(&alternating(16), 3).unwrap_err();
        assert!(matches!(err, AnalysisError::InsufficientData { .. }));
    }

    #[test]
    fn stuck_and_periodic_streams_estimate_near_zero() {
        let stuck = vec![1u8; 4096];
        let h = markov_min_entropy(&stuck, 2).unwrap();
        assert!(h < 0.02, "stuck stream estimated {h}");
        let h = markov_min_entropy(&alternating(4096), 2).unwrap();
        assert!(h < 0.05, "alternating stream estimated {h}");
    }

    #[test]
    fn balanced_pseudo_random_estimates_high() {
        let bits = pseudo_random(32_768, 42);
        let h = markov_min_entropy(&bits, 2).unwrap();
        assert!(h > 0.85, "random-looking stream estimated only {h}");
        assert!(h <= 1.0);
    }

    #[test]
    fn haircut_is_monotone_in_confidence() {
        let bits = pseudo_random(4096, 7);
        let mut counts = MarkovCounts::new(2).unwrap();
        counts.feed(&bits);
        let loose = counts.min_entropy_at(0.5).unwrap();
        let tight = counts.min_entropy_at(0.999).unwrap();
        assert!(
            tight <= loose + 1e-12,
            "bigger haircut must not raise the estimate: {tight} vs {loose}"
        );
    }

    #[test]
    fn feeding_in_chunks_is_invariant() {
        let bits = pseudo_random(8192, 99);
        let mut whole = MarkovCounts::new(4).unwrap();
        whole.feed(&bits);
        let mut chunked = MarkovCounts::new(4).unwrap();
        for chunk in bits.chunks(17) {
            chunked.feed(chunk);
        }
        assert_eq!(whole, chunked);
        assert_eq!(
            whole.min_entropy().unwrap(),
            chunked.min_entropy().unwrap()
        );
    }

    #[test]
    fn biased_stream_sits_between_stuck_and_fair() {
        // 1 in 8 bits are ones: min-entropy around -log2(7/8) ~ 0.19.
        let bits: Vec<u8> = (0..16_384).map(|i| u8::from(i % 8 == 0)).collect();
        let h = markov_min_entropy(&bits, 1).unwrap();
        assert!(h > 0.01 && h < 0.4, "biased stream estimated {h}");
    }
}
