//! Minimal `poll(2)` shim for the readiness-driven socket frontend.
//!
//! The workspace vendors pure-Rust stubs only (`docs/offline_deps.md`),
//! so there is no `libc` crate to lean on. The event loop needs exactly
//! one syscall that `std` does not expose — `poll(2)` — and this module
//! is the whole FFI surface: one `#[repr(C)]` struct matching
//! `struct pollfd` and one foreign function. Everything else in the
//! crate stays safe Rust; the wake channel, for instance, is a plain
//! `UnixStream::pair`, not a `pipe(2)` binding.
//!
//! The layout contract is stable: on every Linux ABI `struct pollfd` is
//! `{ int fd; short events; short revents; }` and `nfds_t` is
//! `unsigned long` (POSIX requires an unsigned integer type; glibc and
//! musl both use `unsigned long`).

use std::io;
use std::os::unix::io::RawFd;

/// There is data to read.
pub const POLLIN: i16 = 0x001;
/// Writing will not block (buffer space available).
pub const POLLOUT: i16 = 0x004;
/// An error condition on the descriptor (revents only).
pub const POLLERR: i16 = 0x008;
/// The peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// The descriptor is not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One descriptor's interest set and readiness results — ABI-compatible
/// with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollFd {
    /// The descriptor to watch (a negative fd is ignored by the kernel,
    /// which is how unused slots are parked).
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events, filled in by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events`, with `revents` cleared.
    #[must_use]
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the kernel reported readable data (or a hangup/error,
    /// which a reader must also observe — the next `read` returns the
    /// EOF or the error).
    #[must_use]
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// Whether the kernel reported the descriptor writable.
    #[must_use]
    pub fn writable(&self) -> bool {
        self.revents & POLLOUT != 0
    }

    /// Whether the kernel reported an exceptional condition (error,
    /// hangup or an invalid descriptor).
    #[must_use]
    pub fn failed(&self) -> bool {
        self.revents & (POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

extern "C" {
    /// `poll(2)`. Reads `nfds` entries from `fds` and writes back each
    /// entry's `revents`; never touches memory beyond that slice.
    fn poll(fds: *mut PollFd, nfds: core::ffi::c_ulong, timeout: core::ffi::c_int) -> core::ffi::c_int;
}

/// Waits for readiness on `fds`, at most `timeout_ms` milliseconds
/// (negative blocks indefinitely, zero returns immediately).
///
/// Returns the number of entries with a nonzero `revents`. `EINTR` is
/// swallowed and reported as zero ready descriptors — callers loop
/// anyway, and a signal must not kill the event loop.
///
/// # Errors
///
/// Any other `poll(2)` failure (`EINVAL` for an absurd nfds, `ENOMEM`).
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // The kernel reads and writes exactly `fds.len()` entries.
    // SAFETY: `fds` is a valid, exclusively borrowed slice of
    // `#[repr(C)]` PollFd entries layout-identical to `struct pollfd`,
    // and no pointer is retained after the call returns.
    let rc = unsafe {
        poll(
            fds.as_mut_ptr(),
            fds.len() as core::ffi::c_ulong,
            timeout_ms,
        )
    };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn pollfd_layout_matches_struct_pollfd() {
        assert_eq!(std::mem::size_of::<PollFd>(), 8);
        assert_eq!(std::mem::align_of::<PollFd>(), 4);
    }

    #[test]
    fn empty_set_times_out_immediately() {
        let mut fds: Vec<PollFd> = Vec::new();
        assert_eq!(poll_fds(&mut fds, 0).expect("polls"), 0);
    }

    #[test]
    fn readability_is_reported_after_a_write() {
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).expect("polls"), 0, "idle socket");
        assert!(!fds[0].readable());
        a.write_all(b"x").expect("writes");
        let ready = poll_fds(&mut fds, 1000).expect("polls");
        assert_eq!(ready, 1);
        assert!(fds[0].readable());
        assert!(!fds[0].failed());
    }

    #[test]
    fn hangup_is_reported_when_the_peer_drops() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        drop(a);
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let ready = poll_fds(&mut fds, 1000).expect("polls");
        assert_eq!(ready, 1);
        // A dropped peer is readable (EOF) and flagged as a hangup.
        assert!(fds[0].readable());
    }

    #[test]
    fn writability_is_immediate_on_a_fresh_socket() {
        let (a, _b) = UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let ready = poll_fds(&mut fds, 1000).expect("polls");
        assert_eq!(ready, 1);
        assert!(fds[0].writable());
    }
}
