//! The framed wire protocol of the socket frontend.
//!
//! Every message is one frame: a 1-byte opcode, a 4-byte little-endian
//! payload length, then the payload. The client speaks first:
//!
//! | opcode | dir | payload |
//! |---|---|---|
//! | `HELLO` (0x01) | →  | `u32` client id |
//! | `REQ` (0x02)   | →  | `u32` byte count |
//! | `CLOSE` (0x03) | →  | empty |
//! | `HELLO_OK` (0x81) | ← | empty |
//! | `OK` (0x82)    | ←  | the granted bytes |
//! | `BUSY` (0x83)  | ←  | `u32` in-flight count at rejection |
//! | `ERR` (0x84)   | ←  | UTF-8 message |
//! | `RATE_LIMITED` (0x85) | ← | `u32` microseconds until retry |
//! | `SHEDDING` (0x86) | ← | `u32` queued requests at rejection |
//!
//! Frames are capped at [`MAX_FRAME`] bytes; an oversized length field
//! is a protocol error, not an allocation. The codec is transport
//! agnostic: the blocking [`read_frame`]/[`write_frame`] pair works on
//! anything `Read`/`Write`, and the incremental [`FrameDecoder`] +
//! [`encode_frame`] pair carries the same grammar over nonblocking
//! sockets, where a frame arrives (or departs) in arbitrary fragments.
//! See `docs/serving.md` for the session grammar.

use std::io::{self, Read, Write};

/// Client hello carrying its id.
pub const OP_HELLO: u8 = 0x01;
/// Request for N bytes.
pub const OP_REQ: u8 = 0x02;
/// Client is done; the server closes the session.
pub const OP_CLOSE: u8 = 0x03;
/// Registration accepted.
pub const OP_HELLO_OK: u8 = 0x81;
/// Grant: the payload is the requested bytes.
pub const OP_OK: u8 = 0x82;
/// Typed backpressure rejection.
pub const OP_BUSY: u8 = 0x83;
/// Terminal error; the server closes the session after sending it.
pub const OP_ERR: u8 = 0x84;
/// Typed backpressure: the client's token bucket is empty; the payload
/// says how long to wait before retrying.
pub const OP_RATE_LIMITED: u8 = 0x85;
/// Typed backpressure: the whole service is over its global queue
/// watermark and shedding load regardless of per-client budgets.
pub const OP_SHEDDING: u8 = 0x86;

/// Maximum payload size accepted or sent (1 MiB).
pub const MAX_FRAME: usize = 1 << 20;

/// Writes one frame and flushes.
///
/// # Errors
///
/// `InvalidInput` for an oversized payload, otherwise any transport
/// write error.
pub fn write_frame<W: Write>(w: &mut W, op: u8, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload {} exceeds {MAX_FRAME}", payload.len()),
        ));
    }
    w.write_all(&[op])?;
    w.write_all(&u32::try_from(payload.len()).expect("bounded by MAX_FRAME").to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame.
///
/// Blocking reads honor whatever read timeout the caller armed on the
/// transport (the socket server sets one on every connection, so a
/// stalled peer surfaces as `WouldBlock`/`TimedOut` here rather than a
/// hang).
///
/// # Errors
///
/// `InvalidData` for an oversized length field, `UnexpectedEof` for a
/// truncated frame, otherwise any transport read error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<(u8, Vec<u8>)> {
    let mut head = [0u8; 5];
    // Bounded by the caller-armed read timeout on the transport.
    r.read_exact(&mut head)?;
    let op = head[0];
    let len = u32::from_le_bytes([head[1], head[2], head[3], head[4]]) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len];
    // Bounded by the caller-armed read timeout on the transport.
    r.read_exact(&mut payload)?;
    Ok((op, payload))
}

/// Appends one encoded frame to `buf` without flushing — the write
/// half of the nonblocking path, where the event loop drains the buffer
/// as the socket reports writable.
///
/// # Errors
///
/// `InvalidInput` for an oversized payload (nothing is appended).
pub fn encode_frame(buf: &mut Vec<u8>, op: u8, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload {} exceeds {MAX_FRAME}", payload.len()),
        ));
    }
    buf.reserve(5 + payload.len());
    buf.push(op);
    buf.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("bounded by MAX_FRAME")
            .to_le_bytes(),
    );
    buf.extend_from_slice(payload);
    Ok(())
}

/// Incremental frame decoder for nonblocking transports.
///
/// Feed it whatever fragments the socket yields — a byte at a time, a
/// frame and a half, three coalesced frames — and pull complete frames
/// out with [`FrameDecoder::next_frame`]. An oversized length field is
/// rejected as soon as the 5-byte header is visible, before any payload
/// accumulates, so a hostile peer cannot make the decoder buffer more
/// than `MAX_FRAME + 5` bytes.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted once it outgrows the tail.
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    #[must_use]
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Bytes buffered but not yet returned as frames.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Appends raw transport bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: once the consumed prefix dominates,
        // shift the tail down so the buffer stays ~one frame large.
        if self.pos > 0 && self.pos >= self.buf.len().saturating_sub(self.pos) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// The next complete frame, or `None` if more bytes are needed.
    ///
    /// # Errors
    ///
    /// `InvalidData` for a length field exceeding [`MAX_FRAME`]; the
    /// decoder is poisoned afterwards (the stream has no recoverable
    /// framing) and the connection should be dropped.
    pub fn next_frame(&mut self) -> io::Result<Option<(u8, Vec<u8>)>> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 5 {
            return Ok(None);
        }
        let op = avail[0];
        let len = u32::from_le_bytes([avail[1], avail[2], avail[3], avail[4]]) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds {MAX_FRAME}"),
            ));
        }
        if avail.len() < 5 + len {
            return Ok(None);
        }
        let payload = avail[5..5 + len].to_vec();
        self.pos += 5 + len;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(Some((op, payload)))
    }
}

/// Parses the 4-byte little-endian integer payload of `HELLO`/`REQ`/
/// `BUSY` frames.
///
/// # Errors
///
/// `InvalidData` if the payload is not exactly four bytes.
pub fn parse_u32(payload: &[u8]) -> io::Result<u32> {
    let bytes: [u8; 4] = payload.try_into().map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected a 4-byte integer payload, got {} bytes", payload.len()),
        )
    })?;
    Ok(u32::from_le_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_HELLO, &7u32.to_le_bytes()).expect("writes");
        write_frame(&mut buf, OP_OK, &[0xAB, 0xCD]).expect("writes");
        write_frame(&mut buf, OP_CLOSE, &[]).expect("writes");
        let mut cursor = Cursor::new(buf);
        let (op, payload) = read_frame(&mut cursor).expect("reads");
        assert_eq!(op, OP_HELLO);
        assert_eq!(parse_u32(&payload).expect("4 bytes"), 7);
        let (op, payload) = read_frame(&mut cursor).expect("reads");
        assert_eq!((op, payload.as_slice()), (OP_OK, &[0xAB, 0xCD][..]));
        let (op, payload) = read_frame(&mut cursor).expect("reads");
        assert_eq!((op, payload.len()), (OP_CLOSE, 0));
        assert!(read_frame(&mut cursor).is_err(), "stream exhausted");
    }

    #[test]
    fn oversized_length_field_is_rejected_without_allocating() {
        let mut buf = vec![OP_OK];
        buf.extend((MAX_FRAME as u32 + 1).to_le_bytes());
        let err = read_frame(&mut Cursor::new(buf)).expect_err("too large");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_OK, &[1, 2, 3, 4]).expect("writes");
        buf.truncate(buf.len() - 2);
        let err = read_frame(&mut Cursor::new(buf)).expect_err("truncated");
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_payload_is_rejected_on_write() {
        let mut buf = Vec::new();
        let huge = vec![0u8; MAX_FRAME + 1];
        let err = write_frame(&mut buf, OP_OK, &huge).expect_err("too large");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(buf.is_empty(), "nothing written");
    }

    #[test]
    fn bad_integer_payloads_are_rejected() {
        assert!(parse_u32(&[1, 2, 3]).is_err());
        assert!(parse_u32(&[1, 2, 3, 4, 5]).is_err());
        assert_eq!(parse_u32(&42u32.to_le_bytes()).expect("4 bytes"), 42);
    }

    #[test]
    fn decoder_reassembles_byte_at_a_time_input() {
        let mut stream = Vec::new();
        write_frame(&mut stream, OP_REQ, &64u32.to_le_bytes()).expect("writes");
        write_frame(&mut stream, OP_OK, &[9, 8, 7]).expect("writes");
        let mut decoder = FrameDecoder::new();
        let mut frames = Vec::new();
        for byte in stream {
            decoder.feed(&[byte]);
            while let Some(frame) = decoder.next_frame().expect("well-formed") {
                frames.push(frame);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].0, OP_REQ);
        assert_eq!(parse_u32(&frames[0].1).expect("4 bytes"), 64);
        assert_eq!(frames[1], (OP_OK, vec![9, 8, 7]));
        assert_eq!(decoder.pending(), 0);
    }

    #[test]
    fn decoder_handles_coalesced_frames_in_one_feed() {
        let mut stream = Vec::new();
        write_frame(&mut stream, OP_HELLO, &1u32.to_le_bytes()).expect("writes");
        write_frame(&mut stream, OP_REQ, &1u32.to_le_bytes()).expect("writes");
        write_frame(&mut stream, OP_CLOSE, &[]).expect("writes");
        let mut decoder = FrameDecoder::new();
        decoder.feed(&stream);
        let ops: Vec<u8> = std::iter::from_fn(|| decoder.next_frame().expect("well-formed"))
            .map(|(op, _)| op)
            .collect();
        assert_eq!(ops, vec![OP_HELLO, OP_REQ, OP_CLOSE]);
    }

    #[test]
    fn decoder_rejects_oversized_length_from_the_header_alone() {
        let mut decoder = FrameDecoder::new();
        decoder.feed(&[OP_OK]);
        decoder.feed(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let err = decoder.next_frame().expect_err("oversized");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn encode_frame_matches_write_frame_bytes() {
        let mut blocking = Vec::new();
        write_frame(&mut blocking, OP_BUSY, &3u32.to_le_bytes()).expect("writes");
        let mut buffered = Vec::new();
        encode_frame(&mut buffered, OP_BUSY, &3u32.to_le_bytes()).expect("encodes");
        assert_eq!(blocking, buffered);
        let huge = vec![0u8; MAX_FRAME + 1];
        assert!(encode_frame(&mut buffered, OP_OK, &huge).is_err());
        assert_eq!(blocking, buffered, "failed encode appends nothing");
    }
}
