//! One pooled entropy source: a live ring, its sampler, conditioner and
//! health monitor, plus the quarantine → drain → re-lock lifecycle.
//!
//! The batch is the unit of health gating: `batch_raw_bits` raw samples
//! are produced, fed to the [`HealthMonitor`], and delivered *only if no
//! sample alarmed*. An alarmed batch is discarded wholesale — the
//! conditioner never sees a bit from it, so unhealthy randomness cannot
//! leak into served bytes through carried conditioner state. The source
//! then drains in quarantine until the re-lock criterion
//! ([`rising_interval_cv`] below the configured threshold, the same
//! figure of merit the fault experiments use) passes, or is replaced by
//! a fresh ring after `max_relock_windows` failures.
//!
//! Everything here is a pure function of the [`SourceSpec`] and
//! [`PoolConfig`]: no wall clock, no global state. That purity is what
//! makes the pool's served stream independent of worker-thread count.

use strent_rings::fault::rising_interval_cv;
use strent_rings::surrogate::{EntropySource, SourceBackend};
use strent_sim::{RngTree, SimRng, Time};
use strent_trng::postprocess::StreamConditioner;
use strent_trng::sampler::Sampler;
use strent_trng::{BitString, HealthMonitor};
use strentropy::pool::{EntropyEstimate, PoolConfig, SourceSpec, SourceState, SourceStats};

use crate::error::ServeError;
use crate::estimator::RateEstimator;

/// RNG stream key for metastability coin flips — distinct from any
/// component key the simulator derives from the same seed.
const META_RNG_KEY: u64 = 0xD0F1_CA11;

/// Seed stride between ring generations of one source slot.
const GENERATION_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// A live, health-gated entropy source occupying one pool slot.
#[derive(Debug)]
pub struct PooledSource {
    index: usize,
    spec: SourceSpec,
    config: PoolConfig,
    stream: EntropySource,
    sampler: Sampler,
    meta_rng: SimRng,
    conditioner: StreamConditioner,
    monitor: HealthMonitor,
    state: SourceState,
    stats: SourceStats,
    generation: u64,
    /// Start instant of the next raw batch, ps.
    cursor_ps: f64,
    bit_carry: BitString,
    /// Sliding-window Markov estimator over the *delivered* bits.
    estimator: RateEstimator,
}

impl PooledSource {
    /// Builds the source for pool slot `index`.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid configuration or a ring that
    /// fails static verification at build time.
    pub fn build(
        index: usize,
        spec: &SourceSpec,
        config: &PoolConfig,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        // All ring construction goes through the backend selector so
        // the surrogate fallback rules cannot be bypassed (simlint
        // SL109 enforces this for the whole serving layer).
        let stream = EntropySource::build(
            &spec.ring.stream_config(),
            &spec.board(index),
            spec.seed,
            spec.fault.as_ref(),
            spec.backend,
        )?;
        let period = stream.expected_period_ps();
        let sampler = Sampler::new(
            config.sample_period_factor * period,
            config.meta_window_ps,
        )?;
        Ok(PooledSource {
            index,
            spec: spec.clone(),
            config: config.clone(),
            sampler,
            meta_rng: RngTree::new(spec.seed).stream(META_RNG_KEY),
            conditioner: StreamConditioner::new(config.conditioner),
            monitor: HealthMonitor::new(config.claimed_min_entropy)?,
            state: SourceState::Healthy,
            stats: SourceStats::default(),
            generation: 0,
            cursor_ps: config.warmup_periods * period,
            bit_carry: BitString::new(),
            estimator: RateEstimator::new(config.entropy_order, config.entropy_window_bits)?,
            stream,
        })
    }

    /// Pool slot of this source.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn state(&self) -> SourceState {
        self.state
    }

    /// Lifetime counters (alarms are monotone across quarantines).
    #[must_use]
    pub fn stats(&self) -> SourceStats {
        self.stats
    }

    /// Ring generation: 0 for the original, +1 per replacement.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The online min-entropy estimate of this source's recently
    /// *delivered* bits, or `None` while the sliding window is still
    /// too short for a verdict — "no estimate yet", never "zero
    /// entropy", so a freshly started or re-locked source is not
    /// penalised for its empty window (the estimator's typed
    /// `InsufficientData` case, mapped to `None` below).
    #[must_use]
    pub fn entropy(&self) -> Option<EntropyEstimate> {
        self.estimator.entropy_rate()
    }

    /// The waveform backend the fallback rules actually selected (may
    /// be [`SourceBackend::FullSim`] even for a surrogate-requesting
    /// spec — e.g. while a fault plan is armed).
    #[must_use]
    pub fn backend(&self) -> SourceBackend {
        self.stream.selected_backend()
    }

    /// Produces one raw batch of `batch_raw_bits` samples starting at
    /// the cursor, advancing the simulation as far as needed.
    fn produce_raw_batch(&mut self) -> Result<BitString, ServeError> {
        let count = self.config.batch_raw_bits;
        let t0 = Time::from_ps(self.cursor_ps);
        // Simulate past the last sample instant plus the metastability
        // half-window, so no future transition can straddle a sample.
        let needed_ps =
            self.cursor_ps + self.sampler.period_ps() * count as f64 + self.sampler.meta_window_ps();
        let now_ps = self.stream.now().as_ps();
        if now_ps < needed_ps {
            self.stream.advance_by(needed_ps - now_ps)?;
        }
        let bits = self.sampler.sample_trace_until(
            self.stream.trace(),
            t0,
            count,
            self.stream.now(),
            &mut self.meta_rng,
        )?;
        self.cursor_ps += self.sampler.period_ps() * count as f64;
        // Keep one re-lock window of history; drop the rest.
        let keep_ps = self.relock_window_ps() + self.sampler.meta_window_ps();
        if self.cursor_ps > keep_ps {
            self.stream.prune_before(Time::from_ps(self.cursor_ps - keep_ps));
        }
        Ok(bits)
    }

    fn relock_window_ps(&self) -> f64 {
        self.config.relock_window_periods * self.stream.expected_period_ps()
    }

    /// Delivers the next non-empty health-passed byte chunk, running
    /// the quarantine lifecycle as many times as the ring demands.
    ///
    /// # Errors
    ///
    /// Returns an error only for unrecoverable simulator failures — a
    /// merely unhealthy ring is handled (quarantined, re-locked or
    /// replaced), never surfaced.
    pub fn next_batch(&mut self) -> Result<Vec<u8>, ServeError> {
        loop {
            let raw = self.produce_raw_batch()?;
            let alarmed = self.monitor.scan_chunk(&raw);
            self.stats.alarms = self.monitor.alarms();
            if alarmed > 0 {
                // The whole batch is suspect: discard it before the
                // conditioner can absorb any of it.
                self.stats.batches_discarded += 1;
                self.quarantine_and_relock()?;
                continue;
            }
            self.stats.batches_delivered += 1;
            self.state = SourceState::Healthy;
            self.bit_carry.extend(self.conditioner.feed(&raw).iter());
            let whole_bytes = self.bit_carry.len() / 8;
            if whole_bytes == 0 {
                // Conditioning (e.g. von Neumann on a quiet stretch)
                // yielded less than a byte; produce more.
                continue;
            }
            let packed = self.bit_carry.slice(0, whole_bytes * 8).pack().to_vec();
            // Only bytes that actually leave the source are scored:
            // the estimate describes what consumers receive.
            self.estimator.feed_bytes(&packed);
            self.bit_carry = self
                .bit_carry
                .slice(whole_bytes * 8, self.bit_carry.len() - whole_bytes * 8);
            return Ok(packed);
        }
    }

    /// Drains the ring until the re-lock CV passes, then re-arms the
    /// monitor and conditioner; replaces the ring entirely after
    /// `max_relock_windows` failed windows.
    fn quarantine_and_relock(&mut self) -> Result<(), ServeError> {
        self.state = SourceState::Quarantined;
        let window_ps = self.relock_window_ps();
        for _ in 0..self.config.max_relock_windows {
            let from = self.stream.now();
            self.stream.advance_by(window_ps)?;
            let until = self.stream.now();
            self.state = SourceState::Relocking;
            let relocked = rising_interval_cv(self.stream.trace(), from.as_ps(), until.as_ps())
                .is_some_and(|cv| cv < self.config.relock_cv_threshold);
            self.stream.prune_before(from);
            if relocked {
                self.readmit(until.as_ps());
                self.stats.requarantines += 1;
                return Ok(());
            }
        }
        self.replace_ring()
    }

    /// Re-arms the gating state after a passed re-lock check. Nothing
    /// produced before `resume_ps` is ever served.
    fn readmit(&mut self, resume_ps: f64) {
        self.monitor.reset();
        self.conditioner = StreamConditioner::new(self.config.conditioner);
        self.bit_carry = BitString::new();
        // The pre-alarm window no longer describes the re-locked ring.
        self.estimator.reset();
        self.cursor_ps =
            resume_ps + self.config.warmup_periods * self.stream.expected_period_ps();
        self.state = SourceState::Healthy;
    }

    /// Swaps in a fresh ring for an unrecoverable one: same preset and
    /// board, a generation-derived seed, and no fault plan (the fault
    /// modeled hardware this slot is abandoning).
    fn replace_ring(&mut self) -> Result<(), ServeError> {
        self.generation += 1;
        self.stats.replacements += 1;
        let seed = self
            .spec
            .seed
            .wrapping_add(self.generation.wrapping_mul(GENERATION_STRIDE));
        self.stream = EntropySource::build(
            &self.spec.ring.stream_config(),
            &self.spec.board(self.index),
            seed,
            None,
            self.spec.backend,
        )?;
        self.meta_rng = RngTree::new(seed).stream(META_RNG_KEY);
        let warmup = self.config.warmup_periods * self.stream.expected_period_ps();
        self.monitor.reset();
        self.conditioner = StreamConditioner::new(self.config.conditioner);
        self.bit_carry = BitString::new();
        // A fresh ring starts a fresh stream; stale bits would blend
        // two generations into one estimate.
        self.estimator.reset();
        self.cursor_ps = warmup;
        self.state = SourceState::Healthy;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_sim::{Bit, FaultPlan};
    use strent_trng::health;
    use strent_trng::postprocess::ConditionerKind;
    use strentropy::pool::RingSpec;

    /// A small, fast pool config for tests.
    fn test_config() -> PoolConfig {
        let mut config = PoolConfig::mixed_default(1, 7);
        config.conditioner = ConditionerKind::Raw;
        config.sample_period_factor = 2.37;
        config.batch_raw_bits = 64;
        config.warmup_periods = 16.0;
        config
    }

    #[test]
    fn healthy_source_delivers_deterministic_batches() {
        let spec = SourceSpec::new(RingSpec::Str32, 11);
        let config = test_config();
        let mut a = PooledSource::build(0, &spec, &config).expect("builds");
        let mut b = PooledSource::build(0, &spec, &config).expect("builds");
        for _ in 0..5 {
            let batch_a = a.next_batch().expect("produces");
            let batch_b = b.next_batch().expect("produces");
            assert_eq!(batch_a, batch_b, "same spec + config is bit-identical");
            assert_eq!(batch_a.len(), 8, "64 raw bits -> 8 bytes");
        }
        assert_eq!(a.stats().batches_delivered, 5);
        assert_eq!(a.stats().alarms, 0);
        assert_eq!(a.state(), SourceState::Healthy);
        assert_eq!(a.generation(), 0);
    }

    #[test]
    fn all_presets_produce() {
        let config = test_config();
        for (i, ring) in [RingSpec::Str32, RingSpec::Str64, RingSpec::Iro32]
            .into_iter()
            .enumerate()
        {
            let spec = SourceSpec::new(ring, 20 + i as u64);
            let mut source = PooledSource::build(i, &spec, &config).expect("builds");
            let batch = source.next_batch().expect("produces");
            assert!(!batch.is_empty(), "{} yields bytes", ring.label());
            assert_eq!(source.index(), i);
        }
    }

    #[test]
    fn conditioned_output_shrinks_by_the_decimation_factor() {
        let spec = SourceSpec::new(RingSpec::Str32, 3);
        let mut config = test_config();
        config.conditioner = ConditionerKind::XorDecimate(2);
        let mut source = PooledSource::build(0, &spec, &config).expect("builds");
        // 64 raw bits -> 32 conditioned -> 4 bytes per batch.
        assert_eq!(source.next_batch().expect("produces").len(), 4);
    }

    #[test]
    fn surrogate_backed_source_serves_deterministic_healthy_batches() {
        let spec =
            SourceSpec::new(RingSpec::Str32, 17).with_backend(SourceBackend::Surrogate);
        let config = test_config();
        let mut a = PooledSource::build(0, &spec, &config).expect("builds");
        let mut b = PooledSource::build(0, &spec, &config).expect("builds");
        assert_eq!(a.backend(), SourceBackend::Surrogate, "str32 is eligible");
        let mut delivered = Vec::new();
        for _ in 0..8 {
            let batch_a = a.next_batch().expect("produces");
            let batch_b = b.next_batch().expect("produces");
            assert_eq!(batch_a, batch_b, "surrogate batches are bit-identical");
            delivered.extend(batch_a);
        }
        assert_eq!(a.stats().alarms, 0, "calibrated surrogate stays healthy");
        let bits = BitString::from_packed(&delivered, delivered.len() * 8);
        let (rct, apt) =
            health::scan(&bits, config.claimed_min_entropy).expect("valid claim");
        assert_eq!((rct, apt), (0, 0), "served surrogate bytes are health-clean");
    }

    #[test]
    fn delivered_bits_drive_the_published_estimate() {
        let spec = SourceSpec::new(RingSpec::Str32, 11);
        let mut config = test_config();
        config.entropy_order = 1;
        config.entropy_window_bits = 128;
        let mut source = PooledSource::build(0, &spec, &config).expect("builds");
        assert_eq!(source.entropy(), None, "no verdict before any delivery");
        let mut delivered = Vec::new();
        while delivered.len() * 8 < 256 {
            delivered.extend(source.next_batch().expect("produces"));
        }
        let estimate = source.entropy().expect("saturated window has a verdict");
        assert!(estimate.bits_per_bit() > 0.0);
        // The published estimate is a pure function of the served
        // bytes: replaying them through a fresh window reproduces it.
        let mut mirror = RateEstimator::new(1, 128).expect("valid");
        mirror.feed_bytes(&delivered);
        assert_eq!(mirror.entropy_rate(), Some(estimate));
    }

    #[test]
    fn armed_fault_plan_forces_the_full_sim_backend() {
        // A surrogate cannot reproduce injected faults, so a spec that
        // both arms a fault plan and requests the surrogate must fall
        // back to the full discrete-event stream.
        let config = test_config();
        let period = RingSpec::Str32
            .stream_config()
            .predicted_period_ps(&SourceSpec::new(RingSpec::Str32, 5).board(0));
        let clamp_from = config.warmup_periods * period;
        let plan = FaultPlan::new(5)
            .with_stuck_at("str0", Bit::Low, clamp_from, clamp_from + 50.0 * period)
            .expect("valid");
        let spec = SourceSpec::new(RingSpec::Str32, 5)
            .with_fault(plan)
            .with_backend(SourceBackend::Surrogate);
        let source = PooledSource::build(0, &spec, &config).expect("builds");
        assert_eq!(source.backend(), SourceBackend::FullSim, "fault wins");
    }

    #[test]
    fn stuck_ring_is_quarantined_and_served_bytes_stay_healthy() {
        // Clamp the output low for ~100 sample periods starting inside
        // the first batch: the RCT must fire, the batch must be
        // discarded, and after the clamp releases the ring re-locks.
        let config = test_config();
        let period = RingSpec::Str32
            .stream_config()
            .predicted_period_ps(&SourceSpec::new(RingSpec::Str32, 5).board(0));
        let sample_ps = config.sample_period_factor * period;
        let clamp_from = config.warmup_periods * period + 4.0 * sample_ps;
        let clamp_until = clamp_from + 100.0 * sample_ps;
        let plan = FaultPlan::new(5)
            .with_stuck_at("str0", Bit::Low, clamp_from, clamp_until)
            .expect("valid");
        let spec = SourceSpec::new(RingSpec::Str32, 5).with_fault(plan);
        let mut source = PooledSource::build(0, &spec, &config).expect("builds");

        let mut delivered = Vec::new();
        let mut batches = 0u64;
        while batches < 8 {
            delivered.extend(source.next_batch().expect("recovers"));
            batches += 1;
        }
        let stats = source.stats();
        assert!(stats.alarms >= 1, "clamp must alarm, stats {stats:?}");
        assert!(stats.batches_discarded >= 1);
        assert_eq!(stats.requarantines, 1, "one quarantine cycle");
        assert_eq!(stats.replacements, 0, "ring recovered, no replacement");
        // Zero unhealthy bytes delivered: the served stream passes the
        // same monitors with a fresh scan.
        let bits = BitString::from_packed(&delivered, delivered.len() * 8);
        let (rct, apt) =
            health::scan(&bits, config.claimed_min_entropy).expect("valid claim");
        assert_eq!((rct, apt), (0, 0), "served bytes are health-clean");
    }

    #[test]
    fn permanently_dead_ring_is_replaced() {
        // A clamp that outlives every re-lock window the config allows:
        // the slot swaps in a fresh ring and keeps serving.
        let mut config = test_config();
        config.max_relock_windows = 4;
        let spec = SourceSpec::new(RingSpec::Str32, 9);
        let period = spec.ring.stream_config().predicted_period_ps(&spec.board(0));
        let clamp_from = config.warmup_periods * period;
        let plan = FaultPlan::new(9)
            .with_stuck_at("str0", Bit::Low, clamp_from, 1e12)
            .expect("valid");
        let spec = spec.with_fault(plan);
        let mut source = PooledSource::build(0, &spec, &config).expect("builds");
        let batch = source.next_batch().expect("replacement serves");
        assert!(!batch.is_empty());
        assert_eq!(source.generation(), 1);
        assert_eq!(source.stats().replacements, 1);
        assert!(source.stats().alarms >= 1);
        // The replacement is itself deterministic.
        let mut again = PooledSource::build(0, &spec, &config).expect("builds");
        assert_eq!(again.next_batch().expect("produces"), batch);
    }
}
