//! The Unix-domain-socket frontend.
//!
//! A [`UdsServer`] listens on a filesystem socket and translates
//! [`wire`] frames into the same scheduler messages the in-process
//! [`EntropyClient`](crate::EntropyClient) sends — both frontends share
//! one core, so scheduling semantics (round barrier, fairness, Busy)
//! are identical over the socket.
//!
//! Liveness discipline (enforced by simlint rule SL108): the accept
//! loop runs non-blocking with a shutdown check per tick, and every
//! connection socket is armed with a read timeout before its read loop
//! starts, so neither a silent peer nor a forgotten connection can keep
//! the server alive past shutdown.

use std::io::ErrorKind;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::error::ServeError;
use crate::scheduler::{Connector, EntropyClient};
use crate::wire::{
    self, OP_BUSY, OP_CLOSE, OP_ERR, OP_HELLO, OP_HELLO_OK, OP_OK, OP_REQ,
};

/// Poll interval of the non-blocking accept loop.
const ACCEPT_TICK: Duration = Duration::from_millis(5);

/// Read timeout armed on every connection socket; each expiry re-checks
/// the shutdown flag.
const CONN_READ_TIMEOUT: Duration = Duration::from_millis(250);

/// Read timeout for [`UdsClient`] replies.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(150);

/// A running socket frontend.
#[derive(Debug)]
pub struct UdsServer {
    path: PathBuf,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
}

impl UdsServer {
    /// Binds `path` (replacing any stale socket file) and starts the
    /// accept loop. Clients registered over the socket go through
    /// `connector` into the shared scheduler.
    ///
    /// # Errors
    ///
    /// Returns an error if the socket cannot be bound or configured.
    pub fn start(connector: Connector, path: impl AsRef<Path>) -> Result<Self, ServeError> {
        let path = path.as_ref().to_path_buf();
        // A stale socket file from a crashed predecessor would make
        // bind fail; removing a *live* server's socket is the
        // operator's own foot-gun, exactly as with any UDS daemon.
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_handle = thread::Builder::new()
            .name("strent-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &connector, &flag))
            .map_err(ServeError::Io)?;
        Ok(UdsServer {
            path,
            shutdown,
            accept_handle: Some(accept_handle),
        })
    }

    /// The socket path the server is bound to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stops accepting, drains connection threads and removes the
    /// socket file.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shutdown`] if the accept thread panicked.
    pub fn shutdown(mut self) -> Result<(), ServeError> {
        self.shutdown.store(true, Ordering::SeqCst);
        let panicked = match self.accept_handle.take() {
            Some(handle) => handle.join().is_err(),
            None => false,
        };
        let _ = std::fs::remove_file(&self.path);
        if panicked {
            return Err(ServeError::Shutdown);
        }
        Ok(())
    }
}

impl Drop for UdsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

fn accept_loop(listener: &UnixListener, connector: &Connector, shutdown: &Arc<AtomicBool>) {
    // Only this thread touches the registry, so a plain Vec suffices.
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        // The listener is nonblocking; WouldBlock is the idle tick.
        match listener.accept() {
            Ok((stream, _addr)) => {
                let connector = connector.clone();
                let flag = Arc::clone(shutdown);
                let spawned = thread::Builder::new()
                    .name("strent-serve-conn".to_owned())
                    .spawn(move || connection_loop(stream, &connector, &flag));
                // On spawn failure the connection is dropped; the peer
                // sees EOF and retries.
                if let Ok(handle) = spawned {
                    connections.push(handle);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(ACCEPT_TICK),
            Err(_) => break,
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// One connection: HELLO, then a REQ/grant loop until CLOSE, EOF,
/// error, or server shutdown.
fn connection_loop(mut stream: UnixStream, connector: &Connector, shutdown: &Arc<AtomicBool>) {
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(CONN_READ_TIMEOUT)).is_err()
    {
        return;
    }
    let mut client: Option<EntropyClient> = None;
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        // The stream carries a read timeout (armed above); an expiry
        // loops back to the shutdown check.
        let (op, payload) = match wire::read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                continue;
            }
            Err(_) => return,
        };
        let ok = match (op, &client) {
            (OP_HELLO, None) => match wire::parse_u32(&payload) {
                Ok(id) => match connector.connect(id) {
                    Ok(c) => {
                        client = Some(c);
                        wire::write_frame(&mut stream, OP_HELLO_OK, &[]).is_ok()
                    }
                    Err(e) => {
                        send_err(&mut stream, &e);
                        false
                    }
                },
                Err(e) => {
                    send_err(&mut stream, &ServeError::Protocol(e.to_string()));
                    false
                }
            },
            (OP_HELLO, Some(_)) => {
                send_err(
                    &mut stream,
                    &ServeError::Protocol("duplicate HELLO on one connection".to_owned()),
                );
                false
            }
            (OP_REQ, Some(c)) => match wire::parse_u32(&payload) {
                Ok(nbytes) => match c.request(nbytes as usize) {
                    Ok(bytes) => wire::write_frame(&mut stream, OP_OK, &bytes).is_ok(),
                    Err(ServeError::Busy { in_flight }) => {
                        let count = u32::try_from(in_flight).unwrap_or(u32::MAX);
                        wire::write_frame(&mut stream, OP_BUSY, &count.to_le_bytes()).is_ok()
                    }
                    Err(e) => {
                        send_err(&mut stream, &e);
                        false
                    }
                },
                Err(e) => {
                    send_err(&mut stream, &ServeError::Protocol(e.to_string()));
                    false
                }
            },
            (OP_REQ, None) => {
                send_err(
                    &mut stream,
                    &ServeError::Protocol("REQ before HELLO".to_owned()),
                );
                false
            }
            (OP_CLOSE, _) => false,
            (other, _) => {
                send_err(
                    &mut stream,
                    &ServeError::Protocol(format!("unknown opcode 0x{other:02x}")),
                );
                false
            }
        };
        if !ok {
            // Dropping `client` (if any) sends Close to the scheduler.
            return;
        }
    }
}

fn send_err(stream: &mut UnixStream, error: &ServeError) {
    let _ = wire::write_frame(stream, OP_ERR, error.to_string().as_bytes());
}

/// A minimal synchronous client for the socket protocol — used by the
/// load bench, the CI smoke test and integration tests.
#[derive(Debug)]
pub struct UdsClient {
    stream: UnixStream,
}

impl UdsClient {
    /// Connects to the server socket and registers `client_id`.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`ServeError::Protocol`] if the server
    /// rejected the registration.
    pub fn connect(path: impl AsRef<Path>, client_id: u32) -> Result<Self, ServeError> {
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT))?;
        let mut client = UdsClient { stream };
        wire::write_frame(&mut client.stream, OP_HELLO, &client_id.to_le_bytes())?;
        // Reply reads are bounded by the read timeout set above.
        let (op, payload) = wire::read_frame(&mut client.stream)?;
        match op {
            OP_HELLO_OK => Ok(client),
            OP_ERR => Err(ServeError::Protocol(
                String::from_utf8_lossy(&payload).into_owned(),
            )),
            other => Err(ServeError::Protocol(format!(
                "expected HELLO_OK, got opcode 0x{other:02x}"
            ))),
        }
    }

    /// Requests `nbytes` bytes over the socket.
    ///
    /// # Errors
    ///
    /// [`ServeError::Busy`] for a backpressure rejection, transport or
    /// protocol errors otherwise.
    pub fn request(&mut self, nbytes: u32) -> Result<Vec<u8>, ServeError> {
        wire::write_frame(&mut self.stream, OP_REQ, &nbytes.to_le_bytes())?;
        // Reply reads are bounded by the connect-time read timeout.
        let (op, payload) = wire::read_frame(&mut self.stream)?;
        match op {
            OP_OK => Ok(payload),
            OP_BUSY => Err(ServeError::Busy {
                in_flight: wire::parse_u32(&payload).unwrap_or(0) as usize,
            }),
            OP_ERR => Err(ServeError::Protocol(
                String::from_utf8_lossy(&payload).into_owned(),
            )),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply opcode 0x{other:02x}"
            ))),
        }
    }

    /// Sends CLOSE and drops the connection.
    ///
    /// # Errors
    ///
    /// Transport errors writing the final frame.
    pub fn close(mut self) -> Result<(), ServeError> {
        wire::write_frame(&mut self.stream, OP_CLOSE, &[])?;
        Ok(())
    }
}
