//! The Unix-domain-socket frontend: a readiness-driven event loop.
//!
//! One thread multiplexes every connection through `poll(2)`
//! ([`crate::sys`]): the listener, a wake channel fed by the
//! scheduler's [`CompletionQueue`], and a per-connection read/write
//! state machine over the incremental [`wire::FrameDecoder`]. There is
//! no thread per connection (simlint rule SL110 forbids one), so a
//! thousand idle clients cost a thousand descriptors and nothing else —
//! and the old failure mode where a connection-thread spawn failure
//! silently dropped the peer is gone: accept and register failures are
//! typed, counted in [`ServerStats`], and answered with an `ERR` frame
//! when a peer exists to hear it.
//!
//! Request flow: a `REQ` frame is submitted to the scheduler with
//! [`EntropyClient::request_queued`] under a token carrying the
//! connection's slot and generation. The grant comes back through the
//! completion queue; a wake byte makes `poll` return; the reply frame
//! is buffered on the connection and drained as the socket reports
//! writable. A completion for a connection that died in the meantime
//! carries a stale generation and is dropped.
//!
//! Liveness discipline (SL108): every socket here is nonblocking; reads
//! return `WouldBlock` instead of parking the loop, and the poll
//! timeout bounds the latency of a shutdown-flag check.
//!
//! ## Hardening
//!
//! Three defenses keep one bad peer from degrading the loop for
//! everyone else ([`ServerOptions`] tunes them):
//!
//! * **Error budget** — a decodable but invalid frame (unknown opcode,
//!   malformed payload, protocol-order violation) is answered with a
//!   typed `ERR` frame and *charged* against the connection's strike
//!   budget; the connection survives until the budget is spent.
//!   Unrecoverable framing (an oversized length prefix) still closes
//!   immediately — past that point the byte stream cannot be re-synced.
//! * **Idle reaping** — a connection with no outstanding request, no
//!   buffered reply and no frame activity for [`ServerOptions::idle_timeout`]
//!   is closed and counted in [`ServerStats::idle_reaped`]; a slowloris
//!   peer holds a descriptor only until the reaper's next pass.
//! * **Graceful drain** — [`UdsServer::shutdown_graceful`] walks the
//!   shutdown state machine: stop accepting, deliver every in-flight
//!   grant, flush write buffers, then close sockets and join — bounded
//!   by a deadline so a wedged peer cannot hold shutdown hostage.

use std::io::{ErrorKind, Read, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use strentropy::pool::EntropyEstimate;

use crate::error::ServeError;
use crate::pool::SourceStatus;
use crate::scheduler::{CompletionQueue, Connector, EntropyClient};
use crate::supervisor::Deadline;
use crate::sys::{poll_fds, PollFd, POLLIN, POLLOUT};
use crate::wire::{
    self, FrameDecoder, OP_BUSY, OP_CLOSE, OP_ERR, OP_HELLO, OP_HELLO_OK, OP_OK,
    OP_RATE_LIMITED, OP_REQ, OP_SHEDDING,
};

/// Poll timeout — the upper bound on how long a shutdown request waits
/// for the loop to notice it.
const POLL_TIMEOUT_MS: i32 = 100;

/// Read timeout for [`UdsClient`] replies.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(150);

/// Per-read scratch size; one `read` drains at most this many bytes
/// before the loop moves on to the next ready descriptor.
const READ_CHUNK: usize = 16 * 1024;

/// Connections the loop accepts before parking the listener (far below
/// the descriptor limit, far above the 1024-client acceptance drill).
const MAX_CONNS: usize = 16 * 1024;

/// Monotone counters of the socket frontend, shared with the event
/// loop. Accept/register failures are *counted*, never silently
/// swallowed — the fix for the old spawn-failure connection drop.
#[derive(Debug, Default)]
pub struct ServerStats {
    accepted: AtomicU64,
    accept_errors: AtomicU64,
    register_errors: AtomicU64,
    protocol_errors: AtomicU64,
    active: AtomicU64,
    idle_reaped: AtomicU64,
    wake_full: AtomicU64,
    wake_errors: AtomicU64,
    /// Pool slots whose online entropy estimate has a verdict (the
    /// rest are still filling their sliding windows — the estimator's
    /// typed `InsufficientData` case, counted as unknown, not as zero).
    entropy_known: AtomicU64,
    /// Slots whose published estimate sits below the demotion
    /// threshold (the pool's weighted consumption throttles them).
    entropy_demoted: AtomicU64,
    /// Lowest published estimate, in millibits per bit (0 when no slot
    /// has a verdict yet — check [`ServerStats::entropy_known`]).
    entropy_min_millibits: AtomicU64,
}

impl ServerStats {
    /// Connections accepted over the server's lifetime.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// `accept(2)` failures (descriptor exhaustion, aborted peers).
    #[must_use]
    pub fn accept_errors(&self) -> u64 {
        self.accept_errors.load(Ordering::Relaxed)
    }

    /// `HELLO` registrations the scheduler refused (duplicate id,
    /// shutdown) — each one also answered with a typed `ERR` frame.
    #[must_use]
    pub fn register_errors(&self) -> u64 {
        self.register_errors.load(Ordering::Relaxed)
    }

    /// Malformed frames and protocol-order violations.
    #[must_use]
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors.load(Ordering::Relaxed)
    }

    /// Currently open connections.
    #[must_use]
    pub fn active(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }

    /// Idle connections reaped by [`ServerOptions::idle_timeout`] —
    /// each one had no outstanding request and no frame activity for
    /// the full timeout (the slowloris defense).
    #[must_use]
    pub fn idle_reaped(&self) -> u64 {
        self.idle_reaped.load(Ordering::Relaxed)
    }

    /// Wake-pipe writes absorbed because the pipe was already full —
    /// benign under level-triggered polling (at least one unread byte
    /// already guarantees the next `poll` returns), mirrored from the
    /// [`CompletionQueue`] so operators see EAGAIN pressure.
    #[must_use]
    pub fn wake_full(&self) -> u64 {
        self.wake_full.load(Ordering::Relaxed)
    }

    /// Wake-pipe writes that failed with a real error (not
    /// full-pipe EAGAIN); completions still land because the loop
    /// drains the queue unconditionally every tick.
    #[must_use]
    pub fn wake_errors(&self) -> u64 {
        self.wake_errors.load(Ordering::Relaxed)
    }

    /// Pool slots with a published entropy verdict at the last
    /// [`ServerStats::publish_entropy`] refresh.
    #[must_use]
    pub fn entropy_known(&self) -> u64 {
        self.entropy_known.load(Ordering::Relaxed)
    }

    /// Slots below the demotion threshold at the last refresh.
    #[must_use]
    pub fn entropy_demoted(&self) -> u64 {
        self.entropy_demoted.load(Ordering::Relaxed)
    }

    /// Lowest published estimate at the last refresh, millibits per
    /// bit; 0 with [`ServerStats::entropy_known`] = 0 means "no
    /// verdict yet", not a dead source.
    #[must_use]
    pub fn entropy_min_millibits(&self) -> u64 {
        self.entropy_min_millibits.load(Ordering::Relaxed)
    }

    /// Publishes the per-source entropy estimates (one
    /// [`SourceStatus`] per pool slot, e.g. from [`Connector::status`])
    /// into the gauge set operators scrape. Slots without a verdict —
    /// short windows, the estimator's typed `InsufficientData` case —
    /// count as *unknown*, never as demoted or zero-entropy.
    pub fn publish_entropy(&self, statuses: &[SourceStatus], threshold: EntropyEstimate) {
        let mut known = 0u64;
        let mut demoted = 0u64;
        let mut min: Option<EntropyEstimate> = None;
        for status in statuses {
            let Some(estimate) = status.entropy else {
                continue;
            };
            known += 1;
            if estimate < threshold {
                demoted += 1;
            }
            min = Some(min.map_or(estimate, |m| m.min(estimate)));
        }
        self.entropy_known.store(known, Ordering::Relaxed);
        self.entropy_demoted.store(demoted, Ordering::Relaxed);
        self.entropy_min_millibits
            .store(min.map_or(0, |m| u64::from(m.millibits())), Ordering::Relaxed);
    }
}

/// Tunables of the socket frontend's hardening layer.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Close a connection with no outstanding request and no frame
    /// activity for this long (`None` disables the reaper). Reaped
    /// connections are counted in [`ServerStats::idle_reaped`].
    pub idle_timeout: Option<Duration>,
    /// Decodable-but-invalid frames a connection may send before it is
    /// closed; each one is answered with a typed `ERR` frame first.
    pub error_budget: u32,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            idle_timeout: None,
            error_budget: 4,
        }
    }
}

/// A running socket frontend.
#[derive(Debug)]
pub struct UdsServer {
    path: PathBuf,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    handle: Option<JoinHandle<()>>,
    epoch: Instant,
    /// Drain deadline in milliseconds after `epoch`; `0` = not
    /// draining. One word so the event loop can read it locklessly.
    drain: Arc<AtomicU64>,
    /// Set by the event loop when a drain completed with every grant
    /// delivered and every write buffer flushed before the deadline.
    drained_clean: Arc<AtomicBool>,
}

impl UdsServer {
    /// Binds `path` (replacing any stale socket file) and starts the
    /// event loop. Clients registered over the socket go through
    /// `connector` into the shared scheduler.
    ///
    /// # Errors
    ///
    /// [`ServeError::Accept`] if the socket cannot be bound, configured
    /// or the wake channel cannot be created.
    pub fn start(connector: Connector, path: impl AsRef<Path>) -> Result<Self, ServeError> {
        Self::start_with_options(connector, path, ServerOptions::default())
    }

    /// [`UdsServer::start`] with explicit hardening tunables.
    ///
    /// # Errors
    ///
    /// [`ServeError::Accept`] if the socket cannot be bound, configured
    /// or the wake channel cannot be created.
    pub fn start_with_options(
        connector: Connector,
        path: impl AsRef<Path>,
        options: ServerOptions,
    ) -> Result<Self, ServeError> {
        let path = path.as_ref().to_path_buf();
        // A stale socket file from a crashed predecessor would make
        // bind fail; removing a *live* server's socket is the
        // operator's own foot-gun, exactly as with any UDS daemon.
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).map_err(ServeError::Accept)?;
        listener.set_nonblocking(true).map_err(ServeError::Accept)?;
        let (wake_tx, wake_rx) = UnixStream::pair().map_err(ServeError::Accept)?;
        wake_tx.set_nonblocking(true).map_err(ServeError::Accept)?;
        wake_rx.set_nonblocking(true).map_err(ServeError::Accept)?;
        let completions = Arc::new(CompletionQueue::new(wake_tx));
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let epoch = Instant::now();
        let drain = Arc::new(AtomicU64::new(0));
        let drained_clean = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let counters = Arc::clone(&stats);
        let drain_word = Arc::clone(&drain);
        let drained_flag = Arc::clone(&drained_clean);
        // Startup spawn: the one event-loop thread per server — every
        // connection is multiplexed through it, never given a thread.
        let handle = thread::Builder::new()
            .name("strent-serve-event-loop".to_owned())
            .spawn(move || {
                EventLoop {
                    listener,
                    wake_rx,
                    completions,
                    connector,
                    stats: counters,
                    options,
                    epoch,
                    drain: drain_word,
                    drained_clean: drained_flag,
                    conns: Vec::new(),
                    generations: Vec::new(),
                    free: Vec::new(),
                }
                .run(&flag);
            })
            .map_err(ServeError::Accept)?;
        Ok(UdsServer {
            path,
            shutdown,
            stats,
            handle: Some(handle),
            epoch,
            drain,
            drained_clean,
        })
    }

    /// The socket path the server is bound to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The frontend's monotone counters.
    #[must_use]
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Stops the event loop, drops every connection and removes the
    /// socket file.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shutdown`] if the event-loop thread panicked.
    pub fn shutdown(mut self) -> Result<(), ServeError> {
        self.shutdown.store(true, Ordering::SeqCst);
        let panicked = match self.handle.take() {
            Some(handle) => handle.join().is_err(),
            None => false,
        };
        let _ = std::fs::remove_file(&self.path);
        if panicked {
            return Err(ServeError::Shutdown);
        }
        Ok(())
    }

    /// The graceful shutdown state machine: stop accepting new
    /// connections, deliver every in-flight grant, flush every write
    /// buffer, then close sockets and join — all within `budget`.
    ///
    /// Returns `Ok(true)` when every connection quiesced before the
    /// deadline; `Ok(false)` when the budget expired with work still
    /// buffered (the loop then closes connections as a plain shutdown
    /// would).
    ///
    /// # Errors
    ///
    /// [`ServeError::Shutdown`] if the event-loop thread panicked.
    pub fn shutdown_graceful(mut self, budget: Duration) -> Result<bool, ServeError> {
        #[allow(clippy::cast_possible_truncation)]
        let deadline_ms = ((self.epoch.elapsed() + budget).as_millis() as u64).max(1);
        self.drain.store(deadline_ms, Ordering::SeqCst);
        let panicked = match self.handle.take() {
            Some(handle) => handle.join().is_err(),
            None => false,
        };
        let _ = std::fs::remove_file(&self.path);
        if panicked {
            return Err(ServeError::Shutdown);
        }
        Ok(self.drained_clean.load(Ordering::SeqCst))
    }
}

impl Drop for UdsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// One connection's state machine.
struct Conn {
    stream: UnixStream,
    decoder: FrameDecoder,
    /// Buffered reply bytes not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// Consumed prefix of `wbuf`.
    wpos: usize,
    client: Option<EntropyClient>,
    /// Bumped every time the slot is reused; stale completions carry
    /// the old generation and are dropped.
    generation: u32,
    /// Flush the write buffer, then close.
    closing: bool,
    /// Requests submitted to the scheduler whose grants have not come
    /// back yet — the drain and the idle reaper both key on zero.
    outstanding: u32,
    /// Last complete frame (or accept) on this connection; the idle
    /// reaper's staleness clock.
    last_frame: Instant,
    /// Decodable-but-invalid frames charged against the error budget.
    strikes: u32,
}

impl Conn {
    fn token(&self, slot: usize) -> u64 {
        ((slot as u64) << 32) | u64::from(self.generation)
    }

    fn has_backlog(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Appends a frame to the write buffer and opportunistically
    /// flushes. Returns `false` if the connection is dead.
    fn send_frame(&mut self, op: u8, payload: &[u8]) -> bool {
        if wire::encode_frame(&mut self.wbuf, op, payload).is_err() {
            return false;
        }
        self.flush()
    }

    /// Writes as much of the backlog as the socket accepts. Returns
    /// `false` if the connection is dead.
    fn flush(&mut self) -> bool {
        while self.wpos < self.wbuf.len() {
            // Nonblocking socket: a full buffer returns WouldBlock and
            // the poll set picks the flush up on the next writable.
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return false,
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        true
    }
}

/// What to do with a connection after handling an event.
enum ConnFate {
    Keep,
    Close,
}

struct EventLoop {
    listener: UnixListener,
    wake_rx: UnixStream,
    completions: Arc<CompletionQueue>,
    connector: Connector,
    stats: Arc<ServerStats>,
    options: ServerOptions,
    epoch: Instant,
    drain: Arc<AtomicU64>,
    drained_clean: Arc<AtomicBool>,
    conns: Vec<Option<Conn>>,
    /// Per-slot reuse counter, bumped on close so stale completion
    /// tokens never reach a successor connection.
    generations: Vec<u32>,
    free: Vec<usize>,
}

impl EventLoop {
    fn run(mut self, shutdown: &AtomicBool) {
        // Poll set layout: [listener, wake, conn, conn, ...].
        let mut fds: Vec<PollFd> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::new();
        loop {
            if shutdown.load(Ordering::Relaxed) {
                break;
            }
            fds.clear();
            slot_of.clear();
            let drain_ms = self.drain.load(Ordering::Relaxed);
            let draining = drain_ms != 0;
            let at_capacity = self.active_count() >= MAX_CONNS;
            fds.push(PollFd::new(
                self.listener.as_raw_fd(),
                // Draining parks the listener: step one of the graceful
                // shutdown is to stop accepting.
                if at_capacity || draining { 0 } else { POLLIN },
            ));
            fds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
            for (slot, conn) in self.conns.iter().enumerate() {
                if let Some(conn) = conn {
                    let mut events = POLLIN;
                    if conn.has_backlog() {
                        events |= POLLOUT;
                    }
                    fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                    slot_of.push(slot);
                }
            }
            if poll_fds(&mut fds, POLL_TIMEOUT_MS).is_err() {
                // EINVAL/ENOMEM from poll(2) is not survivable for a
                // multiplexer; exit and let shutdown clean up.
                break;
            }
            if fds[1].readable() {
                self.drain_wake();
            }
            // Completions may land between polls; drain unconditionally.
            self.deliver_completions();
            if fds[0].readable() {
                self.accept_ready();
            }
            for (i, fd) in fds.iter().enumerate().skip(2) {
                let slot = slot_of[i - 2];
                if fd.writable() {
                    self.flush_slot(slot);
                }
                if fd.readable() {
                    self.read_slot(slot);
                }
            }
            // Mirror the wake-pipe pressure counters from the
            // completion queue so they surface in ServerStats.
            self.stats
                .wake_full
                .store(self.completions.wake_full(), Ordering::Relaxed);
            self.stats
                .wake_errors
                .store(self.completions.wake_errors(), Ordering::Relaxed);
            self.reap_idle();
            if draining {
                if self.quiescent() {
                    // Every grant delivered, every write buffer
                    // flushed: a clean drain.
                    self.drained_clean.store(true, Ordering::SeqCst);
                    break;
                }
                if self.epoch.elapsed() >= Duration::from_millis(drain_ms) {
                    // Deadline-bounded: a wedged peer cannot hold
                    // shutdown hostage.
                    break;
                }
            }
        }
        // Dropping each Conn drops its EntropyClient, which closes the
        // scheduler-side client.
        self.conns.clear();
    }

    fn active_count(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    /// Whether every connection has delivered its grants and flushed
    /// its write buffer — the drain's exit condition.
    fn quiescent(&self) -> bool {
        self.conns.iter().flatten().all(|conn| {
            conn.outstanding == 0 && !conn.has_backlog()
        })
    }

    /// Closes connections with nothing outstanding, nothing buffered
    /// and no frame activity within the idle timeout (the slowloris
    /// defense). Disabled when no timeout is configured.
    fn reap_idle(&mut self) {
        let Some(timeout) = self.options.idle_timeout else {
            return;
        };
        let stale: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(slot, conn)| {
                let conn = conn.as_ref()?;
                let idle = conn.outstanding == 0
                    && !conn.has_backlog()
                    && conn.last_frame.elapsed() >= timeout;
                idle.then_some(slot)
            })
            .collect();
        for slot in stale {
            self.stats.idle_reaped.fetch_add(1, Ordering::Relaxed);
            self.close_slot(slot);
        }
    }

    /// Swallows pending wake bytes (level-triggered readiness: one
    /// drained byte per push keeps the channel from filling).
    fn drain_wake(&mut self) {
        let mut sink = [0u8; 256];
        // The wake stream is nonblocking; WouldBlock ends the drain.
        while let Ok(n) = self.wake_rx.read(&mut sink) {
            if n < sink.len() {
                break;
            }
        }
    }

    /// Routes finished grants to their connections' write buffers.
    fn deliver_completions(&mut self) {
        for completion in self.completions.drain() {
            let slot = (completion.token >> 32) as usize;
            #[allow(clippy::cast_possible_truncation)]
            let generation = completion.token as u32;
            let Some(Some(conn)) = self.conns.get_mut(slot) else {
                continue;
            };
            if conn.generation != generation {
                continue;
            }
            conn.outstanding = conn.outstanding.saturating_sub(1);
            let alive = match completion.result {
                Ok(bytes) => conn.send_frame(OP_OK, &bytes),
                Err(ServeError::Busy { in_flight }) => {
                    let count = u32::try_from(in_flight).unwrap_or(u32::MAX);
                    conn.send_frame(OP_BUSY, &count.to_le_bytes())
                }
                Err(ServeError::RateLimited { retry_after_us }) => {
                    let us = u32::try_from(retry_after_us).unwrap_or(u32::MAX);
                    conn.send_frame(OP_RATE_LIMITED, &us.to_le_bytes())
                }
                Err(ServeError::Shedding { queued }) => {
                    let count = u32::try_from(queued).unwrap_or(u32::MAX);
                    conn.send_frame(OP_SHEDDING, &count.to_le_bytes())
                }
                Err(e) => {
                    // Terminal failure: answer, flush, close.
                    conn.closing = true;
                    conn.send_frame(OP_ERR, e.to_string().as_bytes())
                }
            };
            if !alive || (conn.closing && !conn.has_backlog()) {
                self.close_slot(slot);
            }
        }
    }

    /// Accepts until the listener would block.
    fn accept_ready(&mut self) {
        loop {
            // The listener is nonblocking; WouldBlock ends the accept burst.
            match self.listener.accept() {
                Ok((stream, _addr)) => {
                    if stream.set_nonblocking(true).is_err() {
                        self.stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    self.stats.active.fetch_add(1, Ordering::Relaxed);
                    let mut conn = Conn {
                        stream,
                        decoder: FrameDecoder::new(),
                        wbuf: Vec::new(),
                        wpos: 0,
                        client: None,
                        generation: 0,
                        closing: false,
                        outstanding: 0,
                        last_frame: Instant::now(),
                        strikes: 0,
                    };
                    match self.free.pop() {
                        Some(slot) => {
                            conn.generation = self.generations[slot];
                            self.conns[slot] = Some(conn);
                        }
                        None => {
                            self.conns.push(Some(conn));
                            self.generations.push(0);
                        }
                    }
                    if self.active_count() >= MAX_CONNS {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => {
                    // Typed and counted (the old code dropped the peer
                    // without a trace); back off to the next poll round
                    // so a persistent error cannot spin the loop.
                    self.stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
    }

    fn flush_slot(&mut self, slot: usize) {
        let Some(Some(conn)) = self.conns.get_mut(slot) else {
            return;
        };
        let alive = conn.flush();
        if !alive || (conn.closing && !conn.has_backlog()) {
            self.close_slot(slot);
        }
    }

    /// Reads whatever the socket has, feeds the decoder and handles
    /// every complete frame.
    fn read_slot(&mut self, slot: usize) {
        let mut buf = [0u8; READ_CHUNK];
        loop {
            let Some(Some(conn)) = self.conns.get_mut(slot) else {
                return;
            };
            // The socket is nonblocking: WouldBlock ends the read burst.
            let n = match conn.stream.read(&mut buf) {
                Ok(0) => {
                    // EOF: the peer is gone; closing the slot drops the
                    // EntropyClient, which closes the scheduler client.
                    self.close_slot(slot);
                    return;
                }
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_slot(slot);
                    return;
                }
            };
            conn.decoder.feed(&buf[..n]);
            loop {
                let Some(Some(conn)) = self.conns.get_mut(slot) else {
                    return;
                };
                match conn.decoder.next_frame() {
                    Ok(Some((op, payload))) => {
                        conn.last_frame = Instant::now();
                        if matches!(self.handle_frame(slot, op, &payload), ConnFate::Close) {
                            self.close_slot(slot);
                            return;
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        // Unrecoverable framing (oversized length).
                        self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        let _ = conn.send_frame(OP_ERR, b"unrecoverable framing error");
                        self.close_slot(slot);
                        return;
                    }
                }
            }
            if n < buf.len() {
                return;
            }
        }
    }

    /// Handles one decoded frame on one connection.
    fn handle_frame(&mut self, slot: usize, op: u8, payload: &[u8]) -> ConnFate {
        let has_client = match self.conns.get(slot) {
            Some(Some(conn)) => {
                if conn.closing {
                    // The session is over; ignore anything after CLOSE.
                    return ConnFate::Keep;
                }
                conn.client.is_some()
            }
            _ => return ConnFate::Close,
        };
        match (op, has_client) {
            (OP_HELLO, false) => match wire::parse_u32(payload) {
                Ok(id) => {
                    // The registration round trip is the one blocking
                    // hop on this path; it never touches the pool, so
                    // the scheduler answers within a serving pass.
                    let registered = self.connector.connect(id);
                    let Some(Some(conn)) = self.conns.get_mut(slot) else {
                        return ConnFate::Close;
                    };
                    match registered {
                        Ok(client) => {
                            conn.client = Some(client);
                            if conn.send_frame(OP_HELLO_OK, &[]) {
                                ConnFate::Keep
                            } else {
                                ConnFate::Close
                            }
                        }
                        Err(e) => {
                            self.stats.register_errors.fetch_add(1, Ordering::Relaxed);
                            let _ = conn.send_frame(OP_ERR, e.to_string().as_bytes());
                            ConnFate::Close
                        }
                    }
                }
                Err(e) => self.protocol_error(slot, &e.to_string()),
            },
            (OP_HELLO, true) => self.protocol_error(slot, "duplicate HELLO on one connection"),
            (OP_REQ, true) => match wire::parse_u32(payload) {
                Ok(nbytes) => {
                    let completions = Arc::clone(&self.completions);
                    let Some(Some(conn)) = self.conns.get_mut(slot) else {
                        return ConnFate::Close;
                    };
                    let token = conn.token(slot);
                    let client = conn.client.as_ref().expect("checked");
                    match client.request_queued(nbytes as usize, &completions, token) {
                        Ok(()) => {
                            conn.outstanding += 1;
                            ConnFate::Keep
                        }
                        Err(e) => {
                            let _ = conn.send_frame(OP_ERR, e.to_string().as_bytes());
                            ConnFate::Close
                        }
                    }
                }
                Err(e) => self.protocol_error(slot, &e.to_string()),
            },
            (OP_REQ, false) => self.protocol_error(slot, "REQ before HELLO"),
            (OP_CLOSE, _) => {
                let Some(Some(conn)) = self.conns.get_mut(slot) else {
                    return ConnFate::Close;
                };
                // Flush any buffered replies, then close.
                conn.closing = true;
                if conn.has_backlog() {
                    ConnFate::Keep
                } else {
                    ConnFate::Close
                }
            }
            (other, _) => self.protocol_error(slot, &format!("unknown opcode 0x{other:02x}")),
        }
    }

    /// Answers a decodable-but-invalid frame with a typed `ERR` and
    /// charges it against the connection's error budget. The peer
    /// survives until the budget is spent — one poisoned frame must not
    /// tear down a connection that is otherwise making progress, and it
    /// never tears down the event loop.
    fn protocol_error(&mut self, slot: usize, msg: &str) -> ConnFate {
        self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
        let budget = self.options.error_budget;
        if let Some(Some(conn)) = self.conns.get_mut(slot) {
            conn.strikes += 1;
            let alive = conn.send_frame(OP_ERR, format!("protocol violation: {msg}").as_bytes());
            if alive && conn.strikes <= budget {
                return ConnFate::Keep;
            }
        }
        ConnFate::Close
    }

    fn close_slot(&mut self, slot: usize) {
        if let Some(entry) = self.conns.get_mut(slot) {
            // Dropping the Conn drops its EntropyClient (scheduler-side
            // Close) and abandons any in-flight tokens to staleness.
            if entry.take().is_some() {
                self.stats.active.fetch_sub(1, Ordering::Relaxed);
                self.generations[slot] = self.generations[slot].wrapping_add(1);
                self.free.push(slot);
            }
        }
    }
}

/// A minimal synchronous client for the socket protocol — used by the
/// deterministic smoke drill and simple integration tests. Load
/// generation at scale goes through [`crate::mux::MuxClient`], which
/// multiplexes many connections without a thread each.
#[derive(Debug)]
pub struct UdsClient {
    stream: UnixStream,
    path: PathBuf,
    client_id: u32,
}

/// First reconnect backoff; doubles per attempt up to
/// [`RECONNECT_BACKOFF_CAP`].
const RECONNECT_BACKOFF: Duration = Duration::from_micros(200);

/// Reconnect backoff ceiling.
const RECONNECT_BACKOFF_CAP: Duration = Duration::from_millis(20);

/// Reconnect attempts before giving up.
const RECONNECT_ATTEMPTS: u32 = 50;

impl UdsClient {
    /// Connects to the server socket and registers `client_id`.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`ServeError::Protocol`] if the server
    /// rejected the registration.
    pub fn connect(path: impl AsRef<Path>, client_id: u32) -> Result<Self, ServeError> {
        let path = path.as_ref().to_path_buf();
        let stream = UnixStream::connect(&path)?;
        stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT))?;
        let mut client = UdsClient {
            stream,
            path,
            client_id,
        };
        wire::write_frame(&mut client.stream, OP_HELLO, &client_id.to_le_bytes())?;
        // Reply reads are bounded by the read timeout set above.
        let (op, payload) = wire::read_frame(&mut client.stream)?;
        match op {
            OP_HELLO_OK => Ok(client),
            OP_ERR => Err(ServeError::Protocol(
                String::from_utf8_lossy(&payload).into_owned(),
            )),
            other => Err(ServeError::Protocol(format!(
                "expected HELLO_OK, got opcode 0x{other:02x}"
            ))),
        }
    }

    /// Drops the current connection and dials a fresh one under the
    /// same client id, with capped exponential backoff across attempts.
    /// The old socket is shut down *first* so the server observes EOF
    /// and releases the registration before the new `HELLO` arrives;
    /// the retry loop rides out the unregister/re-register race.
    ///
    /// # Errors
    ///
    /// The last connect error once the attempt budget is spent.
    pub fn reconnect(&mut self) -> Result<(), ServeError> {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        let mut backoff = RECONNECT_BACKOFF;
        let mut last = ServeError::Timeout;
        for _ in 0..RECONNECT_ATTEMPTS {
            match Self::connect(&self.path, self.client_id) {
                Ok(fresh) => {
                    self.stream = fresh.stream;
                    return Ok(());
                }
                Err(e) => last = e,
            }
            thread::sleep(backoff);
            backoff = (backoff * 2).min(RECONNECT_BACKOFF_CAP);
        }
        Err(last)
    }

    /// Requests `nbytes` bytes over the socket.
    ///
    /// # Errors
    ///
    /// A typed backpressure rejection ([`ServeError::Busy`],
    /// [`ServeError::RateLimited`], [`ServeError::Shedding`]) when the
    /// scheduler refused the request; transport or protocol errors
    /// otherwise.
    pub fn request(&mut self, nbytes: u32) -> Result<Vec<u8>, ServeError> {
        wire::write_frame(&mut self.stream, OP_REQ, &nbytes.to_le_bytes())?;
        self.read_reply()
    }

    /// [`UdsClient::request`] with retry semantics that cannot
    /// duplicate or drop entropy bytes, bounded by a deadline.
    ///
    /// The write/read split decides what is safe to retry:
    ///
    /// * a failed **write** cannot have reached the scheduler — the
    ///   client reconnects (capped backoff) and resends;
    /// * a typed backpressure **reply** ([`ServeError::Busy`],
    ///   [`ServeError::RateLimited`], [`ServeError::Shedding`]) means
    ///   the scheduler refused the request without consuming bytes —
    ///   the client waits (honoring the `retry_after_us` hint, backing
    ///   off harder on shedding) and resends;
    /// * a transport error **after** a fully-written request is
    ///   terminal: the grant may already have consumed bytes from the
    ///   deterministic allocation, and resending would double-spend it.
    ///
    /// # Errors
    ///
    /// The last rejection once `budget` expires; terminal transport,
    /// protocol, or service errors immediately.
    pub fn request_resilient(
        &mut self,
        nbytes: u32,
        budget: Duration,
    ) -> Result<Vec<u8>, ServeError> {
        let deadline = Deadline::after(budget);
        let mut backoff = RECONNECT_BACKOFF;
        loop {
            if let Err(e) = wire::write_frame(&mut self.stream, OP_REQ, &nbytes.to_le_bytes()) {
                // Nothing reached the scheduler: reconnect and resend.
                if deadline.expired() {
                    return Err(e.into());
                }
                self.reconnect()?;
                continue;
            }
            let err = match self.read_reply() {
                Ok(bytes) => return Ok(bytes),
                Err(err) => err,
            };
            let wait = match &err {
                ServeError::RateLimited { retry_after_us } => {
                    Duration::from_micros((*retry_after_us).max(1))
                }
                ServeError::Shedding { .. } => backoff * 4,
                ServeError::Busy { .. } => backoff,
                // Anything else after a fully-written REQ is terminal:
                // retrying could double-spend served bytes.
                _ => return Err(err),
            };
            if deadline.expired() {
                return Err(err);
            }
            thread::sleep(wait.min(deadline.remaining()));
            backoff = (backoff * 2).min(RECONNECT_BACKOFF_CAP);
        }
    }

    /// Reads and classifies one reply frame.
    fn read_reply(&mut self) -> Result<Vec<u8>, ServeError> {
        // Reply reads are bounded by the connect-time read timeout.
        let (op, payload) = wire::read_frame(&mut self.stream)?;
        match op {
            OP_OK => Ok(payload),
            OP_BUSY => Err(ServeError::Busy {
                in_flight: wire::parse_u32(&payload).unwrap_or(0) as usize,
            }),
            OP_RATE_LIMITED => Err(ServeError::RateLimited {
                retry_after_us: u64::from(wire::parse_u32(&payload).unwrap_or(0)),
            }),
            OP_SHEDDING => Err(ServeError::Shedding {
                queued: wire::parse_u32(&payload).unwrap_or(0) as usize,
            }),
            OP_ERR => Err(ServeError::Protocol(
                String::from_utf8_lossy(&payload).into_owned(),
            )),
            other => Err(ServeError::Protocol(format!(
                "unexpected reply opcode 0x{other:02x}"
            ))),
        }
    }

    /// Sends CLOSE and drops the connection.
    ///
    /// # Errors
    ///
    /// Transport errors writing the final frame.
    pub fn close(mut self) -> Result<(), ServeError> {
        wire::write_frame(&mut self.stream, OP_CLOSE, &[])?;
        Ok(())
    }
}
