//! Error type of the serving layer.

use std::error::Error;
use std::fmt;

use strent_rings::RingError;
use strent_trng::TrngError;
use strentropy::ExperimentError;

/// Errors reported by the entropy service.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The pool configuration failed validation.
    Config(ExperimentError),
    /// A ring simulation inside a source failed.
    Ring(RingError),
    /// Sampling or conditioning failed.
    Trng(TrngError),
    /// The request was rejected because the shard's in-flight budget is
    /// exhausted — the mildest typed backpressure class. Clients retry
    /// later.
    Busy {
        /// Requests already queued when the rejection was issued.
        in_flight: usize,
    },
    /// The request was rejected because the client's token bucket is
    /// empty — the per-client rate limit, not service load. Retry after
    /// the indicated delay.
    RateLimited {
        /// Microseconds until the bucket holds enough tokens for the
        /// rejected request.
        retry_after_us: u64,
    },
    /// The request was rejected because the whole service is over its
    /// global queue watermark — overload shedding, the most severe
    /// backpressure class. Back off substantially.
    Shedding {
        /// Requests queued service-wide when the rejection was issued.
        queued: usize,
    },
    /// The socket frontend failed to accept or register a connection.
    /// Carried by [`ServerStats`](crate::server::ServerStats) counters
    /// and surfaced to the peer as a typed `ERR` frame instead of the
    /// old silent drop.
    Accept(std::io::Error),
    /// The service (or a pool worker) is shutting down; no more bytes
    /// will be produced.
    Shutdown,
    /// The service is draining for a graceful shutdown: queued grants
    /// are still being served, but no new request is admitted. A typed
    /// refusal, distinct from [`ServeError::Shutdown`] so clients can
    /// fail over instead of retrying.
    Draining,
    /// A pool source stopped producing (its worker died or the source
    /// hit an unrecoverable simulator error).
    SourceFailed {
        /// Pool index of the failed source.
        source: usize,
    },
    /// Waited too long on a source or on the scheduler.
    Timeout,
    /// A malformed frame or protocol-order violation on the wire.
    Protocol(String),
    /// An I/O error on the socket transport.
    Io(std::io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(e) => write!(f, "invalid pool configuration: {e}"),
            ServeError::Ring(e) => write!(f, "source simulation failed: {e}"),
            ServeError::Trng(e) => write!(f, "sampling/conditioning failed: {e}"),
            ServeError::Busy { in_flight } => {
                write!(f, "busy: {in_flight} requests already in flight")
            }
            ServeError::RateLimited { retry_after_us } => {
                write!(f, "rate limited: retry in {retry_after_us} us")
            }
            ServeError::Shedding { queued } => {
                write!(f, "shedding load: {queued} requests queued service-wide")
            }
            ServeError::Accept(e) => write!(f, "frontend accept/register failed: {e}"),
            ServeError::Shutdown => write!(f, "service is shutting down"),
            ServeError::Draining => {
                write!(f, "service is draining; new requests are refused")
            }
            ServeError::SourceFailed { source } => {
                write!(f, "pool source {source} stopped producing")
            }
            ServeError::Timeout => write!(f, "timed out waiting for entropy"),
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServeError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Config(e) => Some(e),
            ServeError::Ring(e) => Some(e),
            ServeError::Trng(e) => Some(e),
            ServeError::Io(e) => Some(e),
            ServeError::Accept(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExperimentError> for ServeError {
    fn from(e: ExperimentError) -> Self {
        ServeError::Config(e)
    }
}

impl From<RingError> for ServeError {
    fn from(e: RingError) -> Self {
        ServeError::Ring(e)
    }
}

impl From<TrngError> for ServeError {
    fn from(e: TrngError) -> Self {
        ServeError::Trng(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// The three typed backpressure classes a request can be rejected
/// with, ordered by severity. A rejection is a *reply*, never a stalled
/// socket; the class tells the client how to react.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BackpressureClass {
    /// Shard in-flight budget exhausted — retry shortly.
    Busy,
    /// Per-client token bucket empty — wait out the advertised delay.
    RateLimited,
    /// Service-wide overload — back off substantially.
    Shedding,
}

impl ServeError {
    /// Whether this is the in-flight-budget backpressure rejection.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        matches!(self, ServeError::Busy { .. })
    }

    /// The backpressure class, if this error is a typed rejection
    /// rather than a failure.
    #[must_use]
    pub fn backpressure(&self) -> Option<BackpressureClass> {
        match self {
            ServeError::Busy { .. } => Some(BackpressureClass::Busy),
            ServeError::RateLimited { .. } => Some(BackpressureClass::RateLimited),
            ServeError::Shedding { .. } => Some(BackpressureClass::Shedding),
            _ => None,
        }
    }
}
