//! The request scheduler and the in-process client API.
//!
//! One scheduler thread owns the [`SourcePool`] and is the only
//! consumer of the pooled byte stream; frontends (the in-process
//! [`EntropyClient`] and the socket server) are thin message producers
//! over the same channel. Two scheduling modes:
//!
//! * **Deterministic** ([`SchedulerMode::Deterministic`]) — the server
//!   waits until `expected_clients` clients have registered, then
//!   serves in *rounds*: a round runs only when every open client has a
//!   request pending, and grants are issued in ascending client id.
//!   Which bytes each client receives is then a pure function of the
//!   pool config and the per-client request traces — independent of
//!   thread timing, connection order and worker count. This mirrors the
//!   `SweepRunner` determinism contract at the service boundary.
//! * **Fair** ([`SchedulerMode::Fair`]) — deficit round-robin: each
//!   serving pass grants at most one request per client, in ascending
//!   client id, so a greedy client cannot starve the others. Admission
//!   is bounded: when `max_in_flight` requests are already queued, new
//!   arrivals are rejected immediately with the typed
//!   [`ServeError::Busy`] — backpressure, not unbounded queueing.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use strentropy::pool::PoolConfig;

use crate::error::ServeError;
use crate::pool::{SourcePool, SourceStatus};

/// How long a client waits for its grant. Generous: a pool rebuilding a
/// dead ring mid-request stays well under this.
const REPLY_TIMEOUT: Duration = Duration::from_secs(120);

/// Scheduler idle tick — the loop re-checks for work at least this
/// often even with no incoming messages.
const IDLE_TICK: Duration = Duration::from_millis(50);

/// How requests are admitted and ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerMode {
    /// Round-barrier serving for reproducible byte allocation; see the
    /// module docs.
    Deterministic {
        /// Clients that must register before any request is served.
        expected_clients: usize,
    },
    /// Deficit round-robin with a bounded in-flight budget.
    Fair {
        /// Queued requests admitted before new ones get
        /// [`ServeError::Busy`]. Zero rejects everything (useful for
        /// drills).
        max_in_flight: usize,
    },
}

/// Full service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The source pool to serve from.
    pub pool: PoolConfig,
    /// Producer worker threads (clamped to `[1, sources]`).
    pub workers: usize,
    /// Scheduling mode.
    pub mode: SchedulerMode,
}

type ReplyTx = SyncSender<Result<Vec<u8>, ServeError>>;

enum Msg {
    Register {
        client_id: u32,
        reply: SyncSender<Result<(), ServeError>>,
    },
    Request {
        client_id: u32,
        nbytes: usize,
        reply: ReplyTx,
    },
    Close {
        client_id: u32,
    },
    Status {
        reply: SyncSender<Vec<SourceStatus>>,
    },
    Shutdown,
}

/// The running entropy service: owns the scheduler thread.
#[derive(Debug)]
pub struct EntropyService {
    tx: Sender<Msg>,
    handle: Option<JoinHandle<()>>,
}

impl EntropyService {
    /// Builds the pool (fail-fast) and spawns the scheduler thread.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid pool configuration or a source
    /// that fails to build.
    pub fn start(config: &ServeConfig) -> Result<Self, ServeError> {
        let pool = SourcePool::start(&config.pool, config.workers)?;
        let mode = config.mode;
        let (tx, rx) = mpsc::channel();
        let handle = thread::Builder::new()
            .name("strent-serve-scheduler".to_owned())
            .spawn(move || Scheduler::new(pool, mode).run(&rx))
            .map_err(ServeError::Io)?;
        Ok(EntropyService {
            tx,
            handle: Some(handle),
        })
    }

    /// A cloneable handle frontends use to register clients.
    #[must_use]
    pub fn connector(&self) -> Connector {
        Connector {
            tx: self.tx.clone(),
        }
    }

    /// Registers a client with the given id and returns its handle.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] for a duplicate id,
    /// [`ServeError::Shutdown`] if the scheduler is gone.
    pub fn connect(&self, client_id: u32) -> Result<EntropyClient, ServeError> {
        self.connector().connect(client_id)
    }

    /// Snapshot of every pool slot's health/lifecycle status.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shutdown`] or [`ServeError::Timeout`] if the
    /// scheduler cannot answer.
    pub fn status(&self) -> Result<Vec<SourceStatus>, ServeError> {
        let (reply, rx) = mpsc::sync_channel(1);
        self.tx
            .send(Msg::Status { reply })
            .map_err(|_| ServeError::Shutdown)?;
        recv_reply(&rx)
    }

    /// Stops the scheduler (which stops the pool) and joins it.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shutdown`] if the scheduler thread panicked.
    pub fn shutdown(mut self) -> Result<(), ServeError> {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(handle) = self.handle.take() {
            if handle.join().is_err() {
                return Err(ServeError::Shutdown);
            }
        }
        Ok(())
    }
}

impl Drop for EntropyService {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A cloneable client-registration handle (used by the socket server's
/// connection threads).
#[derive(Debug, Clone)]
pub struct Connector {
    tx: Sender<Msg>,
}

impl Connector {
    /// Registers a client with the given id.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EntropyService::connect`].
    pub fn connect(&self, client_id: u32) -> Result<EntropyClient, ServeError> {
        let (reply, rx) = mpsc::sync_channel(1);
        self.tx
            .send(Msg::Register { client_id, reply })
            .map_err(|_| ServeError::Shutdown)?;
        recv_reply(&rx)??;
        Ok(EntropyClient {
            id: client_id,
            tx: self.tx.clone(),
        })
    }
}

/// Waits for one reply with the standard timeout mapping.
fn recv_reply<T>(rx: &Receiver<T>) -> Result<T, ServeError> {
    match rx.recv_timeout(REPLY_TIMEOUT) {
        Ok(value) => Ok(value),
        Err(RecvTimeoutError::Timeout) => Err(ServeError::Timeout),
        Err(RecvTimeoutError::Disconnected) => Err(ServeError::Shutdown),
    }
}

/// An in-process client of the service. Dropping it closes the client
/// (in deterministic mode, removing it from the round barrier).
#[derive(Debug)]
pub struct EntropyClient {
    id: u32,
    tx: Sender<Msg>,
}

impl EntropyClient {
    /// This client's id (its rank in the deterministic serving order).
    #[must_use]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Requests exactly `nbytes` conditioned, health-passed bytes,
    /// blocking until granted.
    ///
    /// # Errors
    ///
    /// [`ServeError::Busy`] when the in-flight budget rejected the
    /// request (retry later); [`ServeError::Shutdown`] /
    /// [`ServeError::Timeout`] when the service went away.
    pub fn request(&self, nbytes: usize) -> Result<Vec<u8>, ServeError> {
        if nbytes == 0 {
            return Ok(Vec::new());
        }
        let (reply, rx) = mpsc::sync_channel(1);
        self.tx
            .send(Msg::Request {
                client_id: self.id,
                nbytes,
                reply,
            })
            .map_err(|_| ServeError::Shutdown)?;
        recv_reply(&rx)?
    }

    /// Closes the client explicitly (equivalent to dropping it).
    pub fn close(self) {}
}

impl Drop for EntropyClient {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Close { client_id: self.id });
    }
}

struct ClientSlot {
    pending: VecDeque<(usize, ReplyTx)>,
}

struct Scheduler {
    pool: SourcePool,
    mode: SchedulerMode,
    clients: BTreeMap<u32, ClientSlot>,
    registered: usize,
}

impl Scheduler {
    fn new(pool: SourcePool, mode: SchedulerMode) -> Self {
        Scheduler {
            pool,
            mode,
            clients: BTreeMap::new(),
            registered: 0,
        }
    }

    fn run(mut self, rx: &Receiver<Msg>) {
        loop {
            // Drain every queued message first so the in-flight count
            // reflects real arrival bursts, then serve.
            loop {
                match rx.try_recv() {
                    Ok(msg) => {
                        if !self.handle(msg) {
                            self.pool.shutdown();
                            return;
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        self.pool.shutdown();
                        return;
                    }
                }
            }
            self.serve();
            if !self.has_serveable_work() {
                // Idle (or barred): block for the next message. The
                // idle tick bounds the wait so a shutdown flag flip or
                // a barrier change is never missed for long.
                match rx.recv_timeout(IDLE_TICK) {
                    Ok(msg) => {
                        if !self.handle(msg) {
                            self.pool.shutdown();
                            return;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => {
                        self.pool.shutdown();
                        return;
                    }
                }
            }
        }
    }

    /// Applies one message; `false` means shut down.
    fn handle(&mut self, msg: Msg) -> bool {
        match msg {
            Msg::Register { client_id, reply } => {
                let result = match self.clients.entry(client_id) {
                    Entry::Occupied(_) => Err(ServeError::Protocol(format!(
                        "client id {client_id} is already registered"
                    ))),
                    Entry::Vacant(slot) => {
                        slot.insert(ClientSlot {
                            pending: VecDeque::new(),
                        });
                        self.registered += 1;
                        Ok(())
                    }
                };
                let _ = reply.send(result);
            }
            Msg::Request {
                client_id,
                nbytes,
                reply,
            } => self.admit(client_id, nbytes, reply),
            Msg::Close { client_id } => {
                // Dropping the slot drops any pending reply senders;
                // their clients observe Shutdown.
                self.clients.remove(&client_id);
            }
            Msg::Status { reply } => {
                let _ = reply.send(self.pool.status().to_vec());
            }
            Msg::Shutdown => return false,
        }
        true
    }

    /// Admission control for one request.
    fn admit(&mut self, client_id: u32, nbytes: usize, reply: ReplyTx) {
        if let SchedulerMode::Fair { max_in_flight } = self.mode {
            let in_flight = self.in_flight();
            if in_flight >= max_in_flight {
                let _ = reply.send(Err(ServeError::Busy { in_flight }));
                return;
            }
            // Fair mode admits unregistered clients on first contact.
            if let Entry::Vacant(slot) = self.clients.entry(client_id) {
                slot.insert(ClientSlot {
                    pending: VecDeque::new(),
                });
                self.registered += 1;
            }
        } else if !self.clients.contains_key(&client_id) {
            let _ = reply.send(Err(ServeError::Protocol(format!(
                "client {client_id} sent a request before registering"
            ))));
            return;
        }
        if let Some(slot) = self.clients.get_mut(&client_id) {
            slot.pending.push_back((nbytes, reply));
        }
    }

    fn in_flight(&self) -> usize {
        self.clients.values().map(|s| s.pending.len()).sum()
    }

    fn has_serveable_work(&self) -> bool {
        match self.mode {
            SchedulerMode::Deterministic { expected_clients } => {
                self.barrier_ready(expected_clients)
            }
            SchedulerMode::Fair { .. } => self.in_flight() > 0,
        }
    }

    /// The round barrier: everyone expected has registered, at least
    /// one client is still open, and every open client has a request.
    fn barrier_ready(&self, expected_clients: usize) -> bool {
        self.registered >= expected_clients
            && !self.clients.is_empty()
            && self.clients.values().all(|s| !s.pending.is_empty())
    }

    fn serve(&mut self) {
        match self.mode {
            SchedulerMode::Deterministic { expected_clients } => {
                while self.barrier_ready(expected_clients) {
                    self.serve_one_pass();
                }
            }
            SchedulerMode::Fair { .. } => {
                while self.in_flight() > 0 {
                    self.serve_one_pass();
                }
            }
        }
    }

    /// Grants at most one pending request per client, in ascending
    /// client-id order.
    fn serve_one_pass(&mut self) {
        let ids: Vec<u32> = self.clients.keys().copied().collect();
        for id in ids {
            let Some(slot) = self.clients.get_mut(&id) else {
                continue;
            };
            let Some((nbytes, reply)) = slot.pending.pop_front() else {
                continue;
            };
            let grant = self.pool.read_bytes(nbytes);
            let _ = reply.send(grant);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_trng::postprocess::ConditionerKind;

    fn small_serve_config(sources: usize, mode: SchedulerMode) -> ServeConfig {
        let mut pool = PoolConfig::mixed_default(sources, 42);
        pool.conditioner = ConditionerKind::Raw;
        pool.sample_period_factor = 2.37;
        pool.batch_raw_bits = 64;
        pool.warmup_periods = 16.0;
        ServeConfig {
            pool,
            workers: 2,
            mode,
        }
    }

    #[test]
    fn single_client_stream_matches_the_pool_prefix() {
        let config = small_serve_config(
            2,
            SchedulerMode::Deterministic {
                expected_clients: 1,
            },
        );
        let service = EntropyService::start(&config).expect("starts");
        let client = service.connect(0).expect("registers");
        let mut served = Vec::new();
        for n in [8usize, 16, 4] {
            let grant = client.request(n).expect("granted");
            assert_eq!(grant.len(), n);
            served.extend(grant);
        }
        client.close();
        service.shutdown().expect("clean shutdown");

        let mut pool = SourcePool::start(&config.pool, 1).expect("starts");
        let expected = pool.read_bytes(28).expect("reads");
        assert_eq!(served, expected, "served stream is the pool stream");
    }

    #[test]
    fn zero_budget_rejects_with_typed_busy() {
        let config = small_serve_config(2, SchedulerMode::Fair { max_in_flight: 0 });
        let service = EntropyService::start(&config).expect("starts");
        let client = service.connect(1).expect("registers");
        let err = client.request(8).expect_err("budget 0 rejects everything");
        assert!(err.is_busy(), "{err}");
        assert!(matches!(err, ServeError::Busy { in_flight: 0 }));
        service.shutdown().expect("clean shutdown");
    }

    #[test]
    fn fair_mode_serves_sequential_requests() {
        let config = small_serve_config(2, SchedulerMode::Fair { max_in_flight: 4 });
        let service = EntropyService::start(&config).expect("starts");
        let client = service.connect(9).expect("registers");
        let a = client.request(16).expect("granted");
        let b = client.request(16).expect("granted");
        assert_eq!(a.len(), 16);
        assert_ne!(a, b, "stream advances between grants");
        assert!(client.request(0).expect("trivial").is_empty());
        let status = service.status().expect("answers");
        assert_eq!(status.len(), 2);
        service.shutdown().expect("clean shutdown");
    }

    #[test]
    fn duplicate_client_ids_are_rejected() {
        let config = small_serve_config(
            2,
            SchedulerMode::Deterministic {
                expected_clients: 1,
            },
        );
        let service = EntropyService::start(&config).expect("starts");
        let _first = service.connect(3).expect("registers");
        let err = service.connect(3).expect_err("duplicate id");
        assert!(matches!(err, ServeError::Protocol(_)), "{err}");
        service.shutdown().expect("clean shutdown");
    }

    #[test]
    fn unregistered_deterministic_request_is_a_protocol_error() {
        let config = small_serve_config(
            2,
            SchedulerMode::Deterministic {
                expected_clients: 1,
            },
        );
        let service = EntropyService::start(&config).expect("starts");
        let registered = service.connect(0).expect("registers");
        // Forge a client handle that never registered.
        let rogue = EntropyClient {
            id: 99,
            tx: registered.tx.clone(),
        };
        let err = rogue.request(4).expect_err("must register first");
        assert!(matches!(err, ServeError::Protocol(_)), "{err}");
        drop(rogue);
        registered.close();
        service.shutdown().expect("clean shutdown");
    }
}
